"""Experiment S5.2 — the §5.2 walk-through on the live video system.

Runs the five-step MAP against the streaming application and reports the
paper's qualitative claims as measured numbers: adaptation completes, no
frame is corrupted, the stream never stops at the source, and viewers see
only millisecond-scale per-client pauses.
"""

import pytest

from benchmarks.conftest import report
from repro.apps.video import VideoScenario
from repro.bench import format_table
from repro.trace import BlockRecord, CommRecord


def run_walkthrough(seed=1):
    scenario = VideoScenario(seed=seed)
    outcome = scenario.run()
    return scenario, outcome


def blocked_time_by_process(trace):
    totals = {}
    start = {}
    for record in trace.of_type(BlockRecord):
        if record.blocked:
            start[record.process] = record.time
        elif record.process in start:
            totals[record.process] = totals.get(record.process, 0.0) + (
                record.time - start.pop(record.process)
            )
    return totals


def max_decode_gap(trace, process, window):
    times = [
        r.time
        for r in trace.of_type(CommRecord)
        if r.action == "decode" and r.process == process
        and window[0] <= r.time <= window[1]
    ]
    gaps = [b - a for a, b in zip(times, times[1:])]
    return max(gaps) if gaps else 0.0


def test_section52_walkthrough(benchmark):
    scenario, outcome = benchmark(run_walkthrough)
    stats = scenario.stream_stats()
    assert outcome.succeeded and outcome.steps_committed == 5
    assert stats["handheld_corrupt"] == 0 and stats["laptop_corrupt"] == 0
    scenario.safety_report().raise_if_unsafe()

    trace = scenario.cluster.trace
    blocked = blocked_time_by_process(trace)
    window = (outcome.started_at - 10, outcome.finished_at + 10)
    rows = [
        ("adaptation duration (ms)", round(outcome.duration, 1)),
        ("steps committed", outcome.steps_committed),
        ("frames sent", stats["frames_sent"]),
        ("handheld packets ok/corrupt",
         f"{stats['handheld_ok']}/{stats['handheld_corrupt']}"),
        ("laptop packets ok/corrupt",
         f"{stats['laptop_ok']}/{stats['laptop_corrupt']}"),
        ("server blocked total (ms)", round(blocked.get("server", 0.0), 1)),
        ("handheld blocked total (ms)", round(blocked.get("handheld", 0.0), 1)),
        ("laptop blocked total (ms)", round(blocked.get("laptop", 0.0), 1)),
        ("handheld max decode gap (ms)",
         round(max_decode_gap(trace, "handheld", window), 1)),
        ("laptop max decode gap (ms)",
         round(max_decode_gap(trace, "laptop", window), 1)),
    ]
    report("§5.2 walk-through (measured)", format_table(["metric", "value"], rows))
    benchmark.extra_info.update({str(k): str(v) for k, v in rows})

    # The MAP never blocks the stream source.
    assert blocked.get("server", 0.0) == 0.0
    # Viewers' worst stall stays within a few frame intervals.
    assert max_decode_gap(trace, "handheld", window) <= 10.0


def test_walkthrough_is_deterministic(benchmark):
    def run_twice():
        a = run_walkthrough(seed=4)[0].stream_stats()
        b = run_walkthrough(seed=4)[0].stream_stats()
        return a, b

    a, b = benchmark(run_twice)
    assert a == b
