"""MetaSockets: sockets with runtime-recomposable filter pipelines (§2, §5).

A :class:`SendMetaSocket` pushes outgoing packets through its (encoder)
filter chain and hands the survivors to a transport callable; a
:class:`RecvMetaSocket` pushes incoming packets through its (decoder)
chain and delivers the result to the application callable.  Both expose
the chain's transmutations so adaptation in-actions can recompose them,
and a ``resetting`` flag mirroring the paper's §5.2 mechanics ("the agent
sets a 'resetting' flag in the MetaSocket; when the decoder finishes
decoding a packet, it checks the flag...").
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Mapping, Optional

from repro.components.base import AdaptiveComponent, refraction, transmutation
from repro.components.filters import Filter, FilterChain

Transport = Callable[[Any], None]
Deliver = Callable[[Any], None]


class _MetaSocketBase(AdaptiveComponent):
    """Shared plumbing for send/recv MetaSockets."""

    def __init__(self, name: str, filters: Iterable[Filter] = ()):
        super().__init__(name)
        self.chain = FilterChain(f"{name}.chain", filters)
        self.resetting = False
        self.blocked = False

    # -- refractions ------------------------------------------------------------
    @refraction
    def socket_status(self) -> Mapping[str, Any]:
        return {
            "name": self.name,
            "filters": self.chain.filter_names(),
            "resetting": self.resetting,
            "blocked": self.blocked,
            "packets_in": self.chain.packets_in,
            "packets_out": self.chain.packets_out,
        }

    # -- transmutations (delegate to the chain) ---------------------------------------
    @transmutation
    def insert_filter(self, filt: Filter, index: Optional[int] = None) -> None:
        self.chain.insert_filter(filt, index)

    @transmutation
    def remove_filter(self, name: str) -> Filter:
        return self.chain.remove_filter(name)

    @transmutation
    def replace_filter(self, name: str, replacement: Filter) -> Filter:
        return self.chain.replace_filter(name, replacement)

    # -- reset/block control used by adaptation agents ---------------------------------
    @transmutation
    def set_resetting(self, value: bool = True) -> None:
        self.resetting = value

    @transmutation
    def set_blocked(self, value: bool = True) -> None:
        self.blocked = value


class SendMetaSocket(_MetaSocketBase):
    """Outbound MetaSocket: app → encoder filters → transport."""

    def __init__(
        self, name: str, transport: Transport, filters: Iterable[Filter] = ()
    ):
        super().__init__(name, filters)
        self.transport = transport
        self.packets_sent = 0

    def send(self, packet: Any) -> int:
        """Push one packet through the chain and transmit the survivors.

        Returns the number of packets actually handed to the transport
        (0 while blocked, possibly >1 with fan-out filters like FEC).
        """
        if self.blocked:
            return 0
        out = self.chain.push(packet)
        for item in out:
            self.transport(item)
        self.packets_sent += len(out)
        return len(out)


class RecvMetaSocket(_MetaSocketBase):
    """Inbound MetaSocket: transport → decoder filters → app.

    While blocked, arriving packets are buffered (the OS socket buffer in
    the real system) and flushed through the chain on unblock — packets
    are never silently dropped by an adaptation.
    """

    def __init__(
        self, name: str, deliver: Deliver, filters: Iterable[Filter] = ()
    ):
        super().__init__(name, filters)
        self.deliver = deliver
        self.packets_delivered = 0
        self._buffer: List[Any] = []

    def receive(self, packet: Any) -> None:
        """Accept one packet from the transport."""
        if self.blocked:
            self._buffer.append(packet)
            return
        self._process(packet)

    def _process(self, packet: Any) -> None:
        for item in self.chain.push(packet):
            self.packets_delivered += 1
            self.deliver(item)

    @property
    def buffered(self) -> int:
        return len(self._buffer)

    @transmutation
    def set_blocked(self, value: bool = True) -> None:
        self.blocked = value
        if not value:
            pending, self._buffer = self._buffer, []
            for packet in pending:
                self._process(packet)
