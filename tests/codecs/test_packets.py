"""Unit tests for the packet model."""

import zlib

import pytest

from repro.codecs.packets import Packet, data_packet, marker_packet


class TestDataPacket:
    def test_checksum_computed(self):
        packet = data_packet(1, 0, 0, 1, b"hello")
        assert packet.checksum == zlib.crc32(b"hello") & 0xFFFFFFFF
        assert packet.verify()

    def test_tampered_payload_fails_verify(self):
        packet = data_packet(1, 0, 0, 1, b"hello")
        tampered = packet.with_payload(b"hellO")
        assert not tampered.verify()

    def test_encrypted_payload_fails_verify(self):
        packet = data_packet(1, 0, 0, 1, b"hello")
        encrypted = packet.with_payload(b"\x99" * 16, enc_scheme="des64")
        assert not encrypted.verify()

    def test_compressed_payload_fails_verify(self):
        packet = data_packet(1, 0, 0, 1, b"hello")
        assert not packet.with_payload(b"zz", compressed=True).verify()

    def test_kind_flags(self):
        packet = data_packet(1, 0, 0, 1, b"x")
        assert packet.is_data and not packet.is_marker and not packet.is_parity

    def test_immutability(self):
        import dataclasses

        packet = data_packet(1, 0, 0, 1, b"x")
        with pytest.raises(dataclasses.FrozenInstanceError):
            packet.payload = b"y"  # type: ignore[misc]

    def test_with_payload_preserves_other_fields(self):
        packet = data_packet(7, 3, 2, 4, b"x")
        changed = packet.with_payload(b"y")
        assert changed.seq == 7
        assert changed.frame_id == 3
        assert changed.chunk_index == 2
        assert changed.checksum == packet.checksum


class TestMarkerPacket:
    def test_marker_fields(self):
        marker = marker_packet(99, "plan1/3#0")
        assert marker.is_marker
        assert marker.marker_key == "plan1/3#0"

    def test_marker_always_verifies(self):
        assert marker_packet(1, "k").verify()


class TestParityPacket:
    def test_parity_verify_trivially_true(self):
        parity = Packet(seq=-1, kind="parity", payload=b"\x01", members=(1, 2))
        assert parity.verify()
        assert parity.is_parity
