"""PlanningService: a thread-safe, amortizing front end over planners.

The ROADMAP north star is serving heavy adaptation-request traffic: many
concurrent ``(source, target)`` requests against the *same* compiled
``(S, I, T, A)`` spec.  Building a fresh :class:`AdaptationPlanner` per
request re-derives the safe space, the SAG, and every shortest path from
scratch; the service instead keys one shared planner per spec by a
**content hash** of the spec itself — so two callers handing in equal
specs (even separately constructed objects) land on the same warm
space + SAG + shortest-path-tree caches.

Concurrency model (lock-per-spec, lock-free warm reads):

* the service-level registry lock is held only to look up / create a
  spec entry — never while planning;
* each spec entry owns an ``RLock`` serializing *cold* work (safe-space
  enumeration, SAG build, Dijkstra) for that spec only — concurrent
  traffic against different specs never contends;
* warm reads bypass the lock entirely: a planned pair is served from
  :meth:`AdaptationPlanner.peek_plan`, a single dict lookup that is safe
  under the GIL because plan caches only ever grow;
* counters are bumped (and snapshotted) under a dedicated per-entry
  ``stats_lock`` so accounting is **exact** under concurrency: every
  request is counted exactly once as warm, cold, or lazy, and
  :meth:`stats` returns a consistent snapshot rather than a torn read.

The service is also addressable **by digest** (:meth:`register`,
:meth:`plan_digest`, :meth:`evict`, ...) so network front ends — the
:class:`~repro.serve.control.ControlPlane` and its HTTP adapter — can
resolve a spec once at registration time and skip re-hashing the spec
on every request.
"""

from __future__ import annotations

import hashlib
import json
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.actions import ActionLibrary
from repro.core.invariants import InvariantSet
from repro.core.model import ComponentUniverse, Configuration
from repro.core.planner import (
    LAZY_PLAN_COMPONENTS,
    AdaptationPlan,
    AdaptationPlanner,
)
from repro.errors import NoSafePathError
from repro.expr.ast import to_text
from repro.ltl.ast import PFormula, property_to_text
from repro.ltl.compile import CompiledProperty
from repro.ltl.paths import PathVerdict, check_plan
from repro.ltl.paths import verify_paths as _verify_paths


def spec_digest(
    universe: ComponentUniverse,
    invariants: InvariantSet,
    actions: ActionLibrary,
) -> str:
    """Content hash of a compiled ``(S, I, A)`` spec.

    Canonical JSON over declaration-ordered primitives: component
    ``(name, process)`` pairs, invariant source texts, and action deltas.
    Declaration order is semantic (it fixes bit positions and tie-breaks),
    so it is part of the key — two specs differing only in component
    order plan over different bit encodings and must not share caches.
    """
    doc = {
        "components": [
            (name, universe.component(name).process) for name in universe.order
        ],
        "invariants": [to_text(inv.expr) for inv in invariants],
        "actions": [
            (
                action.action_id,
                sorted(action.removes),
                sorted(action.adds),
                action.cost,
            )
            for action in actions
        ],
    }
    blob = json.dumps(doc, separators=(",", ":"), sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def no_safe_path_message(source: Configuration, target: Configuration) -> str:
    """The one message every unreachable-pair error carries (wire-pinned)."""
    return (
        f"no safe adaptation path from {source.label()} to {target.label()}"
    )


@dataclass
class ServiceStats:
    """Counters for one service (snapshot; see :meth:`PlanningService.stats`)."""

    specs: int
    warm_hits: int
    cold_plans: int
    lazy_plans: int = 0
    #: path-quantified verifications served from a warm compiled property
    verify_hits: int = 0
    #: spec entries dropped via :meth:`PlanningService.evict`
    evictions: int = 0

    def counters(self) -> Dict[str, int]:
        """The snapshot as a plain counter dict (shared-memory publishing
        and the ``/v1/stats`` service document use the same keys)."""
        return {
            "specs": self.specs,
            "warm_hits": self.warm_hits,
            "cold_plans": self.cold_plans,
            "lazy_plans": self.lazy_plans,
            "verify_hits": self.verify_hits,
            "evictions": self.evictions,
        }


#: methods :meth:`PlanningService.plan_digest` understands; ``auto`` routes
#: by universe size exactly as the in-process service always has
PLAN_METHODS = ("auto", "dijkstra", "lazy", "collaborative")


class _SpecEntry:
    """One spec's shared planner plus its cold-path lock and counters."""

    __slots__ = (
        "planner",
        "lock",
        "stats_lock",
        "warm_hits",
        "cold_plans",
        "lazy_plans",
        "properties",
        "verify_hits",
    )

    def __init__(self, planner: AdaptationPlanner):
        self.planner = planner
        #: serializes cold work (enumeration, SAG build, Dijkstra)
        self.lock = threading.RLock()
        #: guards the counters only — held for nanoseconds, never while planning
        self.stats_lock = threading.Lock()
        self.warm_hits = 0
        self.cold_plans = 0
        self.lazy_plans = 0
        #: compiled-property cache, keyed by the canonical formula text
        self.properties: Dict[str, CompiledProperty] = {}
        self.verify_hits = 0

    def count(self, counter: str, amount: int = 1) -> None:
        with self.stats_lock:
            setattr(self, counter, getattr(self, counter) + amount)

    def snapshot(self) -> Dict[str, int]:
        """All counters read atomically (consistent under concurrent bumps)."""
        with self.stats_lock:
            return {
                "warm_hits": self.warm_hits,
                "cold_plans": self.cold_plans,
                "lazy_plans": self.lazy_plans,
                "verify_hits": self.verify_hits,
                "properties": len(self.properties),
            }


class PlanningService:
    """Shared planning front end for many callers over many specs.

    Args:
        workers: forwarded to each planner's
            :class:`~repro.core.space.SafeConfigurationSpace` for parallel
            safe-space enumeration.
        spt_cache_size: per-planner bound on cached shortest-path trees.
        lazy_components: specs with more components than this are planned
            through :meth:`AdaptationPlanner.lazy_plan` — the frontier
            search that never materializes the safe space or the SAG —
            instead of the eager CSR pipeline.  ``None`` disables the
            routing (every spec plans eagerly, 2^n be damned).  Lazy
            results land in the same per-pair plan cache, so warm reads
            stay lock-free regardless of which path planned the pair.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        spt_cache_size: int = AdaptationPlanner.SPT_CACHE_SIZE,
        lazy_components: Optional[int] = LAZY_PLAN_COMPONENTS,
    ):
        self.workers = workers
        self.spt_cache_size = spt_cache_size
        self.lazy_components = lazy_components
        self._registry_lock = threading.Lock()
        self._specs: Dict[str, _SpecEntry] = {}
        self._evictions = 0

    # -- spec registry -----------------------------------------------------------
    def register(
        self,
        universe: ComponentUniverse,
        invariants: InvariantSet,
        actions: ActionLibrary,
    ) -> str:
        """Ensure a spec entry exists; returns its content digest.

        Idempotent: registering an equal spec again lands on the same
        warm entry.  Front ends keep the digest and address every later
        request through the ``*_digest`` methods, skipping the per-call
        spec hashing the object-keyed methods pay.
        """
        digest = spec_digest(universe, invariants, actions)
        self._ensure_entry(digest, universe, invariants, actions)
        return digest

    def has_spec(self, digest: str) -> bool:
        return digest in self._specs

    def digests(self) -> Tuple[str, ...]:
        with self._registry_lock:
            return tuple(self._specs)

    def evict(self, digest: str) -> bool:
        """Drop a spec entry (and its warm caches); True when it existed."""
        with self._registry_lock:
            existed = self._specs.pop(digest, None) is not None
            if existed:
                self._evictions += 1
        return existed

    def _ensure_entry(
        self,
        digest: str,
        universe: ComponentUniverse,
        invariants: InvariantSet,
        actions: ActionLibrary,
    ) -> _SpecEntry:
        entry = self._specs.get(digest)  # lock-free fast path (dict read)
        if entry is not None:
            return entry
        with self._registry_lock:
            entry = self._specs.get(digest)
            if entry is None:
                entry = _SpecEntry(
                    AdaptationPlanner(
                        universe,
                        invariants,
                        actions,
                        workers=self.workers,
                        spt_cache_size=self.spt_cache_size,
                    )
                )
                self._specs[digest] = entry
        return entry

    def _entry_for(
        self,
        universe: ComponentUniverse,
        invariants: InvariantSet,
        actions: ActionLibrary,
    ) -> _SpecEntry:
        return self._ensure_entry(
            spec_digest(universe, invariants, actions),
            universe,
            invariants,
            actions,
        )

    def _entry(self, digest: str) -> _SpecEntry:
        entry = self._specs.get(digest)
        if entry is None:
            raise KeyError(f"unknown spec digest {digest!r}")
        return entry

    def planner_for(
        self,
        universe: ComponentUniverse,
        invariants: InvariantSet,
        actions: ActionLibrary,
    ) -> AdaptationPlanner:
        """The shared planner for this spec (created on first use).

        Callers holding a planner directly (e.g. a manager runtime) get
        the warm caches but bypass the service's cold-path lock — fine
        for a single-threaded runtime loop, not for concurrent callers.
        """
        return self._entry_for(universe, invariants, actions).planner

    # -- planning ----------------------------------------------------------------
    def plan(
        self,
        universe: ComponentUniverse,
        invariants: InvariantSet,
        actions: ActionLibrary,
        source: Configuration,
        target: Configuration,
    ) -> AdaptationPlan:
        """One MAP request against the shared spec caches.

        Warm pairs return without taking any lock; cold pairs serialize
        on the spec's lock (one Dijkstra, then every waiter reads the
        fresh cache entry).

        Raises like :meth:`AdaptationPlanner.plan` (unsafe endpoints,
        unreachable target).
        """
        entry = self._entry_for(universe, invariants, actions)
        return self._plan_entry(entry, source, target)

    def plan_digest(
        self,
        digest: str,
        source: Configuration,
        target: Configuration,
        method: str = "auto",
    ) -> AdaptationPlan:
        """:meth:`plan` addressed by digest (``KeyError`` when unknown).

        *method* ``auto`` routes by universe size; ``dijkstra``, ``lazy``,
        and ``collaborative`` force the respective planner entry point
        (all land in the shared per-pair plan cache).
        """
        if method not in PLAN_METHODS:
            raise ValueError(
                f"method must be one of {PLAN_METHODS}, got {method!r}"
            )
        return self._plan_entry(self._entry(digest), source, target, method)

    def _plan_entry(
        self,
        entry: _SpecEntry,
        source: Configuration,
        target: Configuration,
        method: str = "auto",
    ) -> AdaptationPlan:
        hit, plan = entry.planner.peek_plan(source, target)
        if hit:
            entry.count("warm_hits")
            if plan is None:
                raise NoSafePathError(no_safe_path_message(source, target))
            return plan
        with entry.lock:
            # Re-peek under the lock: a concurrent caller may have planned
            # this exact pair while we waited.  Without this, two racing
            # cold requests would both count (and plan) cold — the
            # accounting hammer test pins exactness.
            hit, plan = entry.planner.peek_plan(source, target)
            if hit:
                entry.count("warm_hits")
                if plan is None:
                    raise NoSafePathError(no_safe_path_message(source, target))
                return plan
            if method == "lazy" or (
                method == "auto" and self._oversized(entry.planner.universe)
            ):
                entry.count("lazy_plans")
                return entry.planner.lazy_plan(source, target)
            entry.count("cold_plans")
            if method == "collaborative":
                return entry.planner.plan_collaborative(source, target)
            return entry.planner.plan(source, target)

    def count_warm_hit(self, digest: str) -> bool:
        """Credit one warm hit to *digest*; False when the spec is gone.

        For front-end wire caches that answer repeated requests from
        precomputed bytes: the response bypasses the planner, but the
        traffic still shows up in the spec's warm statistics — and a
        ``False`` return tells the cache its spec was evicted.
        """
        entry = self._specs.get(digest)
        if entry is None:
            return False
        entry.count("warm_hits")
        return True

    def _oversized(self, universe: ComponentUniverse) -> bool:
        """True when the spec must be routed to the lazy frontier path."""
        return (
            self.lazy_components is not None
            and len(universe) > self.lazy_components
        )

    def plan_many(
        self,
        universe: ComponentUniverse,
        invariants: InvariantSet,
        actions: ActionLibrary,
        pairs: Sequence[Tuple[Configuration, Configuration]],
    ) -> List[Optional[AdaptationPlan]]:
        """Batched MAP solving against the shared spec caches.

        Semantics follow :meth:`AdaptationPlanner.plan_many`: one result
        per request in input order, ``None`` for unreachable pairs.
        Oversized specs answer each pair via the lazy frontier search
        (unsafe endpoints still raise; unreachable pairs yield ``None``).
        """
        entry = self._entry_for(universe, invariants, actions)
        return self._plan_many_entry(entry, pairs)

    def plan_many_digest(
        self,
        digest: str,
        pairs: Sequence[Tuple[Configuration, Configuration]],
    ) -> List[Optional[AdaptationPlan]]:
        """:meth:`plan_many` addressed by digest (``KeyError`` when unknown)."""
        return self._plan_many_entry(self._entry(digest), pairs)

    def _plan_many_entry(
        self,
        entry: _SpecEntry,
        pairs: Sequence[Tuple[Configuration, Configuration]],
    ) -> List[Optional[AdaptationPlan]]:
        with entry.lock:
            if self._oversized(entry.planner.universe):
                entry.count("lazy_plans", len(pairs))
                results: List[Optional[AdaptationPlan]] = []
                for source, target in pairs:
                    try:
                        results.append(entry.planner.lazy_plan(source, target))
                    except NoSafePathError:
                        results.append(None)
                return results
            entry.count("cold_plans", len(pairs))
            return entry.planner.plan_many(pairs)

    def plan_k_digest(
        self,
        digest: str,
        source: Configuration,
        target: Configuration,
        k: int,
    ) -> List[AdaptationPlan]:
        """The k best alternates for a pair, by digest.

        Eager-only (the k-shortest enumeration needs the materialized
        SAG): oversized specs raise :class:`ValueError` carrying the
        explanation the CLI shows.
        """
        entry = self._entry(digest)
        if self._oversized(entry.planner.universe):
            raise ValueError(
                f"k-best alternates need the eager SAG, which is capped at "
                f"{self.lazy_components} components "
                f"(spec has {len(entry.planner.universe)})"
            )
        with entry.lock:
            return list(entry.planner.plan_k(source, target, k))

    # -- temporal verification ---------------------------------------------------
    def _compiled_property(
        self, entry: _SpecEntry, phi: PFormula
    ) -> CompiledProperty:
        """The spec's compiled form of *phi* (compiled once, then warm).

        Keyed by the canonical formula text, so structurally equal
        formulas — even separately constructed objects — share one
        compilation per spec digest.  Warm lookups bump ``verify_hits``.
        """
        key = property_to_text(phi)
        compiled = entry.properties.get(key)  # lock-free (dict only grows)
        if compiled is not None:
            entry.count("verify_hits")
            return compiled
        with entry.lock:
            compiled = entry.properties.get(key)
            if compiled is None:
                compiled = CompiledProperty(
                    phi, entry.planner.universe.atom_bits
                )
                entry.properties[key] = compiled
        return compiled

    def compiled_property_digest(
        self, digest: str, phi: PFormula
    ) -> CompiledProperty:
        """Per-digest compiled-property cache (``KeyError`` when unknown)."""
        return self._compiled_property(self._entry(digest), phi)

    def verify_paths(
        self,
        universe: ComponentUniverse,
        invariants: InvariantSet,
        actions: ActionLibrary,
        source: Configuration,
        target: Configuration,
        phi: PFormula,
        quantifier: str = "all",
        k: Optional[int] = None,
        max_expansions: Optional[int] = None,
        lazy: Optional[bool] = None,
    ) -> PathVerdict:
        """Path-quantified verification against the shared spec caches.

        Semantics of :func:`repro.ltl.paths.verify_paths`, with the
        service's amortization on top: the property compiles once per
        spec digest, the path enumeration reuses (and feeds) the shared
        plan caches, and oversized specs route to the lazy frontier
        exactly as :meth:`plan` does (*lazy* forces either mode).
        """
        entry = self._entry_for(universe, invariants, actions)
        return self._verify_entry(
            entry, source, target, phi, quantifier, k, max_expansions, lazy
        )

    def verify_paths_digest(
        self,
        digest: str,
        source: Configuration,
        target: Configuration,
        phi: PFormula,
        quantifier: str = "all",
        k: Optional[int] = None,
        max_expansions: Optional[int] = None,
        lazy: Optional[bool] = None,
    ) -> PathVerdict:
        """:meth:`verify_paths` addressed by digest (``KeyError`` when unknown)."""
        return self._verify_entry(
            self._entry(digest),
            source,
            target,
            phi,
            quantifier,
            k,
            max_expansions,
            lazy,
        )

    def _verify_entry(
        self,
        entry: _SpecEntry,
        source: Configuration,
        target: Configuration,
        phi: PFormula,
        quantifier: str,
        k: Optional[int],
        max_expansions: Optional[int],
        lazy: Optional[bool],
    ) -> PathVerdict:
        compiled = self._compiled_property(entry, phi)
        if lazy is None:
            lazy = self._oversized(entry.planner.universe)
        with entry.lock:
            return _verify_paths(
                entry.planner,
                source,
                target,
                phi,
                quantifier,
                k,
                lazy=lazy,
                max_expansions=max_expansions,
                compiled=compiled,
            )

    def check_plans(
        self,
        universe: ComponentUniverse,
        invariants: InvariantSet,
        actions: ActionLibrary,
        pairs: Sequence[Tuple[Configuration, Configuration]],
        phi: PFormula,
    ) -> List[Optional[Tuple[AdaptationPlan, Optional[int]]]]:
        """Batch-check φ along the MAP of every request pair.

        Plans the batch via :meth:`plan_many`, then evaluates the
        compiled property along each resulting plan's committed
        configurations.  One result per pair, in input order:
        ``None`` for unreachable pairs, else ``(plan, violation)``
        where *violation* is the index of the first committed
        configuration falsifying φ (``None`` when the plan satisfies
        it end to end).
        """
        entry = self._entry_for(universe, invariants, actions)
        compiled = self._compiled_property(entry, phi)
        plans = self._plan_many_entry(entry, pairs)
        return [
            None
            if plan is None
            else (plan, check_plan(compiled, entry.planner, plan))
            for plan in plans
        ]

    # -- introspection -----------------------------------------------------------
    def stats(self) -> ServiceStats:
        """Aggregate counters across every registered spec.

        Consistent under concurrent mutation: the entry list is copied
        under the registry lock, then each entry's counters are read
        atomically under its ``stats_lock`` — no torn warm/cold reads.
        """
        with self._registry_lock:
            entries = list(self._specs.values())
            evictions = self._evictions
        snapshots = [entry.snapshot() for entry in entries]
        return ServiceStats(
            specs=len(entries),
            warm_hits=sum(s["warm_hits"] for s in snapshots),
            cold_plans=sum(s["cold_plans"] for s in snapshots),
            lazy_plans=sum(s["lazy_plans"] for s in snapshots),
            verify_hits=sum(s["verify_hits"] for s in snapshots),
            evictions=evictions,
        )

    def spec_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-spec counter snapshots keyed by digest (each consistent)."""
        with self._registry_lock:
            items = list(self._specs.items())
        out: Dict[str, Dict[str, int]] = {}
        for digest, entry in items:
            snap = entry.snapshot()
            snap["components"] = len(entry.planner.universe)
            out[digest] = snap
        return out
