"""Video client process app (Figure 3, right): handheld and laptop.

Packets arrive at the client's data endpoint, traverse the receiving
MetaSocket's decoder chain, and are reassembled into frames for the
player.  Every delivered data packet is verified against its source
checksum: a packet whose payload is still encrypted (its decoder was
missing — the symptom of an unsafe adaptation) is recorded both as a
``corrupt`` CCS action and as a :class:`~repro.trace.CorruptionRecord`.

Adaptation hooks: a reset with ``await_flush`` holds the local safe state
until the server's in-band FLUSH marker arrives (the global safe drain
condition); otherwise the client is safe between packets immediately.
While the process is blocked, arriving packets buffer in the MetaSocket
and are decoded after the in-action — never dropped.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.apps.video.system import DECODER_SCHEMES, make_decoder
from repro.apps.video.transport import DataMessage, data_endpoint
from repro.codecs.frames import FrameResult, Reassembler
from repro.codecs.packets import Packet
from repro.components.metasocket import RecvMetaSocket
from repro.core.actions import AdaptiveAction
from repro.protocol.messages import Envelope
from repro.sim.cluster import ProcessApp
from repro.trace import CommRecord, CorruptionRecord


class VideoClientApp(ProcessApp):
    """Simulated video client: recv MetaSocket → reassembler → player."""

    def __init__(self, client_index: int, cid_stride: int = 8):
        self.client_index = client_index
        self.cid_stride = cid_stride
        self.socket: Optional[RecvMetaSocket] = None
        self.reassembler = Reassembler()
        self.packets_received = 0
        self.packets_ok = 0
        self.packets_corrupt = 0
        self.frames_played = 0
        self.frames_corrupt = 0
        self.markers_seen = 0
        self._pending_reset: Optional[Tuple[str, bool]] = None  # (step_key, await_flush)
        self._flush_seen: set = set()
        self._started = False

    # -- lifecycle ----------------------------------------------------------------
    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self.socket = RecvMetaSocket(
            f"{self.host.process_id}.recv", deliver=self._deliver, filters=()
        )
        self._rebuild_chain()
        self.host.network.register(
            data_endpoint(self.host.process_id), self._on_envelope
        )

    def _rebuild_chain(self) -> None:
        """FEC reconstructor first (repairs ciphertext), then crypto decoders."""
        from repro.apps.video.extended import FEC_DECODERS
        from repro.codecs.fec import FecDecoderFilter

        assert self.socket is not None
        for name in self.socket.chain.filter_names():
            self.socket.remove_filter(name)
        for name in sorted(self.host.components):
            if name in FEC_DECODERS:
                self.socket.insert_filter(FecDecoderFilter(name))
        for name in sorted(self.host.components):
            if name in DECODER_SCHEMES:
                self.socket.insert_filter(make_decoder(name))

    def _cid(self, packet: Packet) -> int:
        return packet.seq * self.cid_stride + self.client_index

    # -- data plane ------------------------------------------------------------------
    def _on_envelope(self, envelope: Envelope) -> None:
        message = envelope.message
        assert isinstance(message, DataMessage)
        packet = message.packet
        if packet.is_marker:
            self._on_marker(packet)
            return
        if packet.is_data:
            self.packets_received += 1
            self.host.trace.append(
                CommRecord(
                    time=self.host.sim.now,
                    cid=self._cid(packet),
                    action="receive",
                    component=self.socket.name if self.socket else "",
                    process=self.host.process_id,
                )
            )
        assert self.socket is not None
        self.socket.receive(packet)

    def _on_marker(self, packet: Packet) -> None:
        self.markers_seen += 1
        self._flush_seen.add(packet.marker_key)
        if self._pending_reset is not None:
            step_key, awaiting = self._pending_reset
            if awaiting and packet.marker_key == step_key:
                self._pending_reset = None
                self.host.local_safe(step_key)

    def _deliver(self, packet: Packet) -> None:
        """Player-side delivery: verify, account, reassemble."""
        if not packet.is_data:
            return
        now = self.host.sim.now
        cid = self._cid(packet)
        if packet.recovered:
            # rebuilt by FEC: it never crossed the wire, so its 'receive'
            # happens at reconstruction time
            self.packets_received += 1
            self.host.trace.append(
                CommRecord(
                    time=now,
                    cid=cid,
                    action="receive",
                    component=self.socket.name if self.socket else "",
                    process=self.host.process_id,
                )
            )
        if packet.enc_scheme is not None or not packet.verify():
            self.packets_corrupt += 1
            self.host.trace.append(
                CommRecord(
                    time=now,
                    cid=cid,
                    action="corrupt",
                    component=self.socket.name if self.socket else "",
                    process=self.host.process_id,
                )
            )
            self.host.trace.append(
                CorruptionRecord(
                    time=now,
                    process=self.host.process_id,
                    detail=(
                        f"packet seq={packet.seq} undecodable "
                        f"(enc_scheme={packet.enc_scheme!r})"
                    ),
                    cid=cid,
                )
            )
            return
        self.packets_ok += 1
        self.host.trace.append(
            CommRecord(
                time=now,
                cid=cid,
                action="decode",
                component=self.socket.name if self.socket else "",
                process=self.host.process_id,
            )
        )
        result = self.reassembler.add(packet)
        if result is not None:
            self._play(result)

    def _play(self, result: FrameResult) -> None:
        if result.ok:
            self.frames_played += 1
        else:  # pragma: no cover - corrupt chunks already counted per packet
            self.frames_corrupt += 1

    # -- adaptation hooks ---------------------------------------------------------------
    def begin_reset(
        self, step_key: str, action: AdaptiveAction, inject_flush: bool, await_flush: bool
    ) -> None:
        if await_flush and step_key not in self._flush_seen:
            # Hold until the server's drain marker arrives in-band.
            self._pending_reset = (step_key, True)
            return
        self._pending_reset = None
        # Between packets (simulator events are atomic): locally safe now.
        self.host.sim.call_soon(lambda: self.host.local_safe(step_key))

    def abort_reset(self, step_key: str) -> None:
        self._pending_reset = None

    def apply_action(self, action: AdaptiveAction) -> None:
        self._rebuild_chain()

    def undo_action(self, action: AdaptiveAction) -> None:
        self._rebuild_chain()

    # -- blocking: buffer in the MetaSocket, flush on resume ------------------------------
    def on_blocked(self) -> None:
        if self.socket is not None:
            self.socket.set_blocked(True)

    def on_resumed(self) -> None:
        if self.socket is not None:
            self.socket.set_blocked(False)
