"""Baseline adaptation strategies for comparison (paper §6 related work).

Each baseline drives the *same* simulated video system as the safe
protocol but with a weaker discipline, so the executable safety checker
can show exactly which clause breaks:

* :class:`UnsafeSwap` — immediate recomposition, no quiescence, no safe
  path, no drain (the naive hot-swap the paper's introduction warns
  about).  Fails the CCS clause (corrupted in-flight packets) and the
  blocked-discipline check; the staggered variant also commits unsafe
  intermediate configurations (dependency clause).
* :class:`LocalQuiescenceSwap` — Kramer–Magee-style: every process swaps
  its own slice when *locally* quiescent, uncoordinated.  Shows the
  paper's critique of quiescence-only approaches: local safety without
  the global safe condition still corrupts in-flight traffic and visits
  unsafe global configurations.
* :class:`TwoPhaseSwap` — the whole delta as a single coordinated step
  (plain two-phase commit analogue, §4.4's comparison).  Safe, but blocks
  the sender for the full drain — the cost Table 2 assigns to composite
  actions, and the reason the MAP prefers sequences of cheap steps.
* :class:`RestartSwap` — stop-the-world: block every process, swap,
  resume.  Safe for dependencies but drops all in-flight packets and
  interrupts the stream everywhere.
"""

from repro.baselines.common import BaselineResult, delta_action
from repro.baselines.unsafe import UnsafeSwap
from repro.baselines.quiescence import LocalQuiescenceSwap
from repro.baselines.twophase import TwoPhaseSwap
from repro.baselines.restart import RestartSwap

__all__ = [
    "BaselineResult",
    "delta_action",
    "UnsafeSwap",
    "LocalQuiescenceSwap",
    "TwoPhaseSwap",
    "RestartSwap",
]
