"""Targeted tests of the compiled property IR.

The semantic equivalence ``CompiledProperty == PTLTLMonitor == O(n²)
reference`` is pinned by the hypothesis suite in ``tests/test_ltl.py``;
these tests cover the IR mechanics the differential suite cannot see —
slot sharing, initial state, out-of-universe atoms, and the whole-
sequence helpers the path checker is built on.
"""

from repro.ltl import (
    CompiledProperty,
    Historically,
    Once,
    PAnd,
    PNot,
    Prop,
    compile_property,
    parse_property,
)

BITS = {"a": 1, "b": 2, "c": 4}


class TestCompilation:
    def test_shared_subformula_gets_one_slot(self):
        shared = Once(Prop("a"))
        formula = PAnd(shared, PNot(shared))
        compiled = CompiledProperty(formula, BITS)
        # slots: a, Once(a), Not(Once(a)), And — not five
        assert len(compiled._program) == 4

    def test_initial_state_sets_historically_slots_only(self):
        hist = compile_property(Historically(Prop("a")))
        assert hist.initial_state != 0
        latch = compile_property(Once(Prop("a")))
        assert latch.initial_state == 0

    def test_unknown_atom_compiles_to_constant_false(self):
        # mirrors invariant compilation: out-of-universe names are false
        compiled = CompiledProperty(parse_property("!ghost"), BITS)
        assert compiled.holds_on(0b111)
        assert compiled.mask_of({"ghost", "a"}) == 1


class TestSequenceHelpers:
    def test_run_over_masks(self):
        compiled = CompiledProperty(parse_property("once(a)"), BITS)
        assert compiled.run([0, 1, 0]) == [False, True, True]

    def test_first_violation(self):
        compiled = CompiledProperty(parse_property("historically(a)"), BITS)
        assert compiled.first_violation([1, 1, 2, 1]) == 2
        assert compiled.first_violation([1, 1]) is None

    def test_holds_on_is_the_length_one_path(self):
        compiled = CompiledProperty(parse_property("historically(a & !b)"), BITS)
        assert compiled.holds_on(1)
        assert not compiled.holds_on(3)

    def test_state_expression_atom_over_masks(self):
        compiled = CompiledProperty(
            parse_property("historically({one_of(a, b)})"), BITS
        )
        assert compiled.first_violation([1, 2, 3]) == 2  # a & b both present


class TestCompiledMonitor:
    def test_monitors_are_independent(self):
        compiled = CompiledProperty(parse_property("once(a)"), BITS)
        first, second = compiled.monitor(), compiled.monitor()
        assert first.step({"a"}) is True
        assert second.step(set()) is False  # unaffected by first's latch
        assert first.steps == 1 and second.value is False

    def test_step_mask_matches_step(self):
        compiled = CompiledProperty(parse_property("since(a, b)"), BITS)
        by_names = compiled.monitor()
        by_masks = compiled.monitor()
        trace = [{"b"}, {"a"}, set(), {"a", "b"}]
        for events in trace:
            assert by_names.step(events) == by_masks.step_mask(
                compiled.mask_of(events)
            )
