"""Safe-configuration enumeration (paper §4.2, step 1).

"Based on the source/target configurations of an adaptation request and
dependency relationships, this step produces a set of safe configurations."

A configuration is safe iff it satisfies every invariant.  Enumeration over
*n* components is 2^n in the worst case — the paper acknowledges this in §7
— so besides the full sweep we support *restricted* enumeration: freeze the
components no adaptive action can touch at their current values and only
vary the rest.  The restriction is exact (it enumerates precisely the safe
configurations reachable by the given actions from the given base).

Performance: safety testing runs on the bitmask fast path.  The invariant
conjunction is compiled once (:mod:`repro.expr.compile`) to a closure over
an integer presence mask, and verdicts are memoized per mask in a table
shared by every consumer — :meth:`SafeConfigurationSpace.is_safe`, the
backtracking enumerators, :meth:`SafeAdaptationGraph.build
<repro.core.sag.SafeAdaptationGraph.build>`, and the planner's lazy A*.
The frozenset/AST evaluation path remains the semantic source of truth and
still serves configurations containing components outside the universe.
"""

from __future__ import annotations

import os
import pickle
import time
import warnings
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
    Union,
)

from repro.core.invariants import InvariantSet
from repro.core.model import ComponentUniverse, Configuration
from repro.errors import UnknownComponentError, UnsafeConfigurationError
from repro.parallel.bitset import SafetyMemo

#: either memo backing works everywhere a memo table is accepted — the
#: hybrid :class:`SafetyMemo` is dict-compatible by construction
MemoTable = Union[Dict[int, bool], SafetyMemo]


#: below this many components a process pool costs more than it saves
MIN_PARALLEL_COMPONENTS = 12

#: below this many estimated backtracking nodes (surviving partitions times
#: the free-suffix subtree size) pool spin-up dominates; stay serial
MIN_PARALLEL_MASK_NODES = 1 << 18

#: task-queue chunks per worker — idle workers steal the next chunk, so
#: oversubscription is what evens out skewed partition sizes
PARALLEL_OVERSUBSCRIPTION = 8


def _cpu_count() -> int:
    """Usable CPU count (module-level hook so tests can simulate hosts)."""
    return os.cpu_count() or 1


@dataclass(frozen=True)
class EnumerationStats:
    """How the last :meth:`SafeConfigurationSpace.enumerate` actually ran.

    ``reason`` records why the mode was chosen — in particular why a
    parallel request fell back to serial (clamped workers, small universe,
    root-pruned partitions, pool failure) — so benches and operators can
    tell a genuine parallel win from a silent fallback.  The wall-time
    fields carry the timing evidence: how much of ``total_ms`` went to
    pool spin-up versus waiting on chunks, and whether the persistent
    pool was already warm.
    """

    mode: str  # "serial" | "parallel"
    requested_workers: Optional[int]
    effective_workers: int
    reason: str
    partitions: int = 0  # surviving prefix partitions (parallel planning)
    chunks: int = 0  # tasks submitted to the shared queue (parallel)
    safe_count: int = 0
    #: "" (serial) | "shm-plane" | "pickled-masks" — how results traveled
    transport: str = ""
    #: True when the persistent pool existed before this call
    pool_warm: bool = False
    pool_spinup_ms: float = 0.0
    chunk_wait_ms: float = 0.0
    total_ms: float = 0.0


class SafeConfigurationSpace:
    """All safe configurations of a universe under an invariant set.

    With ``workers=N`` (N > 1), the full enumeration partitions the mask
    space on the high bits of the component prefix and fans the
    partitions out across a process pool — see
    :meth:`_enumerate_parallel`.  Restricted enumeration and membership
    queries are unaffected by the option.
    """

    def __init__(
        self,
        universe: ComponentUniverse,
        invariants: InvariantSet,
        workers: Optional[int] = None,
    ):
        self.universe = universe
        self.invariants = invariants
        self.workers = workers
        self._cache: Optional[Tuple[Configuration, ...]] = None
        self._safe_memo: SafetyMemo = SafetyMemo(len(universe))
        self._compiled: Optional[Callable[[int], bool]] = None
        self._compiled_partial: Optional[Tuple[Callable, ...]] = None
        #: how the last full enumeration ran (None until one happens)
        self.last_enumeration_stats: Optional[EnumerationStats] = None

    # -- compiled fast path ------------------------------------------------------
    @property
    def safe_memo(self) -> SafetyMemo:
        """The shared mask -> verdict memo table (exposed for reuse)."""
        return self._safe_memo

    def _compiled_mask_fn(self) -> Callable[[int], bool]:
        if self._compiled is None:
            self._compiled = self.invariants.compile_mask(self.universe.atom_bits)
        return self._compiled

    def _compiled_partial_fns(self) -> Tuple[Callable, ...]:
        if self._compiled_partial is None:
            self._compiled_partial = self.invariants.compile_mask_partial(
                self.universe.atom_bits
            )
        return self._compiled_partial

    def _check_schedule(self, names: Tuple[str, ...]) -> Tuple[Tuple[Callable, ...], ...]:
        """Per-position invariant checks for a backtracking order.

        ``schedule[i]`` holds the compiled three-valued closures of the
        invariants that mention ``names[i]`` — the only invariants whose
        verdict can change when that component is decided.  Checking just
        those at each depth is exact (the parent node already vetted the
        rest) and drops the per-node work from |I| closures to the
        invariant's fan-in.
        """
        fns = self._compiled_partial_fns()
        buckets: List[List[Callable]] = [[] for _ in names]
        position = {name: i for i, name in enumerate(names)}
        for inv, fn in zip(self.invariants, fns):
            for atom in inv.atoms():
                index = position.get(atom)
                if index is not None:
                    buckets[index].append(fn)
        return tuple(tuple(bucket) for bucket in buckets)

    def is_safe_mask(self, mask: int) -> bool:
        """Memoized safety verdict for an integer presence mask."""
        verdict = self._safe_memo.get(mask)
        if verdict is None:
            verdict = self._compiled_mask_fn()(mask)
            self._safe_memo[mask] = verdict
        return verdict

    def are_safe_masks(self, masks: Iterable[int]) -> List[bool]:
        """Batched :meth:`is_safe_mask` — one verdict per mask, in order.

        Hot-path callers (lazy successor generation, lint sweeps) hand
        over a whole candidate batch so the compiled-closure and memo
        lookups are resolved once per batch instead of once per call.
        """
        memo = self._safe_memo
        memo_get = memo.get
        compiled = self._compiled_mask_fn()
        out: List[bool] = []
        for mask in masks:
            verdict = memo_get(mask)
            if verdict is None:
                verdict = compiled(mask)
                memo[mask] = verdict
            out.append(verdict)
        return out

    # -- membership ------------------------------------------------------------
    def is_safe(self, config: Configuration) -> bool:
        """True iff *config* is a safe configuration (paper §3.1)."""
        try:
            mask = self.universe.mask_of(config)
        except UnknownComponentError:
            # Configurations reaching outside the universe keep the
            # set-based evaluation (they have no mask encoding).
            return self.invariants.all_hold(config)
        return self.is_safe_mask(mask)

    def require_safe(self, config: Configuration, role: str = "configuration") -> None:
        """Raise :class:`UnsafeConfigurationError` with an explanation if unsafe."""
        if not self.is_safe(config):
            raise UnsafeConfigurationError(
                f"{role} is unsafe: {self.invariants.explain(config)}"
            )

    # -- enumeration ------------------------------------------------------------
    def enumerate(self) -> Tuple[Configuration, ...]:
        """All safe configurations over the full universe (cached).

        Deterministic order: ascending by the universe's bit-vector value.
        Implemented by :meth:`enumerate_backtracking` (invariant
        propagation prunes hopeless branches early); the exhaustive
        filter over ``all_configurations`` is kept as the property-test
        oracle.
        """
        if self._cache is None:
            self._cache = self._enumerate_with_stats()
        return self._cache

    def _enumerate_serial(
        self, reason: str, started: Optional[float] = None
    ) -> Tuple[Configuration, ...]:
        """Serial enumeration, recording *reason* on the stats attribute."""
        if started is None:
            started = time.perf_counter()
        result = self.enumerate_backtracking()
        self.last_enumeration_stats = EnumerationStats(
            mode="serial",
            requested_workers=self.workers,
            effective_workers=1,
            reason=reason,
            safe_count=len(result),
            total_ms=(time.perf_counter() - started) * 1e3,
        )
        return result

    def _enumerate_with_stats(self) -> Tuple[Configuration, ...]:
        """Pick serial vs parallel and record the decision.

        ``workers=1`` is exactly serial by contract (no pool spin-up);
        requests beyond :func:`_cpu_count` clamp with a warning — extra
        processes on a saturated host only add scheduling overhead.
        """
        started = time.perf_counter()
        requested = self.workers
        n = len(self.universe)
        if requested is None:
            return self._enumerate_serial("serial: no workers requested", started)
        if requested <= 1:
            return self._enumerate_serial(
                "serial: workers=1 is serial by contract", started
            )
        if n < MIN_PARALLEL_COMPONENTS:
            return self._enumerate_serial(
                f"serial: {n} components below the "
                f"{MIN_PARALLEL_COMPONENTS}-component parallel floor",
                started,
            )
        cpus = _cpu_count()
        effective = min(requested, cpus)
        if effective < requested:
            warnings.warn(
                f"workers={requested} exceeds cpu_count={cpus}; "
                f"clamping to {effective}",
                RuntimeWarning,
                stacklevel=3,
            )
        if effective <= 1:
            return self._enumerate_serial(
                f"serial: workers={requested} clamped to 1 (cpu_count={cpus})",
                started,
            )
        return self._enumerate_parallel(effective, started)

    def enumerate_masks(self) -> Tuple[int, ...]:
        """Masks of :meth:`enumerate`'s result, in the same order."""
        mask_of = self.universe.mask_of
        return tuple(mask_of(config) for config in self.enumerate())

    def enumerate_restricted(
        self,
        base: Configuration,
        free_components: Iterable[str],
    ) -> Tuple[Configuration, ...]:
        """Safe configurations varying only *free_components* over *base*.

        Components outside *free_components* keep their membership from
        *base*.  This is how a planner scopes the search to the components
        an adaptation can actually touch, avoiding the full 2^n sweep: the
        three-valued backtracking pruner runs over just the free
        components, with everything else pre-decided, and leaf verdicts go
        through the shared safety memo table.
        """
        free: Tuple[str, ...] = tuple(dict.fromkeys(free_components))
        self.universe.validate_members(free)
        frozen = base.members - frozenset(free)
        if not frozen <= self.universe.names:
            # Frozen members outside the universe have no bit encoding;
            # keep the exhaustive set-based sweep for that corner.
            return self._enumerate_restricted_setwise(frozen, free)
        universe = self.universe
        present0 = universe.mask_of_names(frozen)
        from_mask = universe.from_mask
        out = [from_mask(mask) for mask in self._restricted_masks(present0, free)]
        # free components may interleave with frozen ones in universe
        # order, so recursion order is not globally ascending — re-sort
        out.sort(key=universe.to_bits)
        return tuple(out)

    def _restricted_masks(
        self, present0: int, free: Tuple[str, ...]
    ) -> List[int]:
        """Safe masks varying only *free* bits over the frozen *present0*.

        The masks-only core of :meth:`enumerate_restricted`, shared with
        the parallel workers (which never materialize
        :class:`Configuration` objects — the parent interns them once
        after the merge).  Leaf masks are recorded in the shared safety
        memo.  Output follows recursion order: ascending whenever the
        free components form a suffix of the universe order.
        """
        universe = self.universe
        free_bits = tuple(universe.bit_of(name) for name in free)
        # everything outside the free components is decided up front
        decided0 = universe.full_mask ^ universe.mask_of_names(free)
        # invariants not touching a free component are fully decided at
        # the root; reject the whole restriction in one pass if any fails
        for expr in self._compiled_partial_fns():
            if expr(present0, decided0) is False:
                return []
        schedule = self._check_schedule(free)
        memo = self._safe_memo
        out: List[int] = []
        n = len(free_bits)

        def recurse(index: int, present: int, decided: int) -> None:
            if index == n:
                memo[present] = True
                out.append(present)
                return
            bit = free_bits[index]
            decided |= bit
            checks = schedule[index]
            # '0' branch first, then '1' — ascending within the free bits
            for candidate in (present, present | bit):
                for expr in checks:
                    if expr(candidate, decided) is False:
                        break
                else:
                    recurse(index + 1, candidate, decided)

        recurse(0, present0, decided0)
        return out

    def _enumerate_restricted_setwise(
        self, frozen: FrozenSet[str], free: Tuple[str, ...]
    ) -> Tuple[Configuration, ...]:
        """Exhaustive fallback for bases reaching outside the universe."""
        out: List[Configuration] = []
        n = len(free)
        for mask in range(1 << n):
            members = set(frozen)
            for i in range(n):
                if mask & (1 << (n - 1 - i)):
                    members.add(free[i])
            config = Configuration(members)
            if self.is_safe(config):
                out.append(config)
        out.sort(key=lambda c: "".join(
            "1" if name in c else "0" for name in self.universe.order
        ))
        return tuple(out)

    def enumerate_backtracking(self) -> Tuple[Configuration, ...]:
        """Safe set via backtracking with invariant propagation.

        Decides components one at a time (in universe order) and prunes a
        branch as soon as any invariant is *determined false* under
        three-valued evaluation — so branches that can never satisfy a
        one-of/dependency constraint are abandoned without expanding the
        remaining 2^k subtree.  Produces exactly :meth:`enumerate`'s
        result (same order) but scales far better on constrained spaces.

        Runs entirely on compiled bitmask closures; every leaf verdict is
        recorded in the shared safety memo so later SAG construction and
        lazy planning reuse it for free.
        """
        universe = self.universe
        order = universe.order
        order_bits = tuple(universe.bit_of(name) for name in order)
        # invariants with no universe atom are constant under the mask
        # encoding — decide them once up front instead of per node
        for expr in self._compiled_partial_fns():
            if expr(0, 0) is False:
                return ()
        schedule = self._check_schedule(order)
        memo = self._safe_memo
        out: List[Configuration] = []
        from_mask = universe.from_mask
        n = len(order_bits)

        def recurse(index: int, present: int, decided: int) -> None:
            if index == n:
                memo[present] = True
                out.append(from_mask(present))
                return
            bit = order_bits[index]
            decided |= bit
            checks = schedule[index]
            # '0' branch first so results come out in ascending bit order
            for candidate in (present, present | bit):
                for expr in checks:
                    if expr(candidate, decided) is False:
                        break
                else:
                    recurse(index + 1, candidate, decided)

        recurse(0, 0, 0)
        return tuple(out)

    def _enumerate_parallel(
        self, workers: int, started: float
    ) -> Tuple[Configuration, ...]:
        """Full enumeration via chunked work-stealing over a process pool.

        The mask space is partitioned on the first *k* components of the
        universe order — the **high** bits of the bit-vector encoding — so
        partition index order equals ascending mask order and the
        concatenated results come out exactly as
        :meth:`enumerate_backtracking` would produce them.  The parent
        root-prunes partitions whose prefix assignment already falsifies
        an invariant under three-valued evaluation (those contain no safe
        configuration), estimates the remaining search-tree size, and
        stays serial when pool spin-up would dominate.

        The execution engine lives in :mod:`repro.parallel`:

        * the pool is **persistent and process-wide** — acquired from
          :func:`repro.parallel.pool.acquire_pool`, so spin-up is paid
          once per process, not once per enumeration; repeated
          enumerations of the same spec digest hit the workers' spec and
          partition-result caches and skip the invariant work entirely;
        * surviving partitions are split into many small chunks on a
          shared task queue — idle workers steal the next chunk, so a
          skewed partition no longer serializes the whole sweep behind
          one static assignment;
        * for universes within the bitset cap, workers write their safe
          verdicts as bits into one shared-memory **result plane** (bit
          index == mask; the prefix width is clamped so partitions own
          disjoint bytes) and the parent bulk-ORs the plane into the
          memo and word-scans it — no mask pickling.  Oversized
          universes fall back to pickled mask tuples on the same pool.

        Any pool failure (a platform without usable multiprocessing, a
        spec that cannot round-trip) falls back to the serial enumerator
        and records why — the option is a go-faster knob, never a
        behavior change.
        """
        from repro import parallel as par
        from repro.parallel import pool as pool_mod

        universe = self.universe
        order = universe.order
        n = len(order)
        target_tasks = workers * PARALLEL_OVERSUBSCRIPTION
        # the prefix must leave a free suffix of >= 3 components so each
        # partition's plane range is byte-aligned (and workers have work)
        max_k = max(1, min(12, n - 3))
        k = 1
        while (1 << k) < target_tasks and k < max_k:
            k += 1
        prefix = order[:k]
        free = order[k:]
        prefix_bits = tuple(universe.bit_of(name) for name in prefix)
        prefix_full = universe.mask_of_names(prefix)
        partial_fns = self._compiled_partial_fns()
        surviving: List[int] = []
        for value in range(1 << k):
            present0 = 0
            for i in range(k):
                if value & (1 << (k - 1 - i)):
                    present0 |= prefix_bits[i]
            if any(fn(present0, prefix_full) is False for fn in partial_fns):
                continue  # the whole partition is provably unsafe
            surviving.append(value)
        if not surviving:
            return self._enumerate_serial(
                "serial: every prefix partition root-pruned", started
            )
        estimated = len(surviving) << (n - k)
        if estimated < MIN_PARALLEL_MASK_NODES:
            return self._enumerate_serial(
                f"serial: ~{estimated} estimated search nodes below the "
                f"parallel threshold ({MIN_PARALLEL_MASK_NODES})",
                started,
            )
        chunk_size = max(1, len(surviving) // target_tasks)
        chunks = [
            (index, tuple(surviving[lo : lo + chunk_size]))
            for index, lo in enumerate(range(0, len(surviving), chunk_size))
        ]
        component_specs = tuple(
            (name, universe.component(name).process) for name in order
        )
        from repro.expr.ast import to_text

        invariant_texts = tuple(to_text(inv.expr) for inv in self.invariants)
        payload = pickle.dumps(
            (component_specs, invariant_texts, k),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        digest = par.spec_digest(payload)
        memo = self._safe_memo
        from_mask = universe.from_mask
        cached = (
            par.cached_plane(digest)
            if n <= par.MAX_BITSET_COMPONENTS
            else None
        )
        if cached is not None:
            # A previous enumeration of this exact spec already merged
            # its result plane — replay it without touching the pool.
            memo.or_safe_plane(cached)
            out = [from_mask(mask) for mask in par.iter_plane_masks(cached)]
            self.last_enumeration_stats = EnumerationStats(
                mode="parallel",
                requested_workers=self.workers,
                effective_workers=workers,
                reason=f"parallel: result plane for spec {digest} replayed "
                "from the warm plane cache",
                partitions=len(surviving),
                chunks=0,
                safe_count=len(out),
                transport="plane-cache",
                pool_warm=True,
                total_ms=(time.perf_counter() - started) * 1e3,
            )
            return tuple(out)
        try:
            import concurrent.futures

            t_pool = time.perf_counter()
            pool, spun_up = par.acquire_pool(workers)
            if spun_up:
                # round-trip a no-op so spin-up cost lands in this field
                # (and the fork server / first worker is provably up)
                pool.submit(int, 0).result()
            pool_spinup_ms = (time.perf_counter() - t_pool) * 1e3
        except Exception as exc:
            return self._enumerate_serial(
                f"serial: pool failure ({exc.__class__.__name__}: {exc})",
                started,
            )
        plane = None
        if n <= par.MAX_BITSET_COMPONENTS:
            try:
                from multiprocessing import shared_memory

                plane = shared_memory.SharedMemory(
                    create=True, size=par.plane_size(n)
                )
            except Exception:
                plane = None  # fall back to pickled masks on the pool
        plane_name = None if plane is None else plane.name
        transport = "pickled-masks" if plane is None else "shm-plane"
        results: List[Optional[Tuple[int, ...]]] = [None] * len(chunks)
        try:
            t_chunks = time.perf_counter()
            futures = [
                pool.submit(
                    pool_mod.enumerate_chunk,
                    (digest, payload, k, index, values, plane_name),
                )
                for index, values in chunks
            ]
            for future in concurrent.futures.as_completed(futures):
                index, value = future.result()
                if plane is None:
                    results[index] = value
            chunk_wait_ms = (time.perf_counter() - t_chunks) * 1e3
        except Exception as exc:
            if plane is not None:
                plane.close()
                plane.unlink()
            pool_mod.discard_pool(pool)  # it may be broken; rebuild next time
            return self._enumerate_serial(
                f"serial: pool failure ({exc.__class__.__name__}: {exc})",
                started,
            )
        out: List[Configuration] = []
        if plane is not None:
            try:
                plane_bytes = bytes(plane.buf)
            finally:
                plane.close()
                plane.unlink()
            memo.or_safe_plane(plane_bytes)
            par.store_plane(digest, plane_bytes)
            # ascending bit scan == ascending mask == serial order
            out = [from_mask(mask) for mask in par.iter_plane_masks(plane_bytes)]
        else:
            # chunk index order == ascending prefix order == ascending masks
            for masks in results:
                assert masks is not None
                for mask in masks:
                    memo[mask] = True
                    out.append(from_mask(mask))
        self.last_enumeration_stats = EnumerationStats(
            mode="parallel",
            requested_workers=self.workers,
            effective_workers=workers,
            reason=f"parallel: {len(chunks)} chunks stolen from "
            f"{len(surviving)} surviving partitions via {transport}",
            partitions=len(surviving),
            chunks=len(chunks),
            safe_count=len(out),
            transport=transport,
            pool_warm=not spun_up,
            pool_spinup_ms=pool_spinup_ms,
            chunk_wait_ms=chunk_wait_ms,
            total_ms=(time.perf_counter() - started) * 1e3,
        )
        return tuple(out)

    def lazy_view(self) -> "LazySafeSpace":
        """A point-query view sharing this space's memo and compiled closure.

        Verdicts computed by either side are visible to the other, so a
        lazy search warmed by an earlier eager enumeration (or vice
        versa) never re-evaluates an invariant conjunction.
        """
        return LazySafeSpace(
            self.universe,
            self.invariants,
            memo=self._safe_memo,
            compiled=self._compiled_mask_fn(),
        )

    def count(self) -> int:
        return len(self.enumerate())

    def to_table(self) -> List[Tuple[str, str]]:
        """Render the safe set as (bit vector, member list) rows — Table 1."""
        rows = []
        for config in self.enumerate():
            rows.append((self.universe.to_bits(config), config.label()))
        return rows

    def __iter__(self) -> Iterator[Configuration]:
        return iter(self.enumerate())

    def __len__(self) -> int:
        return self.count()

    def __contains__(self, config: Configuration) -> bool:
        return self.is_safe(config)


class LazySafeSpace:
    """Answers "is this mask safe?" memoized and on demand — never 2^n.

    The frontier-planning counterpart of :class:`SafeConfigurationSpace`:
    it exposes the same membership interface but deliberately has **no**
    ``enumerate`` — holding one is a static guarantee that the
    exponential sweep cannot happen on this code path (the paper's §7
    barrier).  Safety verdicts run on the compiled bitmask closure and
    are memoized per mask; construct via
    :meth:`SafeConfigurationSpace.lazy_view` to share the memo with an
    eager space, or directly from ``(universe, invariants)`` when no
    eager space should ever exist (oversized specs).

    ``point_queries`` / ``memo_hits`` counters are exposed for benches
    and the service layer to report cache effectiveness.
    """

    __slots__ = (
        "universe",
        "invariants",
        "_safe_memo",
        "_compiled",
        "point_queries",
        "memo_hits",
    )

    def __init__(
        self,
        universe: ComponentUniverse,
        invariants: InvariantSet,
        memo: Optional[MemoTable] = None,
        compiled: Optional[Callable[[int], bool]] = None,
    ):
        self.universe = universe
        self.invariants = invariants
        self._safe_memo: MemoTable = (
            memo if memo is not None else SafetyMemo(len(universe))
        )
        self._compiled = compiled
        self.point_queries = 0
        self.memo_hits = 0

    @property
    def safe_memo(self) -> MemoTable:
        """The shared mask -> verdict memo table (exposed for reuse)."""
        return self._safe_memo

    def _compiled_fn(self) -> Callable[[int], bool]:
        if self._compiled is None:
            self._compiled = self.invariants.compile_mask(
                self.universe.atom_bits
            )
        return self._compiled

    def is_safe_mask(self, mask: int) -> bool:
        """Memoized safety verdict for an integer presence mask."""
        self.point_queries += 1
        verdict = self._safe_memo.get(mask)
        if verdict is None:
            verdict = self._compiled_fn()(mask)
            self._safe_memo[mask] = verdict
        else:
            self.memo_hits += 1
        return verdict

    def are_safe_masks(self, masks: Iterable[int]) -> List[bool]:
        """Batched :meth:`is_safe_mask` — one verdict per mask, in order.

        Counter semantics match the pointwise path exactly: every mask
        counts as a point query, every memo hit as a hit.
        """
        memo = self._safe_memo
        memo_get = memo.get
        compiled = self._compiled_fn()
        out: List[bool] = []
        queries = hits = 0
        for mask in masks:
            queries += 1
            verdict = memo_get(mask)
            if verdict is None:
                verdict = compiled(mask)
                memo[mask] = verdict
            else:
                hits += 1
            out.append(verdict)
        self.point_queries += queries
        self.memo_hits += hits
        return out

    def is_safe(self, config: Configuration) -> bool:
        """True iff *config* is a safe configuration (paper §3.1)."""
        try:
            mask = self.universe.mask_of(config)
        except UnknownComponentError:
            return self.invariants.all_hold(config)
        return self.is_safe_mask(mask)

    def require_safe(self, config: Configuration, role: str = "configuration") -> None:
        """Raise :class:`UnsafeConfigurationError` with an explanation if unsafe."""
        if not self.is_safe(config):
            raise UnsafeConfigurationError(
                f"{role} is unsafe: {self.invariants.explain(config)}"
            )

    def __contains__(self, config: Configuration) -> bool:
        return self.is_safe(config)
