"""Process-wide persistent worker pool for safe-space enumeration.

PR 6's work-stealing enumeration paid a full ``ProcessPoolExecutor``
spin-up *per call* and pickled every safe mask back to the parent.  This
module makes the pool a process-level resource:

* **Pool registry** — one executor per worker count, created lazily on
  first use and kept until :func:`shutdown_pools` (registered with
  ``atexit``).  The start method is ``forkserver`` where available
  (cheap, import-clean children) with a ``spawn`` fallback; both inherit
  ``sys.path`` through multiprocessing's preparation data, so workers
  import :mod:`repro` without an initializer.
* **Per-digest worker state** — each task ships the spec payload plus
  its digest; a worker rebuilds the spec only when the digest is one it
  has not seen (LRU of a few specs), so a warm pool re-enumerating the
  same spec pays no parse, no compile.
* **Partition result cache** — workers memoize the safe-mask tuple per
  ``(digest, partition value)``.  Re-enumerating a spec on a warm pool
  skips the invariant backtracking entirely, which is what the
  pool-reuse benchmark gate measures.
* **Shared-memory planes** — for universes whose plane fits the bitset
  cap, a task writes its partition's verdicts into a
  ``multiprocessing.shared_memory`` block (one bit per mask, bit index
  == mask) and returns only a count; otherwise it returns the pickled
  mask tuple exactly as before.  Partition prefixes are clamped to
  byte-align each partition's plane range, so concurrent writers never
  touch the same byte.
"""

from __future__ import annotations

import atexit
import hashlib
import pickle
import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

#: executors kept alive at once (distinct worker counts); the registry
#: is tiny because callers converge on one effective worker count
MAX_POOLS = 2

#: per-worker spec cache entries (distinct digests) before LRU eviction
MAX_WORKER_SPECS = 4

#: per-worker partition-result cache entries before LRU eviction
MAX_WORKER_RESULTS = 65536

_POOL_LOCK = threading.Lock()
_POOLS: "OrderedDict[int, object]" = OrderedDict()
_SPINUPS = 0  # executors created since process start (stats/tests)


def _start_method() -> str:
    import multiprocessing

    methods = multiprocessing.get_all_start_methods()
    return "forkserver" if "forkserver" in methods else "spawn"


def spec_digest(payload: bytes) -> str:
    """Stable identity of a pickled spec payload (keys worker caches)."""
    return hashlib.sha256(payload).hexdigest()[:16]


def acquire_pool(workers: int):
    """The persistent executor for *workers*, creating it if needed.

    Returns ``(pool, spun_up)`` where *spun_up* is True when this call
    created the executor (a cold pool — the caller reports the spin-up
    in its timing stats).  Thread-safe; LRU-bounded by :data:`MAX_POOLS`.
    """
    global _SPINUPS
    import concurrent.futures
    import multiprocessing

    with _POOL_LOCK:
        pool = _POOLS.get(workers)
        if pool is not None:
            _POOLS.move_to_end(workers)
            return pool, False
        context = multiprocessing.get_context(_start_method())
        pool = concurrent.futures.ProcessPoolExecutor(
            max_workers=workers, mp_context=context
        )
        _POOLS[workers] = pool
        _SPINUPS += 1
        while len(_POOLS) > MAX_POOLS:
            _, old = _POOLS.popitem(last=False)
            old.shutdown(wait=False, cancel_futures=True)
        return pool, True


def discard_pool(pool) -> None:
    """Drop a broken executor so the next acquire starts fresh."""
    with _POOL_LOCK:
        for key, value in list(_POOLS.items()):
            if value is pool:
                del _POOLS[key]
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass


def shutdown_pools() -> None:
    """Shut every persistent executor down (tests and interpreter exit)."""
    with _POOL_LOCK:
        pools = list(_POOLS.values())
        _POOLS.clear()
    for pool in pools:
        pool.shutdown(wait=True, cancel_futures=True)


def pool_stats() -> Dict[str, int]:
    with _POOL_LOCK:
        return {"alive": len(_POOLS), "spinups": _SPINUPS}


atexit.register(shutdown_pools)


# -- parent-side result-plane cache --------------------------------------------
# One merged bitset plane per spec digest.  A plane is the whole safe set
# in 2^n / 8 bytes (128 KiB at 20 components), so retaining a handful
# costs a few MiB and turns re-enumeration of a warm spec into a word
# scan — no task round-trips at all.  Chunk scheduling is not sticky, so
# the per-worker partition caches alone cannot guarantee a warm hit; this
# cache is what the pool-reuse gate actually measures.

#: merged planes retained (LRU); at the 24-component cap one plane is
#: 2 MiB, so the cache tops out at 16 MiB
MAX_PLANE_CACHE = 8

_PLANE_LOCK = threading.Lock()
_PLANE_CACHE: "OrderedDict[str, bytes]" = OrderedDict()


def cached_plane(digest: str) -> Optional[bytes]:
    """The merged result plane for a spec digest, if one is retained."""
    with _PLANE_LOCK:
        plane = _PLANE_CACHE.get(digest)
        if plane is not None:
            _PLANE_CACHE.move_to_end(digest)
        return plane


def store_plane(digest: str, plane: bytes) -> None:
    """Retain a merged result plane for later same-digest enumerations."""
    with _PLANE_LOCK:
        _PLANE_CACHE[digest] = plane
        while len(_PLANE_CACHE) > MAX_PLANE_CACHE:
            _PLANE_CACHE.popitem(last=False)


def clear_result_caches() -> None:
    """Drop retained planes (tests that must observe a cold engine)."""
    with _PLANE_LOCK:
        _PLANE_CACHE.clear()


# -- worker side ---------------------------------------------------------------
# Module-level caches living inside each pool process.  Keyed by spec
# digest so one warm pool serves many specs (lint sweeps, serve shards).

_SPEC_CACHE: "OrderedDict[str, tuple]" = OrderedDict()
_RESULT_CACHE: "OrderedDict[Tuple[str, int], Tuple[int, ...]]" = OrderedDict()


def _worker_space(digest: str, payload: bytes, k: int):
    """The worker's ``(space, prefix_bits, free)`` for a spec digest.

    Rebuilds from *payload* (primitives only — component pairs and
    invariant texts round-trip through the parser) on first sight, then
    serves every later task for the digest from the cache.
    """
    cached = _SPEC_CACHE.get(digest)
    if cached is not None:
        _SPEC_CACHE.move_to_end(digest)
        return cached
    from repro.core.invariants import InvariantSet
    from repro.core.model import Component, ComponentUniverse
    from repro.core.space import SafeConfigurationSpace

    component_specs, invariant_texts, payload_k = pickle.loads(payload)
    assert payload_k == k, "partition width drifted from the payload"
    universe = ComponentUniverse(
        [Component(name, process) for name, process in component_specs]
    )
    invariants = InvariantSet.of(*invariant_texts)
    space = SafeConfigurationSpace(universe, invariants)
    order = universe.order
    prefix_bits = tuple(universe.bit_of(name) for name in order[:k])
    entry = (space, prefix_bits, order[k:])
    _SPEC_CACHE[digest] = entry
    while len(_SPEC_CACHE) > MAX_WORKER_SPECS:
        _SPEC_CACHE.popitem(last=False)
    return entry


def _partition_masks(
    digest: str, payload: bytes, k: int, value: int
) -> Tuple[int, ...]:
    """Safe masks of one prefix partition, memoized per (digest, value)."""
    key = (digest, value)
    cached = _RESULT_CACHE.get(key)
    if cached is not None:
        _RESULT_CACHE.move_to_end(key)
        return cached
    space, prefix_bits, free = _worker_space(digest, payload, k)
    present0 = 0
    for i in range(k):
        if value & (1 << (k - 1 - i)):
            present0 |= prefix_bits[i]
    masks = tuple(space._restricted_masks(present0, free))
    _RESULT_CACHE[key] = masks
    while len(_RESULT_CACHE) > MAX_WORKER_RESULTS:
        _RESULT_CACHE.popitem(last=False)
    return masks


def enumerate_chunk(task: tuple):
    """Pool task: enumerate one chunk of prefix partitions.

    ``task`` is ``(digest, payload, k, chunk_index, values, plane_name)``.
    With a *plane_name*, the chunk's safe masks are written as bits into
    the attached shared-memory plane (mask == absolute bit index; the
    clamped prefix width guarantees byte-disjoint partition ranges) and
    only ``(chunk_index, count)`` returns.  Without one, the masks come
    back pickled, ascending — the fallback transport for oversized
    universes.
    """
    digest, payload, k, index, values, plane_name = task
    if plane_name is None:
        masks: List[int] = []
        for value in values:
            masks.extend(_partition_masks(digest, payload, k, value))
        return index, tuple(masks)

    from multiprocessing import shared_memory

    # Attaching re-registers the name with the resource tracker, but the
    # tracker process is shared with the parent (its fd travels in the
    # preparation data), so the registration set stays idempotent and the
    # parent's unlink() is the single cleanup point.
    shm = shared_memory.SharedMemory(name=plane_name)
    try:
        buf = shm.buf
        count = 0
        for value in values:
            masks_t = _partition_masks(digest, payload, k, value)
            for mask in masks_t:
                buf[mask >> 3] |= 1 << (mask & 7)
            count += len(masks_t)
        del buf
    finally:
        shm.close()
    return index, count
