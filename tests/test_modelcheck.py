"""Tests for the bounded protocol model checker.

Positive: small scenarios explore exhaustively and every interleaving
terminates safely.  Negative: deliberately broken inputs/machines are
caught with counterexample paths — evidence the checker actually checks.
"""

import pytest

from repro.apps.video.scenario import make_video_flush_provider
from repro.apps.video.system import (
    paper_source,
    paper_target,
    video_planner,
)
from repro.core.actions import AdaptiveAction
from repro.core.model import Configuration
from repro.core.planner import AdaptationPlan, PlanStep
from repro.modelcheck import ModelCheckError, ProtocolModelChecker
from repro.protocol.effects import BlockProcess


@pytest.fixture(scope="module")
def planner():
    return video_planner()



def toy_planner_and_plan():
    """Minimal universe: keeps drop/timer state spaces tractable."""
    from repro.core.actions import ActionLibrary
    from repro.core.invariants import InvariantSet
    from repro.core.model import ComponentUniverse
    from repro.core.planner import AdaptationPlanner

    universe = ComponentUniverse.from_names(
        ["X1", "X2"], {"X1": "node", "X2": "node"}
    )
    invariants = InvariantSet.of("one_of(X1, X2)")
    actions = ActionLibrary([AdaptiveAction.replace("swap", "X1", "X2", 1)])
    planner = AdaptationPlanner(universe, invariants, actions)
    plan = planner.plan(universe.configuration("X1"), universe.configuration("X2"))
    return planner, plan

def single_step_plan(planner, action_id="A2"):
    source = paper_source()
    action = planner.actions.get(action_id)
    target = action.apply(source)
    step = PlanStep(index=0, action=action, source=source, target=target)
    return AdaptationPlan(source=source, target=target, steps=(step,),
                         total_cost=action.cost)


class TestExhaustiveSafety:
    def test_single_step_lossless(self, planner):
        checker = ProtocolModelChecker(planner, single_step_plan(planner))
        outcomes = checker.run()
        assert outcomes == {"complete": 1}
        assert checker.states_explored > 5

    def test_single_step_with_one_drop(self):
        from repro.protocol.failures import FailurePolicy

        toy_planner, toy_plan = toy_planner_and_plan()
        checker = ProtocolModelChecker(
            toy_planner, toy_plan, max_drops=1,
            policy=FailurePolicy(step_retries=1, max_alternate_plans=0,
                                 max_retransmits=0,
                                 max_post_resume_retransmits=1),
        )
        outcomes = checker.run()
        # every terminal world completed (retry recovers the drop) or, if
        # the rollback path was taken, ended at a safe configuration —
        # either way no interleaving was unsafe
        assert set(outcomes) <= {"complete", "aborted", "await_user"}
        assert outcomes.get("complete", 0) >= 1
        assert checker.states_explored > 50

    def test_two_drops_on_toy_system(self):
        # Drop-drop interleavings of every protocol phase, tight policy.
        from repro.protocol.failures import FailurePolicy

        toy_planner, toy_plan = toy_planner_and_plan()
        checker = ProtocolModelChecker(
            toy_planner, toy_plan, max_drops=2, max_states=300_000,
            policy=FailurePolicy(step_retries=1, max_alternate_plans=0,
                                 max_retransmits=0,
                                 max_post_resume_retransmits=1),
        )
        outcomes = checker.run()
        assert set(outcomes) <= {"complete", "aborted", "await_user"}
        assert outcomes.get("complete", 0) >= 1

    def test_composite_triple_lossless(self, planner):
        plans = planner.plan_k(paper_source(), paper_target(), 20)
        a14 = next(p for p in plans if p.action_ids == ("A14",))
        checker = ProtocolModelChecker(
            planner, a14, flush_provider=make_video_flush_provider(planner.universe)
        )
        outcomes = checker.run()
        assert outcomes == {"complete": 1}
        # three agents × interleaved resets/dones: a real state space
        assert checker.states_explored > 100

    def test_two_step_prefix_lossless(self, planner):
        prefix = planner.plan(paper_source(), planner.universe.from_bits("0101001"))
        checker = ProtocolModelChecker(planner, prefix)
        assert checker.run() == {"complete": 1}

    def test_free_timer_mode_on_tiny_plan(self):
        toy_planner, toy_plan = toy_planner_and_plan()
        from repro.protocol.failures import FailurePolicy

        checker = ProtocolModelChecker(
            toy_planner, toy_plan, timer_mode="free", max_states=300_000,
            policy=FailurePolicy(step_retries=1, max_alternate_plans=0,
                                 max_retransmits=0,
                                 max_post_resume_retransmits=1),
        )
        outcomes = checker.run()
        # spurious timeouts may roll back and retry, but never break safety
        assert set(outcomes) <= {"complete", "aborted", "await_user"}
        assert outcomes.get("complete", 0) >= 1

    def test_invalid_timer_mode_rejected(self, planner):
        with pytest.raises(ValueError):
            ProtocolModelChecker(
                planner, single_step_plan(planner), timer_mode="warp"
            )


class TestCheckerCatchesBugs:
    def test_unsafe_committed_configuration_detected(self, planner):
        # Hand-build a plan whose single step lands on an unsafe config
        # (replacing D1 with D3 while E1 is active).
        source = paper_source()
        action = planner.actions.get("A3")  # D1 -> D3
        target = action.apply(source)       # {D3,D4,E1}: violates E1 dep
        step = PlanStep(index=0, action=action, source=source, target=target)
        bogus = AdaptationPlan(source=source, target=target, steps=(step,),
                               total_cost=10.0)
        checker = ProtocolModelChecker(planner, bogus)
        with pytest.raises(ModelCheckError) as excinfo:
            checker.run()
        assert "violates invariants" in str(excinfo.value)
        assert excinfo.value.path  # counterexample recorded

    def test_unblocked_in_action_detected(self, planner, monkeypatch):
        # Break the agent: strip the BlockProcess effect before execution.
        from repro.protocol import agent as agent_module

        original = agent_module.AgentMachine.on_local_safe

        def no_block(self, step_key):
            return [e for e in original(self, step_key)
                    if not isinstance(e, BlockProcess)]

        monkeypatch.setattr(agent_module.AgentMachine, "on_local_safe", no_block)
        checker = ProtocolModelChecker(planner, single_step_plan(planner))
        with pytest.raises(ModelCheckError) as excinfo:
            checker.run()
        assert "unblocked" in str(excinfo.value)

    def test_state_bound_enforced(self, planner):
        checker = ProtocolModelChecker(
            planner, single_step_plan(planner), max_drops=2, max_states=10
        )
        with pytest.raises(ModelCheckError) as excinfo:
            checker.run()
        assert "bound" in str(excinfo.value)
