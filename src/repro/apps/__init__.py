"""Example applications built on the safe-adaptation library."""
