"""Unit tests for the discrete-event kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim.kernel import Simulator


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(3.0, lambda: log.append("c"))
        sim.schedule(1.0, lambda: log.append("a"))
        sim.schedule(2.0, lambda: log.append("b"))
        sim.run()
        assert log == ["a", "b", "c"]

    def test_ties_break_by_scheduling_order(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: log.append("first"))
        sim.schedule(1.0, lambda: log.append("second"))
        sim.run()
        assert log == ["first", "second"]

    def test_clock_advances(self):
        sim = Simulator()
        seen = []
        sim.schedule(5.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [5.0]
        assert sim.now == 5.0

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_non_callable_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(1.0, "not callable")  # type: ignore[arg-type]

    def test_call_soon_runs_at_current_time(self):
        sim = Simulator()
        times = []
        sim.schedule(2.0, lambda: sim.call_soon(lambda: times.append(sim.now)))
        sim.run()
        assert times == [2.0]

    def test_nested_scheduling(self):
        sim = Simulator()
        log = []

        def outer():
            log.append(("outer", sim.now))
            sim.schedule(1.0, lambda: log.append(("inner", sim.now)))

        sim.schedule(1.0, outer)
        sim.run()
        assert log == [("outer", 1.0), ("inner", 2.0)]


class TestCancellation:
    def test_cancelled_event_skipped(self):
        sim = Simulator()
        log = []
        handle = sim.schedule(1.0, lambda: log.append("x"))
        handle.cancel()
        sim.run()
        assert log == []

    def test_cancel_mid_run(self):
        sim = Simulator()
        log = []
        later = sim.schedule(2.0, lambda: log.append("later"))
        sim.schedule(1.0, later.cancel)
        sim.run()
        assert log == []


class TestRunControl:
    def test_until_stops_clock(self):
        sim = Simulator()
        log = []
        sim.schedule(10.0, lambda: log.append("far"))
        sim.run(until=5.0)
        assert log == []
        assert sim.now == 5.0
        sim.run()
        assert log == ["far"]

    def test_until_past_all_events_advances_clock(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run(until=100.0)
        assert sim.now == 100.0

    def test_stop_when_predicate(self):
        sim = Simulator()
        log = []
        for i in range(10):
            sim.schedule(float(i + 1), lambda i=i: log.append(i))
        sim.run(stop_when=lambda: len(log) >= 3)
        assert len(log) == 3

    def test_max_events_guard(self):
        sim = Simulator()

        def rearm():
            sim.schedule(1.0, rearm)

        sim.schedule(1.0, rearm)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_events_processed_counter(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert sim.events_processed == 2


class TestDeterminism:
    def test_rng_seeded(self):
        a = Simulator(seed=7)
        b = Simulator(seed=7)
        assert [a.rng.random() for _ in range(5)] == [b.rng.random() for _ in range(5)]

    def test_different_seeds_differ(self):
        assert Simulator(seed=1).rng.random() != Simulator(seed=2).rng.random()
