"""SpecRegistry: LRU bound, sharding, service sync."""

import pytest

from repro.serve import PlanningService, SpecRegistry


def manifest_with_n_components(n):
    lines = ["[components]"]
    lines += [f"C{i} @ host" for i in range(n)]
    lines += ["", "[invariants]", ": C0", "", "[configurations]",
              "base = " + "1" * n]
    return "\n".join(lines) + "\n"


@pytest.fixture
def registry():
    return SpecRegistry(PlanningService(), max_specs=3)


class TestLRUBound:
    def test_register_past_bound_evicts_least_recently_used(self, registry):
        digests = []
        for n in range(2, 6):
            record, created = registry.register(manifest_with_n_components(n))
            assert created is True
            digests.append(record.digest)
        assert len(registry) == 3
        assert digests[0] not in registry
        assert all(d in registry for d in digests[1:])

    def test_eviction_drops_the_service_entry_too(self, registry):
        first, _ = registry.register(manifest_with_n_components(2))
        for n in range(3, 6):
            registry.register(manifest_with_n_components(n))
        assert not registry.service.has_spec(first.digest)
        assert registry.service.stats().evictions == 1

    def test_get_refreshes_lru_order(self, registry):
        first, _ = registry.register(manifest_with_n_components(2))
        second, _ = registry.register(manifest_with_n_components(3))
        registry.get(first.digest)
        registry.register(manifest_with_n_components(4))
        registry.register(manifest_with_n_components(5))
        assert first.digest in registry
        assert second.digest not in registry

    def test_reregister_is_idempotent_and_refreshes(self, registry):
        first, created = registry.register(manifest_with_n_components(2))
        again, created_again = registry.register(
            manifest_with_n_components(2)
        )
        assert created and not created_again
        assert again is first
        assert len(registry) == 1

    def test_max_specs_must_be_positive(self):
        with pytest.raises(ValueError):
            SpecRegistry(PlanningService(), max_specs=0)


class TestLookup:
    def test_get_unknown_raises_keyerror_with_digest(self, registry):
        with pytest.raises(KeyError, match="unknown spec digest 'beef'"):
            registry.get("beef")

    def test_peek_is_lru_neutral(self, registry):
        first, _ = registry.register(manifest_with_n_components(2))
        registry.register(manifest_with_n_components(3))
        assert registry.peek(first.digest) is first
        assert registry.peek("nope") is None
        # peek must not have refreshed: first is still the LRU victim
        registry.register(manifest_with_n_components(4))
        registry.register(manifest_with_n_components(5))
        assert first.digest not in registry

    def test_evict_returns_whether_anything_existed(self, registry):
        record, _ = registry.register(manifest_with_n_components(2))
        assert registry.evict(record.digest) is True
        assert registry.evict(record.digest) is False
        assert not registry.service.has_spec(record.digest)


class TestSharding:
    def test_owns_partitions_the_digest_space(self):
        service = PlanningService()
        total = 4
        shards = [
            SpecRegistry(service, shard=(i, total)) for i in range(total)
        ]
        digests = [f"{v:08x}{'0' * 56}" for v in range(64)]
        for digest in digests:
            owners = [s.owns(digest) for s in shards]
            assert sum(owners) == 1
            assert owners[int(digest[:8], 16) % total]

    def test_unsharded_registry_owns_everything(self, registry):
        assert registry.owns("0" * 64)
        assert registry.owns("f" * 64)

    def test_foreign_specs_are_transient_and_evicted_first(self):
        text = manifest_with_n_components(2)
        probe = SpecRegistry(PlanningService(), max_specs=8)
        digest, _ = probe.register(text)
        index = int(digest.digest[:8], 16) % 2
        foreign = (index + 1) % 2

        registry = SpecRegistry(
            PlanningService(), max_specs=2, shard=(foreign, 2)
        )
        record, _ = registry.register(text)
        assert record.transient is True
        # two owned specs push the transient one out first, even though
        # it is not the least recently used
        owned = []
        for n in (3, 4, 5):
            rec, _ = registry.register(manifest_with_n_components(n))
            if not rec.transient:
                owned.append(rec)
            if record.digest not in registry:
                break
        assert record.digest not in registry

    def test_bad_shard_rejected(self):
        with pytest.raises(ValueError):
            SpecRegistry(PlanningService(), shard=(2, 2))


class TestDescribe:
    def test_describe_merges_manifest_facts_with_counters(self, registry):
        record, _ = registry.register(manifest_with_n_components(2))
        source = registry.get(record.digest).manifest.resolve_configuration(
            "base"
        )
        registry.service.plan_digest(record.digest, source, source)
        (doc,) = registry.describe()
        assert doc["digest"] == record.digest
        assert doc["components"] == 2
        assert doc["configurations"] == ["base"]
        assert doc["owned"] is True
        assert doc["cold_plans"] == 1
