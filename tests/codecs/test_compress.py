"""Unit tests for compression filters."""

import pytest

from repro.codecs.compress import CompressFilter, DecompressFilter
from repro.codecs.crypto_filters import EncoderFilter, DecoderFilter
from repro.codecs.packets import data_packet, marker_packet
from repro.components.filters import FilterChain


def packet(payload=b"A" * 200, seq=1):
    return data_packet(seq, 0, 0, 1, payload)


class TestCompress:
    def test_round_trip(self):
        (compressed,) = CompressFilter("c").process(packet())
        assert compressed.compressed
        assert len(compressed.payload) < 200
        (restored,) = DecompressFilter("d").process(compressed)
        assert not restored.compressed
        assert restored.payload == b"A" * 200
        assert restored.verify()

    def test_level_validated(self):
        with pytest.raises(ValueError):
            CompressFilter("c", level=11)

    def test_markers_bypass(self):
        marker = marker_packet(1, "k")
        assert CompressFilter("c").process(marker) == [marker]
        assert DecompressFilter("d").process(marker) == [marker]

    def test_double_compression_skipped(self):
        compressor = CompressFilter("c")
        (once,) = compressor.process(packet())
        (twice,) = compressor.process(once)
        assert twice is once

    def test_encrypted_payload_not_compressed(self):
        (enc,) = EncoderFilter("E1", "des64").process(packet())
        compressor = CompressFilter("c")
        assert compressor.process(enc) == [enc]

    def test_stats(self):
        compressor = CompressFilter("c")
        compressor.process(packet())
        status = compressor.refract("compression_status")
        assert status["bytes_in"] == 200
        assert status["ratio"] < 1.0


class TestFullPipelineOrdering:
    def test_compress_then_encrypt_then_decrypt_then_decompress(self):
        send = FilterChain(
            "send", [CompressFilter("c"), EncoderFilter("E1", "des64")]
        )
        recv = FilterChain(
            "recv", [DecoderFilter("D1", ["des64"]), DecompressFilter("d")]
        )
        (wire,) = send.push(packet())
        assert wire.enc_scheme == "des64"
        (restored,) = recv.push(wire)
        assert restored.verify()
        assert restored.payload == b"A" * 200

    def test_decompress_waits_for_decryption(self):
        # A compressed-then-encrypted packet reaching DecompressFilter
        # before any decoder must be bypassed, not crash.
        send = FilterChain(
            "send", [CompressFilter("c"), EncoderFilter("E2", "des128")]
        )
        (wire,) = send.push(packet())
        (out,) = DecompressFilter("d").process(wire)
        assert out is wire
