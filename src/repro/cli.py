"""Command-line interface: plan and simulate adaptations from manifests.

Usage (``python -m repro <command> ...``):

* ``check MANIFEST`` — validate a manifest (the analyzer's SA1xx
  well-formedness gate); print the model summary.
* ``lint MANIFEST...`` — full static analysis (SA1xx–SA6xx, including
  the interference checks for races between concurrent adaptations)
  with ``--format text|json|sarif``, a ``--fail-on`` severity gate, and
  ``--fix [--diff]`` to apply the machine-applicable repairs in place.
  Exit code: 0 when no diagnostic at or above ``--fail-on`` remains,
  1 otherwise, 2 on usage errors (argparse).
* ``safe-configs MANIFEST`` — enumerate the safe configuration set (Table 1).
* ``plan MANIFEST --from SRC --to DST [--k N] [--lazy]
  [--method auto|dijkstra|lazy|collaborative]`` — compute the Minimum
  Adaptation Path (Figure 4's result); ``auto`` picks the lazy frontier
  search above the enumeration cap.
* ``sag MANIFEST [--highlight-map --from SRC --to DST]`` — emit Graphviz
  DOT of the Safe Adaptation Graph (Figure 4 itself).
* ``simulate MANIFEST --from SRC --to DST [--backend sim|live|aio]
  [--seed N --loss P --quiesce MS --save-trace FILE]`` — run the
  realization phase on the chosen execution backend (discrete-event
  simulator, threaded live runtime, or asyncio) and check the execution
  against the paper's safety definition.
* ``verify-paths MANIFEST --from SRC --to DST --property NAME
  [--quantifier all|exists] [--k N]`` — path-quantified temporal
  verification: decide whether the named ``[properties]`` formula holds
  at every committed configuration along every (or some) k-best safe
  adaptation path; exits 0 when proven, 1 on a violation (with the
  minimized counterexample), 3 when inconclusive under the lazy budget.
* ``trace check FILE --manifest MANIFEST [--ltl NAME]`` — run the safety
  checker offline on a persisted ``--save-trace`` JSONL file; with
  ``--ltl``, also check the named ``[properties]`` formula against the
  trace's committed configurations (constant memory).
* ``serve MANIFEST... [--host --port --workers --max-inflight]`` —
  serve the control plane over HTTP/JSON (asyncio, stdlib-only) with
  admission control, per-request deadlines, and digest-sharded worker
  processes; SIGINT/SIGTERM drain in-flight requests before exit.
* ``example-manifest`` — print the §5 video system as a manifest.

``plan``, ``verify-paths``, and ``trace check`` accept ``--json`` to
print the structured control-plane envelope instead of text — the very
same bytes (pretty-printed) the HTTP server answers, because both go
through :meth:`repro.serve.ControlPlane.dispatch`.

``SRC``/``DST`` may be a configuration name from the manifest's
``[configurations]`` section, a bit vector, or a comma-separated member
list.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.bench import format_table
from repro.errors import ReproError
from repro.manifest import load_path, video_manifest_text


def _add_manifest(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("manifest", help="path to a system manifest file")


def _add_endpoints(parser: argparse.ArgumentParser, required: bool = True) -> None:
    parser.add_argument("--from", dest="source", required=required,
                        help="source configuration (name, bits, or members)")
    parser.add_argument("--to", dest="target", required=required,
                        help="target configuration (name, bits, or members)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Safe dynamic component-based software adaptation "
                    "(Zhang et al., DSN 2004)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    check = commands.add_parser("check", help="validate a manifest")
    _add_manifest(check)

    lint = commands.add_parser(
        "lint", help="static analysis: diagnose adaptation-spec defects"
    )
    lint.add_argument(
        "manifests", nargs="+", metavar="manifest",
        help="manifest file(s) to analyze",
    )
    lint.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="output format (default: text)",
    )
    lint.add_argument(
        "--fail-on", choices=("error", "warning", "note"), default="error",
        help="lowest severity that makes the exit code non-zero "
             "(default: error)",
    )
    lint.add_argument(
        "--verbose", action="store_true",
        help="also report analysis stages that were skipped and why",
    )
    lint.add_argument(
        "--fix", action="store_true",
        help="apply the machine-applicable fixes in place (lint -> fix "
             "-> re-lint to a fixed point), then report what remains",
    )
    lint.add_argument(
        "--diff", action="store_true",
        help="with --fix: print a unified diff of each rewritten file",
    )
    lint.add_argument(
        "--max-enum-components", type=int, default=None, metavar="N",
        help="override the SA3xx safe-space enumeration cap "
             "(skips emit an SA307 note)",
    )
    lint.add_argument(
        "--enum-workers", type=int, default=None, metavar="N",
        help="enumerate the safe space on N worker processes",
    )

    safe = commands.add_parser("safe-configs", help="enumerate safe configurations")
    _add_manifest(safe)
    safe.add_argument(
        "--enum-workers", type=int, default=None, metavar="N",
        help="enumerate the safe space on N worker processes "
             "(persistent shared-memory pool; 1 forces serial)",
    )
    safe.add_argument(
        "--enum-stats", action="store_true",
        help="print how the enumeration ran (mode, transport, pool "
             "state, wall-clock breakdown) after the table",
    )

    plan = commands.add_parser("plan", help="compute the Minimum Adaptation Path")
    _add_manifest(plan)
    _add_endpoints(plan, required=False)
    plan.add_argument("--k", type=int, default=1,
                      help="also list the k best alternate plans")
    plan.add_argument(
        "--method", choices=("auto", "dijkstra", "lazy", "collaborative"),
        default="auto",
        help="planning algorithm (default: auto — eager Dijkstra within "
             "the enumeration cap, lazy frontier search above it)",
    )
    plan.add_argument(
        "--lazy", action="store_true",
        help="force the lazy frontier search (never materializes the "
             "safe space; shorthand for --method lazy)",
    )
    plan.add_argument(
        "--batch", metavar="FILE",
        help="plan many requests from FILE (one 'SRC -> DST' per line; "
             "'-' reads stdin) through a shared PlanningService",
    )
    plan.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="enumerate the safe space on N worker processes",
    )
    plan.add_argument(
        "--json", action="store_true",
        help="print the control-plane response envelope as JSON",
    )
    plan.add_argument(
        "--stats", action="store_true",
        help="print planning-service counters as JSON (alone: just "
             "register the manifest; with --from/--to: plan first)",
    )

    sag = commands.add_parser("sag", help="emit the SAG as Graphviz DOT")
    _add_manifest(sag)
    sag.add_argument("--highlight-map", action="store_true",
                     help="highlight the MAP (requires --from/--to)")
    sag.add_argument("--from", dest="source", help="source configuration")
    sag.add_argument("--to", dest="target", help="target configuration")

    simulate = commands.add_parser(
        "simulate", help="run the adaptation on an execution backend"
    )
    _add_manifest(simulate)
    _add_endpoints(simulate)
    simulate.add_argument(
        "--backend", choices=("sim", "live", "aio"), default="sim",
        help="execution substrate: discrete-event simulator (default), "
             "threaded live runtime, or asyncio",
    )
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--loss", type=float, default=0.0,
                          help="control-message loss probability (sim backend only)")
    simulate.add_argument("--quiesce", type=float, default=2.0,
                          help="per-process quiesce delay (time units)")
    simulate.add_argument("--time-scale", type=float, default=0.001,
                          help="wall seconds per time unit (live/aio backends)")
    simulate.add_argument("--timeline", action="store_true",
                          help="print the per-process adaptation timeline")
    simulate.add_argument("--save-trace", metavar="FILE",
                          help="persist the execution trace as JSON lines")
    simulate.add_argument("--enforce", action="store_true",
                          help="online enforcement: abort the run at the first "
                               "safety violation (streaming checker tripwire)")
    simulate.add_argument("--metrics", action="store_true",
                          help="print rolling execution counters collected "
                               "over the observation bus")
    simulate.add_argument("--tail", action="store_true",
                          help="print the event log live as records are "
                               "emitted (streaming sink)")

    verify = commands.add_parser(
        "verify-paths",
        help="path-quantified temporal verification over the SAG",
    )
    _add_manifest(verify)
    _add_endpoints(verify)
    verify.add_argument(
        "--property", dest="prop", required=True, metavar="NAME",
        help="name of a [properties] entry from the manifest",
    )
    verify.add_argument(
        "--quantifier", choices=("all", "exists"), default="all",
        help="'all': φ must hold along every k-best path; "
             "'exists': some k-best path suffices (default: all)",
    )
    verify.add_argument(
        "--k", type=int, default=None, metavar="N",
        help="width of the quantified path set (default: 8)",
    )
    verify.add_argument(
        "--lazy", action="store_true",
        help="force the budget-bounded frontier enumeration (default: "
             "automatic above the enumeration cap)",
    )
    verify.add_argument(
        "--max-expansions", type=int, default=None, metavar="N",
        help="node budget for the lazy enumeration (exhaustion yields "
             "an inconclusive verdict, exit code 3)",
    )
    verify.add_argument(
        "--json", action="store_true",
        help="print the control-plane response envelope as JSON",
    )

    trace = commands.add_parser("trace", help="inspect persisted execution traces")
    trace_commands = trace.add_subparsers(dest="trace_command", required=True)
    trace_check = trace_commands.add_parser(
        "check", help="run the safety checker offline on a trace JSONL file"
    )
    trace_check.add_argument("tracefile", help="path to a trace .jsonl file")
    trace_check.add_argument(
        "--manifest", required=True,
        help="manifest supplying the dependency invariants to check against",
    )
    trace_check.add_argument(
        "--stream", action="store_true",
        help="stream the file through the incremental checker line by line "
             "(constant memory; the record list is never materialized)",
    )
    trace_check.add_argument(
        "--metrics", action="store_true",
        help="also print rolling execution counters for the trace",
    )
    trace_check.add_argument(
        "--ltl", metavar="NAME", default=None,
        help="also check the named [properties] formula at each committed "
             "configuration of the trace (works with --stream)",
    )
    trace_check.add_argument(
        "--json", action="store_true",
        help="print the control-plane response envelope as JSON",
    )

    serve = commands.add_parser(
        "serve",
        help="serve the control plane over HTTP/JSON (asyncio, stdlib-only)",
    )
    serve.add_argument(
        "manifests", nargs="*", metavar="manifest",
        help="manifest file(s) to preload into the spec registry",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8080,
                       help="bind port; 0 picks a free port (default: 8080)")
    serve.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="worker processes sharing the listening socket; specs shard "
             "across them by digest (default: 1)",
    )
    serve.add_argument(
        "--max-inflight", type=int, default=64, metavar="N",
        help="concurrent dispatches before requests queue (default: 64)",
    )
    serve.add_argument(
        "--queue-limit", type=int, default=None, metavar="N",
        help="queued requests beyond --max-inflight before the server "
             "answers 429 (default: --max-inflight)",
    )
    serve.add_argument(
        "--deadline-ms", type=float, default=None, metavar="MS",
        help="per-request deadline; expired requests answer 504 "
             "(default: none; override per request with X-Deadline-Ms)",
    )
    serve.add_argument(
        "--spec-cache", type=int, default=64, metavar="N",
        help="LRU bound on registered specs (default: 64)",
    )
    serve.add_argument(
        "--enum-workers", type=int, default=None, metavar="N",
        help="enumerate each spec's safe space on N worker processes",
    )

    commands.add_parser(
        "example-manifest", help="print the paper's video system as a manifest"
    )
    return parser


def _dispatch_or_raise(control, request):
    """Dispatch through the control plane; envelopes become ReproError.

    Keeps the CLI's text-mode contract (``error: <message>`` on stderr,
    exit code 2) while guaranteeing the answer itself came through the
    exact same :meth:`ControlPlane.dispatch` the HTTP server uses.
    """
    from repro.serve import ErrorEnvelope

    response = control.dispatch(request)
    if isinstance(response, ErrorEnvelope):
        raise ReproError(response.message)
    return response


def cmd_lint(args, out) -> int:
    from pathlib import Path

    from repro.serve import ControlPlane, LintRequest

    if args.diff and not args.fix:
        raise ReproError("--diff requires --fix")
    if args.fix:
        from repro.lint import fix_text, unified_diff

        for name in args.manifests:
            before = Path(name).read_text(encoding="utf-8")
            fixed, applied = fix_text(
                before,
                path=name,
                max_enum_components=args.max_enum_components,
                workers=args.enum_workers,
            )
            if applied and fixed != before:
                Path(name).write_text(fixed, encoding="utf-8")
            if args.diff:
                diff = unified_diff(before, fixed, path=name)
                if diff:
                    print(diff, file=out, end="")
            print(f"{name}: {applied} fix(es) applied", file=out)
        # fall through: re-lint the rewritten files so the exit code
        # reflects what --fix could not repair

    sources = tuple(
        (name, Path(name).read_text(encoding="utf-8"))
        for name in args.manifests
    )
    response = _dispatch_or_raise(
        ControlPlane(),
        LintRequest(
            sources=sources,
            format=args.format,
            fail_on=args.fail_on,
            verbose=args.verbose,
            max_enum_components=args.max_enum_components,
            workers=args.enum_workers,
        ),
    )
    print(response.rendered, file=out)
    return 1 if response.failed else 0


def cmd_check(args, out) -> int:
    # `check` is the well-formedness (SA1xx) gate of the analyzer: every
    # defect is reported at once, then the usual model summary prints.
    from pathlib import Path

    from repro.lint import lint_text

    text = Path(args.manifest).read_text(encoding="utf-8")
    report = lint_text(text, path=args.manifest)
    shape_errors = [
        d for d in report.errors if d.code.startswith("SA1")
    ]
    if shape_errors:
        listing = "\n".join(d.render() for d in shape_errors)
        raise ReproError(f"manifest is ill-formed:\n{listing}")
    manifest = load_path(args.manifest)
    print(f"components: {len(manifest.universe)} "
          f"on {len(manifest.universe.processes())} process(es)", file=out)
    print(f"invariants: {len(manifest.invariants)}", file=out)
    print(f"actions: {len(manifest.actions)}", file=out)
    planner = manifest.planner()
    print(f"safe configurations: {planner.space.count()}", file=out)
    for name, config in manifest.configurations.items():
        verdict = "safe" if planner.space.is_safe(config) else "UNSAFE"
        print(f"configuration {name} = {config.label()}: {verdict}", file=out)
    return 0


def cmd_safe_configs(args, out) -> int:
    manifest = load_path(args.manifest)
    planner = manifest.planner(workers=getattr(args, "enum_workers", None))
    print(
        format_table(
            ["bit vector", "configuration"], planner.space.to_table()
        ),
        file=out,
    )
    if getattr(args, "enum_stats", False):
        stats = planner.space.last_enumeration_stats
        if stats is not None:
            print(f"enumeration: {stats.reason}", file=out)
            detail = (
                f"  mode={stats.mode} workers={stats.effective_workers}"
                f" total={stats.total_ms:.1f}ms"
            )
            if stats.mode == "parallel":
                detail += (
                    f" transport={stats.transport}"
                    f" pool_warm={stats.pool_warm}"
                    f" spinup={stats.pool_spinup_ms:.1f}ms"
                    f" chunk_wait={stats.chunk_wait_ms:.1f}ms"
                )
            print(detail, file=out)
    return 0


def _parse_batch_lines(lines):
    """Parse batch request lines into (source, target) spec-string pairs.

    Accepted per line: ``SRC -> DST`` or two whitespace-separated specs;
    blank lines and ``#`` comments are skipped.  Resolution against the
    manifest happens inside the control plane.
    """
    pairs = []
    for lineno, raw in enumerate(lines, 1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if "->" in line:
            left, _, right = line.partition("->")
            left, right = left.strip(), right.strip()
        else:
            parts = line.split()
            if len(parts) != 2:
                raise ReproError(
                    f"batch line {lineno}: expected 'SRC -> DST', got {raw!r}"
                )
            left, right = parts
        pairs.append((left, right))
    return pairs


def cmd_plan_batch(args, control, manifest_text, out) -> int:
    import time

    from repro.serve import PlanBatchRequest

    if args.batch == "-":
        lines = sys.stdin.read().splitlines()
    else:
        from pathlib import Path

        lines = Path(args.batch).read_text(encoding="utf-8").splitlines()
    pairs = _parse_batch_lines(lines)
    if not pairs:
        raise ReproError(f"batch file {args.batch} contains no requests")
    request = PlanBatchRequest(pairs=tuple(pairs), manifest=manifest_text)
    if args.json:
        from repro.serve import ErrorEnvelope, to_json

        response = control.dispatch(request)
        print(to_json(response), file=out)
        if isinstance(response, ErrorEnvelope):
            return 2
        return 0 if response.reachable == len(pairs) else 1
    started = time.perf_counter()
    response = _dispatch_or_raise(control, request)
    elapsed = time.perf_counter() - started
    for item in response.results:
        if not item.reachable:
            print(f"{item.source} -> {item.target}: NO SAFE PATH", file=out)
        else:
            print(
                f"{item.source} -> {item.target}: "
                f"{' -> '.join(item.actions) or '(empty)'} "
                f"[cost {item.cost:g}]",
                file=out,
            )
    rate = len(pairs) / elapsed if elapsed > 0 else float("inf")
    print(
        f"planned {len(pairs)} request(s) ({response.reachable} reachable) "
        f"in {elapsed * 1000:.1f} ms ({rate:,.0f} plans/sec)",
        file=out,
    )
    return 0 if response.reachable == len(pairs) else 1


def _print_stats(control, out) -> None:
    from repro.serve import StatsRequest, to_json

    print(to_json(_dispatch_or_raise(control, StatsRequest())), file=out)


def cmd_plan(args, out) -> int:
    from pathlib import Path

    from repro.serve import (
        ControlPlane,
        ErrorEnvelope,
        PlanRequest,
        PlanningService,
        RegisterSpecRequest,
        to_json,
    )

    control = ControlPlane(service=PlanningService(workers=args.workers))
    manifest_text = Path(args.manifest).read_text(encoding="utf-8")
    if args.batch:
        if args.source or args.target:
            raise ReproError("--batch and --from/--to are mutually exclusive")
        return cmd_plan_batch(args, control, manifest_text, out)
    if not (args.source and args.target):
        if args.stats:
            # stats-only mode: register the manifest, dump the counters
            _dispatch_or_raise(
                control, RegisterSpecRequest(manifest=manifest_text)
            )
            _print_stats(control, out)
            return 0
        raise ReproError("plan requires --from and --to (or --batch FILE)")
    request = PlanRequest(
        source=args.source,
        target=args.target,
        manifest=manifest_text,
        k=max(args.k, 1),
        method="lazy" if args.lazy else args.method,
    )
    if args.json:
        response = control.dispatch(request)
        print(to_json(response), file=out)
        if args.stats:
            _print_stats(control, out)
        return 2 if isinstance(response, ErrorEnvelope) else 0
    response = _dispatch_or_raise(control, request)
    print(response.plan.describe(), file=out)
    if args.k > 1:
        print(file=out)
        print(f"{args.k} best plans:", file=out)
        for index, (actions, cost) in enumerate(response.alternates, 1):
            print(
                f"  {index}. {' -> '.join(actions) or '(empty)'} "
                f"[cost {cost:g}]",
                file=out,
            )
    if args.stats:
        print(file=out)
        _print_stats(control, out)
    return 0


def cmd_sag(args, out) -> int:
    manifest = load_path(args.manifest)
    planner = manifest.planner()
    highlight = None
    if args.highlight_map:
        if not (args.source and args.target):
            raise ReproError("--highlight-map requires --from and --to")
        plan = planner.plan(
            manifest.resolve_configuration(args.source),
            manifest.resolve_configuration(args.target),
        )
        highlight = [
            (step.source, step.action.action_id, step.target)
            for step in plan.steps
        ]
    print(
        planner.sag.to_dot(universe=manifest.universe, highlight_path=highlight),
        file=out,
    )
    return 0


def _run_backend(args, manifest, source, target, bus=None):
    """Execute source→target on the selected backend; returns (outcome, trace)."""
    from repro.exec.app import QuiescentAdapter

    if args.backend != "sim" and args.loss:
        raise ReproError("--loss requires the sim backend (seeded loss models)")
    quiesce_apps = {
        process: QuiescentAdapter(args.quiesce)
        for process in manifest.universe.processes()
    }
    if args.backend == "sim":
        from repro.sim import AdaptationCluster, BernoulliLoss

        cluster = AdaptationCluster(
            manifest.universe,
            manifest.invariants,
            manifest.actions,
            source,
            seed=args.seed,
            apps=quiesce_apps,
            default_loss=BernoulliLoss(args.loss) if args.loss else None,
            bus=bus,
        )
        return cluster.adapt_to(target), cluster.trace
    if args.backend == "live":
        from repro.runtime import LiveAdaptationSystem

        system = LiveAdaptationSystem(
            manifest.universe,
            manifest.invariants,
            manifest.actions,
            source,
            apps=quiesce_apps,
            time_scale=args.time_scale,
            bus=bus,
        )
        with system:
            outcome = system.adapt_to(target)
        return outcome, system.trace
    from repro.exec.aio import run_aio_adaptation

    outcome, system = run_aio_adaptation(
        manifest.universe,
        manifest.invariants,
        manifest.actions,
        source,
        target,
        apps=quiesce_apps,
        time_scale=args.time_scale,
        bus=bus,
    )
    return outcome, system.trace


def cmd_simulate(args, out) -> int:
    from repro.errors import SafetyViolationError
    from repro.obs import MetricsObserver, ObservationBus
    from repro.safety import SafetyChecker

    manifest = load_path(args.manifest)
    source = manifest.resolve_configuration(args.source)
    target = manifest.resolve_configuration(args.target)

    # All observation rides the bus: streaming safety (optionally
    # enforcing), rolling metrics, and the live event tail.
    checker = SafetyChecker(manifest.invariants, universe=manifest.universe)
    stream = checker.streaming(enforce=args.enforce)
    bus = ObservationBus(stream)
    metrics = None
    if args.metrics:
        metrics = bus.subscribe(MetricsObserver())
    if args.tail:
        from repro.render import EventStreamSink

        bus.subscribe(EventStreamSink(stream=out))
    print(f"backend: {args.backend}", file=out)
    try:
        outcome, trace = _run_backend(args, manifest, source, target, bus=bus)
    except SafetyViolationError as exc:
        violation = exc.violation
        print("outcome: ABORTED by online enforcement", file=out)
        if violation is not None:
            print(f"violation: [{violation.kind}] t={violation.time:g}: "
                  f"{violation.detail}", file=out)
        else:  # pragma: no cover - violations always carry structure here
            print(f"violation: {exc}", file=out)
        return 1
    print(f"outcome: {outcome.status} at {outcome.configuration.label()}", file=out)
    print(f"duration: {outcome.duration:g} time units, "
          f"steps committed: {outcome.steps_committed}, "
          f"rolled back: {outcome.steps_rolled_back}", file=out)
    report = stream.finish()
    print(f"safety: {report.summary()}", file=out)
    if args.save_trace:
        from pathlib import Path

        Path(args.save_trace).write_text(trace.to_jsonl() + "\n", encoding="utf-8")
        print(f"trace: {len(trace)} records -> {args.save_trace}", file=out)
    if metrics is not None:
        print(file=out)
        print(metrics.finish().summary(), file=out)
    if args.timeline:
        from repro.render import render_events, render_timeline

        print(file=out)
        print(render_timeline(trace), file=out)
        print(file=out)
        print(render_events(trace), file=out)
    return 0 if (report.ok and outcome.succeeded) else 1


def cmd_trace(args, out) -> int:
    from pathlib import Path

    from repro.serve import ControlPlane, ErrorEnvelope, TraceCheckRequest, to_json

    # only one sub-command today: `trace check`
    request = TraceCheckRequest(
        trace_path=args.tracefile,
        ltl=args.ltl,
        metrics=args.metrics,
        stream=args.stream,
        manifest=Path(args.manifest).read_text(encoding="utf-8"),
    )
    control = ControlPlane()
    if args.json:
        response = control.dispatch(request)
        print(to_json(response), file=out)
        if isinstance(response, ErrorEnvelope):
            return 2
        return 0 if response.ok else 1
    result = _dispatch_or_raise(control, request)
    print(f"records: {result.records}", file=out)
    print(f"committed configurations: {result.commits}", file=out)
    print(f"safety: {result.safety_summary}", file=out)
    for violation in result.violations:
        print(f"  [{violation.kind_label}] t={violation.time:g}: "
              f"{violation.detail}", file=out)
    prop = result.property_check
    if prop is not None:
        print(f"property {prop.name}: {prop.formula}", file=out)
        if prop.holds:
            print(f"property verdict: HOLDS over {prop.commits} committed "
                  "configuration(s)", file=out)
        else:
            members = ", ".join(prop.violation_members) or "(empty)"
            print(f"property verdict: VIOLATED at commit "
                  f"{prop.violation_commit} of {prop.commits} "
                  f"(t={prop.violation_time:g}, after "
                  f"{prop.violation_after}): {{{members}}}", file=out)
    if result.metrics_summary is not None:
        print(file=out)
        print(result.metrics_summary, file=out)
    return 0 if result.ok else 1


def cmd_verify_paths(args, out) -> int:
    from pathlib import Path

    from repro.serve import (
        ControlPlane,
        ErrorEnvelope,
        VerifyPathsRequest,
        to_json,
    )

    request = VerifyPathsRequest(
        source=args.source,
        target=args.target,
        property_name=args.prop,
        quantifier=args.quantifier,
        k=args.k,
        lazy=True if args.lazy else None,
        max_expansions=args.max_expansions,
        manifest=Path(args.manifest).read_text(encoding="utf-8"),
    )
    control = ControlPlane()
    if args.json:
        response = control.dispatch(request)
        print(to_json(response), file=out)
        if isinstance(response, ErrorEnvelope):
            return 2
        if response.holds is None:
            return 3
        return 0 if response.holds else 1
    verdict = _dispatch_or_raise(control, request)
    print(f"property {args.prop}: {verdict.formula}", file=out)
    print(
        f"quantifier: {verdict.quantifier} over the {verdict.k} best "
        f"path(s), {verdict.mode} enumeration",
        file=out,
    )
    suffix = "" if verdict.complete else " (enumeration incomplete)"
    print(f"paths checked: {verdict.paths_checked}{suffix}", file=out)
    if verdict.holds is None:
        print(f"verdict: INCONCLUSIVE — {verdict.reason}", file=out)
        return 3
    if verdict.holds:
        print(f"verdict: HOLDS — {verdict.reason}", file=out)
        if verdict.witness is not None:
            print(file=out)
            print("witness path:", file=out)
            print(verdict.witness.describe(), file=out)
        return 0
    print(f"verdict: VIOLATED — {verdict.reason}", file=out)
    if verdict.counterexample is not None:
        print(file=out)
        print("counterexample (minimized to the first violating prefix):",
              file=out)
        print(verdict.counterexample.describe(), file=out)
    return 1


def cmd_serve(args, out) -> int:
    from repro.serve.http import run_server

    return run_server(
        manifests=args.manifests,
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_inflight=args.max_inflight,
        queue_limit=args.queue_limit,
        deadline_ms=args.deadline_ms,
        max_specs=args.spec_cache,
        enum_workers=args.enum_workers,
        out=out,
    )


def cmd_example_manifest(args, out) -> int:
    print(video_manifest_text(), file=out)
    return 0


_COMMANDS = {
    "check": cmd_check,
    "lint": cmd_lint,
    "safe-configs": cmd_safe_configs,
    "plan": cmd_plan,
    "sag": cmd_sag,
    "simulate": cmd_simulate,
    "trace": cmd_trace,
    "verify-paths": cmd_verify_paths,
    "serve": cmd_serve,
    "example-manifest": cmd_example_manifest,
}


def main(argv: Optional[List[str]] = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args, out)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # stdout consumer (e.g. `| head`) went away; exit quietly.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
