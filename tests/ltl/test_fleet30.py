"""Acceptance: path-quantified queries on the 30-component fleet.

The fleet30 example is above ``LAZY_PLAN_COMPONENTS``, so every query
must be answered by the budget-bounded frontier Yen — the eager safe
space (2^30 candidates) and the CSR SAG must never be materialized.
"""

import pytest

from repro.core.planner import LAZY_PLAN_COMPONENTS
from repro.ltl import parse_property, verify_paths
from repro.manifest import loads

MANIFEST = "examples/fleet30.manifest"


@pytest.fixture(scope="module")
def manifest():
    with open(MANIFEST, encoding="utf-8") as handle:
        return loads(handle.read())


@pytest.fixture(scope="module")
def planner(manifest):
    return manifest.planner()


@pytest.fixture(scope="module")
def endpoints(manifest):
    return manifest.configurations["baseline"], manifest.configurations["canary"]


def test_fleet_is_oversized(manifest):
    assert len(manifest.universe) == 30 > LAZY_PLAN_COMPONENTS


def test_holding_property_verified_lazily(planner, endpoints, manifest):
    baseline, canary = endpoints
    verdict = verify_paths(
        planner, baseline, canary, manifest.property_named("service0 specified")
    )
    assert verdict.holds is True
    assert verdict.mode == "lazy"
    assert verdict.complete
    assert verdict.paths_checked == 8


def test_seeded_violation_returns_minimized_counterexample(
    planner, endpoints, manifest
):
    baseline, canary = endpoints
    verdict = verify_paths(
        planner, baseline, canary, manifest.property_named("avoid_v3")
    )
    assert verdict.holds is False
    assert verdict.mode == "lazy"
    # the optimal paths (cost 25) stay on v1/v2; the violating alternate
    # stages S0v3 via U02 — and the counterexample stops right there
    plan = verdict.counterexample
    assert plan is not None
    assert len(plan.steps) == 1
    assert plan.steps[0].action.action_id == "U02"
    assert plan.total_cost == 10
    assert "S0v3" in plan.configurations[-1].members


def test_exists_finds_a_witness_avoiding_v3(planner, endpoints):
    # ∀ fails (the U02 alternate), but ∃ succeeds: the optimal rollout
    # itself never stages v3, and the witness is that full path
    baseline, canary = endpoints
    verdict = verify_paths(
        planner, baseline, canary, parse_property("historically(!S0v3)"), "exists"
    )
    assert verdict.holds is True
    assert verdict.paths_checked == 1  # the optimal path already satisfies φ
    witness = verdict.witness
    assert all("S0v3" not in config.members for config in witness.configurations)
    assert witness.target == canary
    assert witness.total_cost == 25


def test_eager_space_never_materialized(planner):
    # the whole module ran lazy queries against this shared planner:
    # neither the safe-space enumeration nor the SAG may have happened
    assert planner._sag is None
    assert planner.space._cache is None
