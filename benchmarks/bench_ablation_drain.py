"""Experiment A3 — ablation: the global safe condition is *necessary*.

§3.2 defines the global safe state as local safe states **plus** a global
safe condition ("the receiver has received all the datagram packets that
the sender has sent").  This ablation removes or over-applies the drain
machinery that implements it and measures the consequence — even on the
cost-optimal MAP through safe configurations:

* ``none``   — local quiescence only: in-flight 64-bit packets reach the
  handheld *after* D2→D3 commits → corruption.  Unsafe.
* ``capability`` (the implementation's default) — drain exactly when a
  process loses decode capability.  Safe, minimal disruption.
* ``always`` — drain on every decoder-touching step.  Safe, strictly more
  coordination (extra flush round-trips) for zero extra safety.
"""

import pytest

from benchmarks.conftest import report
from repro.apps.video.scenario import FLUSH_MODES, VideoScenario, build_video_cluster
from repro.bench import format_table


def run_mode(mode, seed=1):
    scenario = VideoScenario(
        cluster=build_video_cluster(seed=seed, flush_mode=mode)
    )
    outcome = scenario.run()
    stats = scenario.stream_stats()
    rep = scenario.safety_report()
    markers = scenario.server.markers_sent
    return {
        "mode": mode,
        "status": outcome.status,
        "duration_ms": outcome.duration,
        "corrupt": stats["handheld_corrupt"] + stats["laptop_corrupt"],
        "safe": rep.ok,
        "ccs_violations": len(rep.by_kind("ccs")),
        "markers": markers,
    }


@pytest.mark.parametrize("mode", FLUSH_MODES)
def test_drain_mode(benchmark, mode):
    result = benchmark.pedantic(run_mode, args=(mode,), rounds=1, iterations=1)
    benchmark.extra_info.update(result)
    if mode == "none":
        assert not result["safe"]
        assert result["corrupt"] > 0
        assert result["markers"] == 0
    else:
        assert result["safe"]
        assert result["corrupt"] == 0


def test_drain_ablation_table(benchmark):
    rows = benchmark.pedantic(
        lambda: [run_mode(mode) for mode in FLUSH_MODES], rounds=1, iterations=1
    )
    report(
        "drain-policy ablation (global safe condition)",
        format_table(
            ["mode", "safe", "corrupt pkts", "ccs violations",
             "markers", "duration (ms)"],
            [
                (r["mode"], r["safe"], r["corrupt"], r["ccs_violations"],
                 r["markers"], round(r["duration_ms"], 1))
                for r in rows
            ],
        ),
    )
    by_mode = {r["mode"]: r for r in rows}
    # necessity: removing the condition corrupts even the safe-path MAP
    assert by_mode["none"]["corrupt"] > 0
    # sufficiency + minimality: capability analysis drains less than the
    # conservative policy yet is equally safe
    assert by_mode["capability"]["markers"] < by_mode["always"]["markers"]
    assert by_mode["capability"]["safe"] and by_mode["always"]["safe"]
    # conservatism costs time: more drains → slower adaptation
    assert by_mode["always"]["duration_ms"] >= by_mode["capability"]["duration_ms"]
