"""Experiment C3 — §7 scalability: SAG explosion and its two remedies.

The paper: "the computational complexity may be high when there are
numerous adaptive components ... exponential to the number of components
involved".  Remedies it proposes: collaborative-set decomposition and
heuristic partial exploration of the SAG.

We replicate the video system n times (safe space = 8^n) and compare the
three planners.  Shape to reproduce: monolithic SAG+Dijkstra grows
exponentially with n; collaborative and lazy-A* planners stay shallow;
all three agree on the optimal cost (50·n ms).
"""

import time

import pytest

from benchmarks.conftest import report
from repro.bench import format_table, replicated_video_system
from repro.core.planner import AdaptationPlanner


def plan_monolithic(system):
    planner = AdaptationPlanner(system.universe, system.invariants, system.actions)
    plan = planner.plan(system.source, system.target)
    return plan, planner.sag.node_count


def plan_lazy(system):
    planner = AdaptationPlanner(system.universe, system.invariants, system.actions)
    return planner.plan_lazy(system.source, system.target)


def plan_collaborative(system):
    planner = AdaptationPlanner(system.universe, system.invariants, system.actions)
    return planner.plan_collaborative(system.source, system.target)


@pytest.mark.parametrize("groups", [1, 2, 3])
def test_monolithic_sag(benchmark, groups):
    system = replicated_video_system(groups)
    plan, nodes = benchmark(lambda: plan_monolithic(system))
    assert nodes == 8 ** groups  # the exponential blow-up, literally
    assert plan.total_cost == 50.0 * groups
    benchmark.extra_info["sag_nodes"] = nodes


@pytest.mark.parametrize("groups", [1, 2, 3, 4, 6])
def test_collaborative_planner(benchmark, groups):
    system = replicated_video_system(groups)
    plan = benchmark(lambda: plan_collaborative(system))
    assert plan.total_cost == 50.0 * groups
    assert len(plan) == 5 * groups


@pytest.mark.parametrize("groups", [1, 2, 3])
def test_lazy_astar_planner(benchmark, groups):
    system = replicated_video_system(groups)
    plan = benchmark(lambda: plan_lazy(system))
    assert plan.total_cost == 50.0 * groups


@pytest.mark.parametrize("workers", [2, 4])
def test_parallel_enumeration(benchmark, workers):
    """The workers axis of C3: partitioned safe-space enumeration.

    Correctness is the hard assertion (parallel result identical to the
    serial enumerator, memo merged); the recorded speedup is informative
    — on a heavily pruned space the serial backtracker is already fast
    and pool startup can dominate, which the JSON row makes visible
    instead of hiding.
    """
    from repro.core.space import SafeConfigurationSpace

    system = replicated_video_system(3)
    serial_space = SafeConfigurationSpace(system.universe, system.invariants)
    t0 = time.perf_counter()
    serial = serial_space.enumerate()
    serial_s = time.perf_counter() - t0

    def enumerate_parallel():
        space = SafeConfigurationSpace(
            system.universe, system.invariants, workers=workers
        )
        return space.enumerate(), space

    parallel, space = benchmark.pedantic(enumerate_parallel, rounds=1, iterations=1)
    t0 = time.perf_counter()
    again = SafeConfigurationSpace(
        system.universe, system.invariants, workers=workers
    ).enumerate()
    parallel_s = time.perf_counter() - t0
    assert parallel == serial
    assert again == serial
    assert space.safe_memo  # worker memos were merged on join
    speedup = serial_s / max(parallel_s, 1e-9)
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["speedup_vs_serial"] = round(speedup, 2)
    report(
        f"C3 parallel enumeration (workers={workers})",
        f"groups=3, safe configs={len(serial)}: "
        f"serial {serial_s * 1e3:.1f} ms, parallel {parallel_s * 1e3:.1f} ms "
        f"({speedup:.2f}x)",
        data={
            "workers": workers,
            "safe_configs": len(serial),
            "serial_ms": round(serial_s * 1e3, 2),
            "parallel_ms": round(parallel_s * 1e3, 2),
            "speedup_vs_serial": round(speedup, 2),
        },
    )


def test_crossover_summary(benchmark):
    """One table: where the monolithic planner falls off a cliff."""
    benchmark.pedantic(
        lambda: plan_collaborative(replicated_video_system(1)),
        rounds=1, iterations=1,
    )
    rows = []
    for groups in (1, 2, 3):
        system = replicated_video_system(groups)
        t0 = time.perf_counter()
        _, nodes = plan_monolithic(system)
        monolithic_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        plan_collaborative(system)
        collaborative_s = time.perf_counter() - t0
        rows.append(
            (
                groups,
                7 * groups,
                nodes,
                f"{monolithic_s * 1e3:.1f}",
                f"{collaborative_s * 1e3:.1f}",
                f"{monolithic_s / max(collaborative_s, 1e-9):.0f}x",
            )
        )
    report(
        "§7 scalability (measured)",
        format_table(
            [
                "groups", "components", "SAG nodes",
                "monolithic (ms)", "collaborative (ms)", "speedup",
            ],
            rows,
        ),
    )
    # shape: the gap must widen with n
    speedups = [float(r[5][:-1]) for r in rows]
    assert speedups[-1] > speedups[0]
