"""The decision engine: rule evaluation → adaptation requests.

Bridges monitoring (sensors + rules) to process management (the
adaptation manager).  On each evaluation it fires at most one rule — the
highest-priority tripped one — and only when the manager is idle and the
target differs from the current committed configuration.

Evaluation is *event-driven* (:meth:`DecisionEngine.attach_to_bus`):
the engine evaluates when sensor data arrives (sensors notify their
listeners on every pushed reading) and when the observation bus reports
the manager reaching a terminal state (so a rule that tripped while an
adaptation was in flight gets a prompt retry).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Set, Tuple

from repro.core.model import Configuration
from repro.errors import NoSafePathError, UnsafeConfigurationError
from repro.monitor.rules import AdaptationRule
from repro.obs import CallbackObserver, Observer
from repro.protocol.manager import ManagerState
from repro.trace import NoteRecord, TraceRecord


@dataclass
class Decision:
    """One fired rule, for audit logs and tests."""

    time: float
    rule: str
    target: Configuration
    accepted: bool
    detail: str = ""


class DecisionEngine:
    """Evaluates rules and issues adaptation requests."""

    def __init__(self, rules: Sequence[AdaptationRule]):
        self.rules: List[AdaptationRule] = list(rules)
        self.decisions: List[Decision] = []
        # Rules whose trip was observed while the manager was busy.  The
        # threshold comparator consumes a trip when sampled, so without
        # this list a rule that tripped mid-adaptation would be lost until
        # its sensor re-armed and tripped again; instead it stays eligible
        # and fires at the next evaluation with an idle manager (the
        # bus-driven terminal-milestone retry).
        self._deferred: List[AdaptationRule] = []

    def evaluate(
        self,
        now: float,
        current: Configuration,
        request: Callable[[Configuration], None],
        busy: bool = False,
    ) -> Optional[Decision]:
        """One evaluation round.

        Args:
            now: current time (simulated or wall).
            current: the committed configuration.
            request: callback that starts the adaptation (manager entry).
            busy: True while an adaptation is already in flight — tripped
                rules are recorded but not fired.
        """
        tripped = [rule for rule in self.rules if rule.evaluate(now)]
        for deferred in self._deferred:
            if deferred.ready(now) and not any(r is deferred for r in tripped):
                tripped.append(deferred)
        if not tripped:
            return None
        tripped.sort(key=lambda rule: (-rule.priority, rule.name))
        rule = tripped[0]
        if busy:
            for r in tripped:
                if not any(d is r for d in self._deferred):
                    self._deferred.append(r)
            decision = Decision(now, rule.name, rule.target, False, "manager busy")
        elif rule.target == current:
            self._deferred = [d for d in self._deferred if d is not rule]
            decision = Decision(now, rule.name, rule.target, False, "already at target")
        else:
            self._deferred = [d for d in self._deferred if d is not rule]
            try:
                request(rule.target)
            except (NoSafePathError, UnsafeConfigurationError) as exc:
                decision = Decision(now, rule.name, rule.target, False, str(exc))
            else:
                rule.mark_fired(now)
                decision = Decision(now, rule.name, rule.target, True)
        self.decisions.append(decision)
        return decision

    # -- system integration -------------------------------------------------------
    def _manager_busy(self, manager) -> bool:
        return manager.machine.state != ManagerState.RUNNING or (
            manager.outcome is None and manager.machine.plan is not None
        )

    def attach_to_bus(self, system, bus=None) -> Observer:
        """Event-driven evaluation on any backend.

        Two triggers drive evaluation:

        * **data arrival** — every sensor referenced by a rule notifies
          the engine on each pushed reading, and the engine evaluates
          immediately (a tripped threshold fires at the reading that
          trips it, not up to a period later);
        * **manager milestones** — the observation bus carries the
          manager's terminal note record, after which the engine
          re-evaluates (via a zero-delay timer: the note is published
          from inside the manager's own dispatch, so evaluation is
          deferred out of the re-entrant context) — a rule that tripped
          while the manager was busy gets its retry promptly.

        *system* is any backend wrapper with a ``manager`` runtime
        (simulated cluster, threaded system, asyncio system).  *bus*
        defaults to the bus attached to the system's trace; without one,
        only sensor-driven evaluation is active.  Returns the subscribed
        observer (so callers may unsubscribe it).
        """
        manager = system.manager
        if bus is None:
            bus = system.trace.bus

        def evaluate() -> None:
            self.evaluate(
                manager.clock.now(),
                manager.committed,
                manager.request_adaptation,
                busy=self._manager_busy(manager),
            )

        seen: Set[int] = set()
        for rule in self.rules:
            if id(rule.sensor) in seen:
                continue
            seen.add(id(rule.sensor))
            rule.sensor.on_update(lambda _sensor: evaluate())

        def on_record(record: TraceRecord) -> None:
            if isinstance(record, NoteRecord) and record.text.startswith("adaptation "):
                manager.timers.set_timer("decision-engine:reevaluate", 0.0, evaluate)

        observer = CallbackObserver(on_record, name="decision-engine")
        if bus is not None:
            bus.subscribe(observer)
        return observer
