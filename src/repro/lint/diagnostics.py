"""Diagnostic model for the adaptation-spec static analyzer.

A :class:`Diagnostic` is one finding: a stable code (``SA101``), a
severity, a message, and a source :class:`~repro.span.Span` pointing into
the manifest, optionally with related locations (the other half of a
conflicting pair, the first declaration shadowed by a duplicate, ...).

The code space mirrors a real linter's:

* **SA1xx** — well-formedness of the spec text (unknown/duplicate names,
  bit-vector width, syntax);
* **SA2xx** — invariant semantics (tautology, unsatisfiability, empty
  safe space, adaptation-decoupled invariants);
* **SA3xx** — action and Safe Adaptation Graph analysis (dead or
  dominated actions, costs, connectivity, unreachable endpoints);
* **SA4xx** — runtime-contract checks (CCS language shape, global
  blocking, blast radius);
* **SA5xx** — temporal-property checks over the ``[properties]`` section
  (unsatisfiable properties, path-quantified violations, budget-bounded
  inconclusive results);
* **SA6xx** — interference between concurrent adaptive actions
  (non-commuting firing orders, blocking-window overlap, lost-inverse
  and conflicting-touch races, plus the declared ``[conflicts]``
  machinery that silences a reviewed pair).

Codes are append-only: a released code never changes meaning, so CI
suppressions (``--fail-on``) and SARIF baselines stay stable.

Diagnostics may carry machine-applicable :class:`~repro.lint.fixes.Fix`
edits (``repro lint --fix``); a fix is attached only when the repair is
mechanical and cannot change the meaning of unrelated entries.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.lint.fixes import Fix
from repro.span import Span


class Severity(enum.IntEnum):
    """Diagnostic severity, ordered so thresholds compare with ``>=``."""

    NOTE = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        return self.name.lower()

    @classmethod
    def from_label(cls, label: str) -> "Severity":
        try:
            return cls[label.upper()]
        except KeyError:
            raise ValueError(f"unknown severity {label!r}") from None


@dataclass(frozen=True)
class Related:
    """A secondary location attached to a diagnostic."""

    message: str
    span: Span
    path: Optional[str] = None


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding."""

    code: str
    severity: Severity
    message: str
    span: Span
    path: Optional[str] = None
    related: Tuple[Related, ...] = ()
    #: machine-applicable repairs (empty for most findings)
    fixes: Tuple[Fix, ...] = ()

    def location(self) -> str:
        return self.span.label(self.path)

    def render(self) -> str:
        """The canonical single-finding text rendering."""
        lines = [
            f"{self.location()}: {self.code} {self.severity.label}: {self.message}"
        ]
        for rel in self.related:
            lines.append(f"    {rel.span.label(rel.path or self.path)}: {rel.message}")
        for fix in self.fixes:
            lines.append(f"    fix: {fix.description}")
        return "\n".join(lines)


#: Registry of every diagnostic code: default severity + one-line summary.
#: This table is the source for ``--explain``, the SARIF rule metadata,
#: and the DESIGN.md code table.
CODES: Dict[str, Tuple[Severity, str]] = {
    "SA100": (Severity.ERROR, "manifest syntax error"),
    "SA101": (Severity.ERROR, "invariant mentions an unknown component"),
    "SA102": (Severity.ERROR, "action uses an unknown component"),
    "SA103": (Severity.ERROR, "configuration bit vector has the wrong width"),
    "SA104": (Severity.ERROR, "configuration references an unknown component"),
    "SA105": (Severity.ERROR, "duplicate component declaration"),
    "SA106": (Severity.ERROR, "duplicate action id"),
    "SA107": (Severity.WARNING, "duplicate configuration name"),
    "SA108": (Severity.NOTE, "component unused by every invariant and action"),
    "SA201": (Severity.WARNING, "invariant is a tautology (vacuous constraint)"),
    "SA202": (Severity.ERROR, "invariant is unsatisfiable"),
    "SA203": (Severity.ERROR, "invariants admit no safe configuration (empty safe space)"),
    "SA204": (Severity.NOTE, "invariant atoms never co-occur with any action's touched set"),
    "SA205": (Severity.WARNING, "named configuration violates the invariants"),
    "SA301": (Severity.WARNING, "dead action: no safe-to-safe firing exists"),
    "SA302": (Severity.WARNING, "dominated action: another action covers the same arcs strictly cheaper"),
    "SA303": (Severity.WARNING, "zero-cost action makes minimum-path ties ambiguous"),
    "SA304": (Severity.NOTE, "replace action has no inverse in the library"),
    "SA305": (Severity.WARNING, "Safe Adaptation Graph is disconnected"),
    "SA306": (Severity.WARNING, "no safe adaptation path between named configurations"),
    "SA307": (Severity.NOTE, "full safe-space analysis skipped: component count exceeds the enumeration cap (named-pair checks ran lazily)"),
    "SA401": (Severity.WARNING, "CCS allowed sequence is a proper prefix of another (completion verdicts not final)"),
    "SA402": (Severity.WARNING, "action blocks every process at once (no global safe state can host it)"),
    "SA403": (Severity.NOTE, "action's blast radius reaches processes beyond its participants"),
    "SA501": (Severity.WARNING, "property never holds on any safe configuration"),
    "SA502": (Severity.WARNING, "property violated on the optimal adaptation path"),
    "SA503": (Severity.WARNING, "property violated on some k-best adaptation path"),
    "SA504": (Severity.NOTE, "path-quantified property check inconclusive under the expansion budget"),
    "SA505": (Severity.ERROR, "property mentions an unknown component"),
    "SA601": (Severity.WARNING, "non-commutative action pair: concurrent firing orders reach different configurations"),
    "SA602": (Severity.WARNING, "blocking-window overlap: concurrent pair stalls every process at once"),
    "SA603": (Severity.WARNING, "lost-inverse race: a concurrent action breaks the pair's rollback path"),
    "SA604": (Severity.WARNING, "conflicting-touch race: overlapping touched sets make one firing order unsafe"),
    "SA605": (Severity.NOTE, "interference analysis restricted to named configurations above the enumeration cap"),
    "SA606": (Severity.ERROR, "conflicts entry references an unknown action"),
}


def describe_code(code: str) -> str:
    """One-line description of a diagnostic code (for docs and SARIF)."""
    severity, summary = CODES[code]
    return f"{code} ({severity.label}): {summary}"


@dataclass
class LintReport:
    """All diagnostics produced by one analyzer run, plus run metadata."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: analysis stages skipped and why (e.g. empty safe space)
    skipped: List[str] = field(default_factory=list)

    def add(
        self,
        code: str,
        message: str,
        span: Span,
        path: Optional[str] = None,
        related: Iterable[Related] = (),
        severity: Optional[Severity] = None,
        fixes: Iterable[Fix] = (),
    ) -> Diagnostic:
        if code not in CODES:
            raise ValueError(f"unregistered diagnostic code {code!r}")
        diagnostic = Diagnostic(
            code=code,
            severity=severity if severity is not None else CODES[code][0],
            message=message,
            span=span,
            path=path,
            related=tuple(related),
            fixes=tuple(fixes),
        )
        self.diagnostics.append(diagnostic)
        return diagnostic

    def extend(self, other: "LintReport") -> None:
        self.diagnostics.extend(other.diagnostics)
        self.skipped.extend(other.skipped)

    def sort(self) -> None:
        """Deterministic order: by file, then line, column, code."""
        self.diagnostics.sort(
            key=lambda d: (d.path or "", d.span.line, d.span.column, d.code)
        )

    # -- queries -----------------------------------------------------------------
    def __iter__(self):
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def codes(self) -> Tuple[str, ...]:
        return tuple(sorted({d.code for d in self.diagnostics}))

    def by_severity(self, severity: Severity) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == severity)

    @property
    def errors(self) -> Tuple[Diagnostic, ...]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> Tuple[Diagnostic, ...]:
        return self.by_severity(Severity.WARNING)

    @property
    def notes(self) -> Tuple[Diagnostic, ...]:
        return self.by_severity(Severity.NOTE)

    def fails(self, threshold: Severity) -> bool:
        """True iff any diagnostic is at or above *threshold*."""
        return any(d.severity >= threshold for d in self.diagnostics)

    def summary(self) -> str:
        counts = (
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s), "
            f"{len(self.notes)} note(s)"
        )
        if not self.diagnostics:
            return "clean: 0 diagnostics"
        return counts
