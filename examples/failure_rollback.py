#!/usr/bin/env python
"""Failure handling (§4.4): loss, rollback, retries, and parking safely.

Three experiments on the video system:

1. a lossy control network — retransmission absorbs transient loss and the
   adaptation still completes;
2. a network partition during a step — the step times out, rolls back,
   and the retry succeeds after the partition heals;
3. a permanently stuck process (fail-to-reset) — every automatic option
   is exhausted and the system parks at a *safe* configuration awaiting
   user intervention, exactly the paper's option 4.

Run:  python examples/failure_rollback.py
"""

from repro.apps.video import VideoScenario, build_video_cluster
from repro.apps.video.system import (
    paper_source,
    paper_target,
    video_actions,
    video_invariants,
    video_universe,
)
from repro.protocol.failures import FailurePolicy
from repro.sim import AdaptationCluster, BernoulliLoss, QuiescentApp, StuckApp, UniformDelay

POLICY = FailurePolicy(
    reset_timeout=80.0,
    resume_timeout=60.0,
    rollback_timeout=60.0,
    retransmit_interval=20.0,
)


def lossy_network() -> None:
    print("1) 20% control-plane loss")
    scenario = VideoScenario(
        cluster=build_video_cluster(
            seed=11,
            policy=POLICY,
            control_loss=BernoulliLoss(0.2),
            control_delay=UniformDelay(0.5, 2.5),
        )
    )
    outcome = scenario.run()
    stats = scenario.stream_stats()
    print(f"   outcome: {outcome.status} in {outcome.duration:g} ms, "
          f"rollbacks: {outcome.steps_rolled_back}")
    print(f"   corrupt packets: "
          f"{stats['handheld_corrupt'] + stats['laptop_corrupt']}")
    print(f"   safety: {scenario.safety_report().summary()}")
    print()


def partition_and_heal() -> None:
    print("2) partition during the adaptation, healed later")
    scenario = VideoScenario(cluster=build_video_cluster(seed=7, policy=POLICY))
    cluster = scenario.cluster
    cluster.sim.run(until=40.0)
    cluster.sim.schedule(3.0, lambda: cluster.network.partition("manager", "server"))
    cluster.sim.schedule(200.0, cluster.network.heal_all)
    outcome = cluster.adapt_to(paper_target())
    cluster.sim.run(until=cluster.sim.now + 50.0)
    print(f"   outcome: {outcome.status}, rollbacks: {outcome.steps_rolled_back}")
    print(f"   safety: {scenario.safety_report().summary()}")
    print()


def stuck_process() -> None:
    print("3) handheld never reaches its safe state (fail-to-reset)")
    universe = video_universe()
    cluster = AdaptationCluster(
        universe,
        video_invariants(),
        video_actions(),
        paper_source(universe),
        apps={
            "handheld": StuckApp(),  # stuck forever
            "server": QuiescentApp(2.0),
            "laptop": QuiescentApp(2.0),
        },
        policy=POLICY,
    )
    outcome = cluster.adapt_to(paper_target())
    print(f"   outcome: {outcome.status} — {outcome.reason}")
    print(f"   rollbacks: {outcome.steps_rolled_back}, "
          f"parked at {cluster.manager.committed.label()} "
          f"(safe: {cluster.planner.space.is_safe(cluster.manager.committed)})")
    from repro.safety import check_safe

    print(f"   safety: {check_safe(cluster.trace, cluster.invariants).summary()}")


def main() -> None:
    lossy_network()
    partition_and_heal()
    stuck_process()


if __name__ == "__main__":
    main()
