"""Legacy setup shim.

Kept so ``pip install -e .`` works on environments without the ``wheel``
package (PEP 517 editable builds require it; the legacy path does not).
All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
