"""Data-plane message wrapper for the video stream.

The control plane (manager ↔ agents) and the data plane (video packets)
share the simulated network but use distinct endpoints: a process ``p``
receives control messages at ``p`` and stream traffic at ``p.data``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.codecs.packets import Packet
from repro.protocol.messages import Message


def data_endpoint(process_id: str) -> str:
    """Network address of a process's data-plane handler."""
    return f"{process_id}.data"


@dataclass(frozen=True)
class DataMessage(Message):
    """One video packet in flight (``step_key`` is unused: always '')."""

    packet: Packet = field(default=None)  # type: ignore[assignment]

    def __post_init__(self):
        if self.packet is None:
            raise ValueError("DataMessage needs a packet")
