"""Yen's algorithm for k shortest loopless paths.

The paper's failure-handling cascade (§4.4) needs "the second minimum
adaptation path from the current configuration to the target
configuration", and in general the next-best alternative each time a step
fails.  Yen's algorithm enumerates loopless paths in non-decreasing cost
order on top of the Dijkstra routine.
"""

from __future__ import annotations

from typing import Hashable, Iterator, List, Set, Tuple, TypeVar

from repro.graphs.digraph import Digraph
from repro.graphs.dijkstra import Path, shortest_path

N = TypeVar("N", bound=Hashable)
L = TypeVar("L", bound=Hashable)


def _path_key(path: Path) -> Tuple:
    """Identity of a path for deduplication: the node/label sequence."""
    return (path.nodes, path.labels)


def k_shortest_paths(
    graph: Digraph[N, L],
    source: N,
    target: N,
    k: int,
) -> List[Path[N, L]]:
    """Up to *k* loopless minimum-cost paths, in non-decreasing cost order.

    Deterministic for a fixed graph construction order.  Returns fewer than
    *k* paths when the graph does not contain that many distinct loopless
    paths.
    """
    if k <= 0:
        return []
    first = shortest_path(graph, source, target)
    if first is None:
        return []
    found: List[Path[N, L]] = [first]
    seen: Set[Tuple] = {_path_key(first)}
    # candidate pool: (cost, order, path); order keeps heap behavior stable
    candidates: List[Tuple[float, int, Path[N, L]]] = []
    order = 0

    while len(found) < k:
        prev = found[-1]
        for i in range(len(prev.edges)):
            spur_node = prev.nodes[i]
            root_edges = prev.edges[:i]
            root_cost = sum(edge.weight for edge in root_edges)
            removed_edges = set()
            for path in found:
                if path.nodes[: i + 1] == prev.nodes[: i + 1] and len(path.edges) > i:
                    removed_edges.add((path.edges[i].source, path.edges[i].label))
            removed_nodes = set(prev.nodes[:i])  # forbid loops through the root
            pruned = graph.subgraph_without(removed_edges, removed_nodes)
            if spur_node not in pruned or target not in pruned:
                continue
            spur = shortest_path(pruned, spur_node, target)
            if spur is None:
                continue
            total_nodes = prev.nodes[:i] + spur.nodes
            total_edges = root_edges + spur.edges
            total = Path(
                nodes=total_nodes,
                edges=total_edges,
                cost=root_cost + spur.cost,
            )
            key = _path_key(total)
            if key not in seen:
                seen.add(key)
                candidates.append((total.cost, order, total))
                order += 1
        if not candidates:
            break
        candidates.sort(key=lambda item: (item[0], item[1]))
        _, _, best = candidates.pop(0)
        found.append(best)
    return found


def iter_shortest_paths(
    graph: Digraph[N, L],
    source: N,
    target: N,
    limit: int = 64,
) -> Iterator[Path[N, L]]:
    """Generator over the first *limit* shortest paths (lazy wrapper).

    The failure-handling policy consumes alternates one at a time; this
    wrapper keeps call sites readable without re-running Yen from scratch
    per request.
    """
    for path in k_shortest_paths(graph, source, target, limit):
        yield path
