"""Local-quiescence baseline (Kramer & Magee, paper §6).

Each affected process independently waits for *local* quiescence (no
in-progress local operation), briefly blocks itself, swaps its slice of
the delta, and resumes — with no central coordination, no safe
intermediate configurations, and no global drain condition.

This is the paper's explicit critique target: "The concept of quiescent
state is close to that of local safe state introduced in this paper.  The
safe adaptation process in our paper also considers other critical
factors such as global conditions and safe configurations."  The run
shows what those factors buy: even though every in-action fires in a
locally quiescent, blocked process (the discipline check passes), the
system transits unsafe global configurations and corrupts in-flight
packets whose decoders disappear early.
"""

from __future__ import annotations

from typing import Sequence

from repro.baselines.common import (
    BaselineResult,
    apply_slice,
    commit,
    delta_action,
    record_block,
)
from repro.core.model import Configuration
from repro.sim.cluster import AdaptationCluster


class LocalQuiescenceSwap:
    """Uncoordinated per-process quiescent swaps."""

    def __init__(
        self,
        cluster: AdaptationCluster,
        target: Configuration,
        at_time: float,
        quiesce_delays: Sequence[float] = (0.0, 4.0, 8.0),
    ):
        self.cluster = cluster
        self.target = target
        self.at_time = at_time
        # Per-process quiescence arrival times: processes rarely become
        # quiescent simultaneously, which is exactly what creates the
        # unsafe interleavings.
        self.quiesce_delays = tuple(quiesce_delays)
        self.result = BaselineResult(strategy="quiescence")

    def schedule(self) -> BaselineResult:
        source = self.cluster.live_configuration
        action = delta_action(source, self.target, action_id="quiescence-swap")
        involved = sorted(
            p for p in self.cluster.hosts
            if any(
                self.cluster.universe.process_of(name) == p
                for name in action.touched
            )
        )
        self.result.started_at = self.at_time
        for index, process in enumerate(involved):
            host = self.cluster.hosts[process]
            delay = self.at_time + self.quiesce_delays[index % len(self.quiesce_delays)]
            is_last = index == len(involved) - 1

            def swap(host=host, is_last=is_last) -> None:
                # Locally quiescent (between packets): block, swap, resume.
                record_block(host, True)
                apply_slice(host, action)
                record_block(host, False)
                self.result.swaps += 1
                commit(
                    self.cluster,
                    self.cluster.live_configuration,
                    step_id=f"quiescence/{host.process_id}",
                    action_id=action.action_id,
                )
                if is_last:
                    self.result.finished_at = self.cluster.sim.now
                    self.result.done = True

            self.cluster.sim.schedule(delay, swap)
        return self.result
