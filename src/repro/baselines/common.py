"""Shared plumbing for baseline adaptation strategies."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Set

from repro.core.actions import AdaptiveAction
from repro.core.model import Configuration
from repro.sim.cluster import AdaptationCluster, ProcessHost
from repro.trace import AdaptationApplied, BlockRecord, ConfigCommitted


def delta_action(
    source: Configuration, target: Configuration, action_id: str = "delta", cost: float = 0.0
) -> AdaptiveAction:
    """The single action representing the whole source→target delta."""
    return AdaptiveAction(
        action_id,
        removes=source.members - target.members,
        adds=target.members - source.members,
        cost=cost,
        description=f"direct swap {source.label()} -> {target.label()}",
    )


def apply_slice(host: ProcessHost, action: AdaptiveAction) -> None:
    """Apply a host's local slice of *action* and record it in the trace.

    This is the raw structural change with no protocol around it — the
    building block every baseline shares.
    """
    local_removes = {
        name for name in action.removes
        if host.universe.process_of(name) == host.process_id
    }
    local_adds = {
        name for name in action.adds
        if host.universe.process_of(name) == host.process_id
    }
    if not local_removes and not local_adds:
        return
    host.components -= local_removes
    host.components |= local_adds
    host.app.apply_action(action)
    # emit (not raw trace.append) so baseline runs stream through any
    # attached observation bus — online enforcement trips them mid-run.
    host.emit(
        AdaptationApplied(
            time=host.sim.now,
            process=host.process_id,
            action_id=action.action_id,
            removes=frozenset(local_removes),
            adds=frozenset(local_adds),
        )
    )


def record_block(host: ProcessHost, blocked: bool) -> None:
    """Toggle a host's blocked flag with trace + app notifications."""
    host.blocked = blocked
    host.emit(
        BlockRecord(time=host.sim.now, process=host.process_id, blocked=blocked)
    )
    if blocked:
        host.app.on_blocked()
    else:
        host.app.on_resumed()


def commit(cluster: AdaptationCluster, configuration: Configuration, step_id: str,
           action_id: str = "") -> None:
    cluster.manager.emit(
        ConfigCommitted(
            time=cluster.sim.now,
            configuration=configuration.members,
            step_id=step_id,
            action_id=action_id,
        )
    )


@dataclass
class BaselineResult:
    """What a baseline run did, for benches and tests."""

    strategy: str
    started_at: float = 0.0
    finished_at: float = 0.0
    swaps: int = 0
    done: bool = False

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at
