"""A small directed multigraph with labelled, weighted edges.

Kept deliberately minimal: the planner needs adjacency iteration, edge
labels (adaptive-action identifiers), and non-negative weights (costs).
Parallel edges between the same node pair are allowed — two different
adaptive actions may connect the same pair of configurations — which is why
this is a multigraph keyed by labels rather than an adjacency matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generic, Hashable, Iterable, Iterator, List, Sequence, Set, Tuple, TypeVar

N = TypeVar("N", bound=Hashable)
L = TypeVar("L", bound=Hashable)

_NO_EDGES: Tuple = ()


@dataclass(frozen=True)
class Edge(Generic[N, L]):
    """A directed, labelled, weighted edge."""

    source: N
    target: N
    label: L
    weight: float

    def __post_init__(self):
        if self.weight < 0:
            raise ValueError(f"edge weight must be non-negative, got {self.weight}")


class Digraph(Generic[N, L]):
    """Directed multigraph with hashable nodes and labelled weighted edges."""

    def __init__(self) -> None:
        self._adjacency: Dict[N, List[Edge[N, L]]] = {}
        self._nodes: Set[N] = set()
        self._edge_count = 0

    # -- construction --------------------------------------------------------
    def add_node(self, node: N) -> None:
        """Add *node* (idempotent)."""
        if node not in self._nodes:
            self._nodes.add(node)
            self._adjacency.setdefault(node, [])

    def add_edge(self, source: N, target: N, label: L, weight: float) -> Edge[N, L]:
        """Add a directed edge; both endpoints are added implicitly."""
        edge = Edge(source, target, label, weight)
        self.add_node(source)
        self.add_node(target)
        self._adjacency[source].append(edge)
        self._edge_count += 1
        return edge

    # -- queries --------------------------------------------------------------
    @property
    def node_count(self) -> int:
        return len(self._nodes)

    @property
    def edge_count(self) -> int:
        return self._edge_count

    def __contains__(self, node: N) -> bool:
        return node in self._nodes

    def nodes(self) -> Iterator[N]:
        """Nodes in insertion order.

        Deterministic iteration matters: :class:`repro.graphs.csr.CSRGraph`
        derives its int node indexing from this order, and identical
        indexing across runs is what keeps compiled-kernel tie-breaks
        reproducible.
        """
        return iter(self._adjacency)

    def edges(self) -> Iterator[Edge[N, L]]:
        for out_edges in self._adjacency.values():
            yield from out_edges

    def out_edges(self, node: N) -> Tuple[Edge[N, L], ...]:
        """Outgoing edges of *node* (empty tuple if the node is unknown)."""
        return tuple(self._adjacency.get(node, ()))

    def adjacency(self, node: N) -> Sequence[Edge[N, L]]:
        """Outgoing edges of *node* without a defensive copy.

        Hot-path accessor for the search algorithms: returns the internal
        edge list (do not mutate).  :meth:`out_edges` stays the safe,
        copying API for everyone else.
        """
        return self._adjacency.get(node, _NO_EDGES)

    def successors(self, node: N) -> Iterator[N]:
        seen: Set[N] = set()
        for edge in self._adjacency.get(node, ()):
            if edge.target not in seen:
                seen.add(edge.target)
                yield edge.target

    def has_edge(self, source: N, target: N) -> bool:
        return any(e.target == target for e in self._adjacency.get(source, ()))

    def edge_labels(self, source: N, target: N) -> Tuple[L, ...]:
        """Labels of all parallel edges from *source* to *target*."""
        return tuple(
            e.label for e in self._adjacency.get(source, ()) if e.target == target
        )

    def subgraph_without(
        self,
        removed_edges: Iterable[Tuple[N, L]] = (),
        removed_nodes: Iterable[N] = (),
    ) -> "Digraph[N, L]":
        """Copy of the graph minus the given ``(source, label)`` edges and nodes.

        Used by Yen's algorithm to generate spur candidates.
        """
        removed_edge_set = set(removed_edges)
        removed_node_set = set(removed_nodes)
        out: Digraph[N, L] = Digraph()
        for node in self._nodes:
            if node not in removed_node_set:
                out.add_node(node)
        for edge in self.edges():
            if edge.source in removed_node_set or edge.target in removed_node_set:
                continue
            if (edge.source, edge.label) in removed_edge_set:
                continue
            out.add_edge(edge.source, edge.target, edge.label, edge.weight)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Digraph(nodes={self.node_count}, edges={self.edge_count})"
