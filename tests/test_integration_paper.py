"""The paper, end to end: one test per headline claim.

This module is the executable summary of EXPERIMENTS.md — each test
reproduces one table, figure, or stated claim in a single run.
"""

import pytest

from repro.apps.video import VideoScenario
from repro.apps.video.system import (
    paper_source,
    paper_target,
    video_planner,
)


class TestTable1:
    def test_safe_configuration_set_matches_exactly(self, table1_bits):
        planner = video_planner()
        got = {planner.universe.to_bits(c) for c in planner.space.enumerate()}
        assert got == set(table1_bits)


class TestTable2:
    def test_action_table_regenerates(self):
        planner = video_planner()
        rows = [
            (a.action_id, a.operation_text(), a.cost) for a in planner.actions
        ]
        assert rows[0] == ("A1", "E1 -> E2", 10.0)
        assert rows[15] == ("A16", "-D4", 10.0)
        assert rows[16] == ("A17", "+D5", 10.0)
        assert len(rows) == 17


class TestFigure4:
    def test_sag_and_map(self):
        planner = video_planner()
        source, target = paper_source(), paper_target()
        assert planner.sag.node_count == 8
        plan = planner.plan(source, target)
        assert plan.total_cost == 50.0
        # the paper's exact MAP is among the cost-optimal paths
        optimal = {
            p.action_ids
            for p in planner.plan_k(source, target, 8)
            if p.total_cost == 50.0
        }
        assert ("A2", "A17", "A1", "A16", "A4") in optimal


class TestSection52:
    def test_live_walkthrough_is_safe_and_lossless(self):
        scenario = VideoScenario(seed=0)
        outcome = scenario.run()
        assert outcome.succeeded
        assert outcome.steps_committed == 5
        scenario.safety_report().raise_if_unsafe()
        stats = scenario.stream_stats()
        assert stats["handheld_corrupt"] == 0
        assert stats["laptop_corrupt"] == 0


class TestSection33Equivalence:
    """(a) safe ⇔ (b) safe path + global safe states — both directions."""

    def test_forward_protocol_runs_satisfy_definition(self):
        # (b) → (a): execution along the MAP with held-safe in-actions
        # passes the two-clause checker.  (Covered at scale by the
        # property tests; one canonical run here.)
        scenario = VideoScenario(seed=8)
        scenario.run()
        assert scenario.safety_report().ok

    def test_converse_violating_either_condition_is_unsafe(self):
        # (a) → (b) contrapositive: a process not on a safe path (unsafe
        # intermediate configuration) or with unheld in-actions fails the
        # checker — the baselines construct exactly those executions.
        from repro.baselines import UnsafeSwap

        scenario = VideoScenario(seed=8)
        UnsafeSwap(
            scenario.cluster, paper_target(), at_time=50.0, stagger=4.0
        ).schedule()
        scenario.cluster.sim.run(until=130.0)
        report = scenario.safety_report()
        assert report.by_kind("dependency")  # not on a safe path
        assert report.by_kind("discipline")  # not in held safe states
        assert report.by_kind("corruption")  # and it shows
