"""Unit tests for sensors."""

import pytest

from repro.monitor.sensors import (
    BatterySensor,
    EwmaSensor,
    GaugeSensor,
    Sensor,
    WindowRateSensor,
)


class TestGauge:
    def test_set_and_sample(self):
        gauge = GaugeSensor("threat", 1.0)
        assert gauge.sample() == 1.0
        gauge.set(5.0)
        assert gauge.sample() == 5.0

    def test_name_required(self):
        with pytest.raises(ValueError):
            GaugeSensor("")


class TestEwma:
    def test_converges_toward_observations(self):
        sensor = EwmaSensor("loss", alpha=0.5)
        for _ in range(20):
            sensor.observe(10.0)
        assert sensor.sample() == pytest.approx(10.0, abs=0.1)

    def test_smoothing(self):
        sensor = EwmaSensor("loss", alpha=0.1)
        sensor.observe(100.0)
        assert sensor.sample() == pytest.approx(10.0)

    def test_alpha_validated(self):
        with pytest.raises(ValueError):
            EwmaSensor("x", alpha=0.0)
        with pytest.raises(ValueError):
            EwmaSensor("x", alpha=1.5)


class TestWindowRate:
    def test_fraction_over_window(self):
        sensor = WindowRateSensor("loss", window=4)
        for bad in (True, False, True, True):
            sensor.observe(bad)
        assert sensor.sample() == 0.75

    def test_window_slides(self):
        sensor = WindowRateSensor("loss", window=2)
        sensor.observe(True)
        sensor.observe(True)
        sensor.observe(False)
        sensor.observe(False)
        assert sensor.sample() == 0.0

    def test_empty_reads_zero(self):
        assert WindowRateSensor("loss").sample() == 0.0

    def test_window_validated(self):
        with pytest.raises(ValueError):
            WindowRateSensor("x", window=0)


class TestBattery:
    def test_drains_with_time(self):
        battery = BatterySensor("bat", capacity=100.0, drain_per_unit=1.0)
        battery.advance_to(0.0)
        battery.advance_to(30.0)
        assert battery.sample() == 70.0

    def test_never_negative(self):
        battery = BatterySensor("bat", capacity=10.0, drain_per_unit=1.0)
        battery.advance_to(0.0)
        battery.advance_to(1000.0)
        assert battery.sample() == 0.0

    def test_time_going_backwards_ignored(self):
        battery = BatterySensor("bat", capacity=10.0, drain_per_unit=1.0)
        battery.advance_to(5.0)
        battery.advance_to(3.0)
        assert battery.sample() == 10.0

    def test_abstract_base(self):
        with pytest.raises(NotImplementedError):
            Sensor("s").sample()
