"""Experiment C1 — §4.4 failure handling under message loss.

Sweeps control-plane loss and reports the outcome mix (complete / aborted
/ await-user), rollback counts, and recovery cost.  The paper's claims to
verify in shape: transient loss is absorbed (still completes), rollbacks
only ever happen before a step's first resume, and whatever happens the
system sits at a safe configuration.
"""

import pytest

from benchmarks.conftest import report
from repro.apps.video import build_video_cluster
from repro.apps.video.scenario import VideoScenario
from repro.apps.video.system import paper_target
from repro.bench import format_table
from repro.protocol.failures import FailurePolicy
from repro.safety import check_safe
from repro.sim.net import BernoulliLoss, UniformDelay

POLICY = FailurePolicy(
    reset_timeout=80.0,
    resume_timeout=60.0,
    rollback_timeout=60.0,
    retransmit_interval=20.0,
)

LOSS_RATES = (0.0, 0.1, 0.2, 0.3)
SEEDS_PER_RATE = 8


def run_once(loss, seed):
    scenario = VideoScenario(
        cluster=build_video_cluster(
            seed=seed,
            policy=POLICY,
            control_loss=BernoulliLoss(loss),
            control_delay=UniformDelay(0.5, 2.5),
        )
    )
    outcome = scenario.run(warmup=20.0, cooldown=20.0)
    return scenario, outcome


def sweep(loss):
    rows = []
    for seed in range(SEEDS_PER_RATE):
        scenario, outcome = run_once(loss, seed)
        check_safe(
            scenario.cluster.trace, scenario.cluster.invariants
        ).raise_if_unsafe()
        stats = scenario.stream_stats()
        assert stats["handheld_corrupt"] == 0 and stats["laptop_corrupt"] == 0
        rows.append(outcome)
    return rows


@pytest.mark.parametrize("loss", LOSS_RATES)
def test_loss_sweep(benchmark, loss):
    outcomes = benchmark.pedantic(sweep, args=(loss,), rounds=1, iterations=1)
    complete = sum(1 for o in outcomes if o.status == "complete")
    rollbacks = sum(o.steps_rolled_back for o in outcomes)
    mean_duration = sum(o.duration for o in outcomes) / len(outcomes)
    benchmark.extra_info.update(
        {
            "loss": loss,
            "complete": complete,
            "of": len(outcomes),
            "rollbacks": rollbacks,
            "mean_duration_ms": round(mean_duration, 1),
        }
    )
    report(
        f"failure handling @ control loss {loss:.0%}",
        format_table(
            ["metric", "value"],
            [
                ("runs completing", f"{complete}/{len(outcomes)}"),
                ("total rollbacks", rollbacks),
                ("mean adaptation duration (ms)", round(mean_duration, 1)),
            ],
        ),
    )
    # Shape assertions: lossless is clean and quick; lossy still safe.
    if loss == 0.0:
        assert complete == len(outcomes)
        assert rollbacks == 0
    else:
        assert complete >= 1  # retransmission absorbs transient loss


def test_rollbacks_only_before_resume(benchmark):
    """§4.4's rule, checked over a lossy batch: any step that reached its
    resume phase ran to completion (committed), never rolled back."""
    from repro.trace import ConfigCommitted, NoteRecord

    benchmark.pedantic(lambda: run_once(0.25, 0), rounds=1, iterations=1)
    for seed in range(6):
        scenario, outcome = run_once(0.25, seed)
        committed_steps = {
            r.step_id for r in scenario.cluster.trace.of_type(ConfigCommitted)
        }
        rolled_back_steps = {
            r.text.split()[1]
            for r in scenario.cluster.trace.of_type(NoteRecord)
            if r.text.startswith("step ") and "rolled back" in r.text
        }
        assert committed_steps.isdisjoint(rolled_back_steps)


def test_fail_to_reset_outcome_is_parked_safe(benchmark):
    """A permanently stuck participant parks the system at a safe config
    and surfaces user intervention (§4.4 option 4)."""
    from repro.apps.video.system import (
        paper_source,
        video_actions,
        video_invariants,
        video_universe,
    )
    from repro.sim import AdaptationCluster, QuiescentApp, StuckApp

    def run():
        universe = video_universe()
        apps = {
            "handheld": StuckApp(),
            "server": QuiescentApp(2.0),
            "laptop": QuiescentApp(2.0),
        }
        cluster = AdaptationCluster(
            universe, video_invariants(), video_actions(),
            paper_source(universe), apps=apps, policy=POLICY,
        )
        outcome = cluster.adapt_to(paper_target())
        return cluster, outcome

    cluster, outcome = benchmark(run)
    assert outcome.status == "await_user"
    assert cluster.planner.space.is_safe(cluster.manager.committed)
    benchmark.extra_info["rollbacks"] = outcome.steps_rolled_back
