"""Experiments C2 + A2 — safety versus the baseline strategies.

The paper's core argument, as one regenerated table: the same adaptation
(64-bit → 128-bit hardening, mid-stream) under five strategies.  Only the
undisciplined strategies corrupt; local quiescence alone (Kramer–Magee
style) still violates dependencies and segments — the paper's §6 point —
while the single-step 2PC and stop-the-world restart are safe but blunt
(sender blocked / packets discarded).
"""

import pytest

from benchmarks.conftest import report
from repro.apps.video import VideoScenario
from repro.apps.video.scenario import VIDEO_CCS
from repro.apps.video.system import paper_target
from repro.baselines import (
    LocalQuiescenceSwap,
    RestartSwap,
    TwoPhaseSwap,
    UnsafeSwap,
)
from repro.bench import format_table
from repro.obs import ObservationBus
from repro.safety import StreamingSafetyChecker
from repro.trace import BlockRecord


def total_blocked(trace, process):
    total, start = 0.0, None
    for record in trace.of_type(BlockRecord):
        if record.process != process:
            continue
        if record.blocked and start is None:
            start = record.time
        elif not record.blocked and start is not None:
            total += record.time - start
            start = None
    return total


def run_strategy(name, seed=3):
    scenario = VideoScenario(seed=seed)
    # Non-enforcing streaming checker on the observation bus: records the
    # *moment* the first violation happened, not just the post-hoc verdict.
    watcher = StreamingSafetyChecker(
        scenario.cluster.invariants,
        ccs=VIDEO_CCS,
        universe=scenario.cluster.universe,
    )
    scenario.cluster.trace.attach_bus(ObservationBus(watcher), replay=True)
    target = paper_target()
    discarded = 0
    if name == "safe-protocol":
        scenario.run()
    elif name == "unsafe":
        UnsafeSwap(scenario.cluster, target, at_time=50.0).schedule()
        scenario.cluster.sim.run(until=150.0)
    elif name == "quiescence":
        LocalQuiescenceSwap(scenario.cluster, target, at_time=50.0).schedule()
        scenario.cluster.sim.run(until=150.0)
    elif name == "twophase":
        scenario.cluster.sim.run(until=50.0)
        TwoPhaseSwap(scenario.cluster, target).run()
        scenario.cluster.sim.run(until=scenario.cluster.sim.now + 60.0)
    elif name == "restart":
        strategy = RestartSwap(scenario.cluster, target, at_time=50.0)
        strategy.schedule()
        scenario.cluster.sim.run(until=150.0)
        discarded = strategy.packets_discarded
    else:  # pragma: no cover
        raise ValueError(name)
    stats = scenario.stream_stats()
    rep = scenario.safety_report()
    first = watcher.first_violation
    return {
        "strategy": name,
        "safe": rep.ok,
        "dependency": len(rep.by_kind("dependency")),
        "ccs": len(rep.by_kind("ccs")),
        "corrupt_packets": stats["handheld_corrupt"] + stats["laptop_corrupt"],
        "server_blocked_ms": round(
            total_blocked(scenario.cluster.trace, "server"), 1
        ),
        "packets_discarded": discarded,
        "first_violation_ms": round(first.time, 1) if first is not None else None,
    }


STRATEGIES = ("safe-protocol", "unsafe", "quiescence", "twophase", "restart")


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_strategy(benchmark, strategy):
    result = benchmark.pedantic(
        run_strategy, args=(strategy,), rounds=1, iterations=1
    )
    benchmark.extra_info.update(result)
    expectations = {
        "safe-protocol": dict(safe=True, corrupt=False, blocks_server=False),
        "unsafe": dict(safe=False, corrupt=True, blocks_server=False),
        "quiescence": dict(safe=False, corrupt=True, blocks_server=False),
        "twophase": dict(safe=True, corrupt=False, blocks_server=True),
        "restart": dict(safe=True, corrupt=False, blocks_server=True),
    }[strategy]
    assert result["safe"] == expectations["safe"]
    assert (result["corrupt_packets"] > 0) == expectations["corrupt"]
    assert (result["server_blocked_ms"] > 0) == expectations["blocks_server"]


def test_comparison_table(benchmark):
    rows = benchmark.pedantic(
        lambda: [run_strategy(name) for name in STRATEGIES],
        rounds=1, iterations=1,
    )
    report(
        "safety vs baselines (regenerated comparison)",
        format_table(
            [
                "strategy", "safe", "dep viol", "ccs viol",
                "corrupt pkts", "server blocked (ms)", "pkts discarded",
                "first viol (ms)",
            ],
            [
                (
                    r["strategy"], r["safe"], r["dependency"], r["ccs"],
                    r["corrupt_packets"], r["server_blocked_ms"],
                    r["packets_discarded"],
                    "-" if r["first_violation_ms"] is None
                    else r["first_violation_ms"],
                )
                for r in rows
            ],
        ),
    )
    by_name = {r["strategy"]: r for r in rows}
    # Headline shape: only the safe protocol achieves zero corruption with
    # zero sender blocking and zero loss.
    safe = by_name["safe-protocol"]
    assert safe["corrupt_packets"] == 0
    assert safe["server_blocked_ms"] == 0
    assert safe["packets_discarded"] == 0
    # The quiescence baseline fails despite blocked in-actions (A2 ablation).
    assert by_name["quiescence"]["dependency"] > 0
    assert by_name["quiescence"]["corrupt_packets"] > 0
    # Time-to-first-violation: the safe strategies never trip the streaming
    # checker; the unsafe ones trip at/after the swap (scheduled at t=50).
    for name in ("safe-protocol", "twophase", "restart"):
        assert by_name[name]["first_violation_ms"] is None
    for name in ("unsafe", "quiescence"):
        assert by_name[name]["first_violation_ms"] is not None
        assert by_name[name]["first_violation_ms"] >= 50.0
