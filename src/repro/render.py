"""ASCII rendering of execution traces: per-process adaptation timelines.

Turns a :class:`~repro.trace.Trace` into a human-readable lane diagram —
one lane per process, showing blocked intervals, in-actions, rollbacks,
and corruption, with configuration commits as global markers.  Used by
the CLI (``repro simulate --timeline``) and handy in test failures.

Example output::

    t=50.0   [commit plan1/0#0: A2 -> {D2,D4,E1}]
    handheld ├──█ A2 ██──────────────────
    laptop   ├────────█ A17 █────────────
    server   ├───────────────█ A1 █──────
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, TextIO, Tuple

from repro.obs import Observer
from repro.trace import (
    AdaptationApplied,
    BlockRecord,
    ConfigCommitted,
    CorruptionRecord,
    NoteRecord,
    RollbackRecord,
    Trace,
    TraceRecord,
)


def format_record(record: TraceRecord) -> Optional[str]:
    """One event-log line for a record, or None for records not rendered
    (communication traffic is too chatty for the event log)."""
    if isinstance(record, ConfigCommitted):
        members = "{" + ",".join(sorted(record.configuration)) + "}"
        tag = f"commit {record.step_id}"
        if record.action_id:
            tag += f" ({record.action_id})"
        return f"t={record.time:9.2f}  {tag}: {members}"
    if isinstance(record, BlockRecord):
        verb = "blocked" if record.blocked else "resumed"
        return f"t={record.time:9.2f}    {record.process}: {verb}"
    if isinstance(record, AdaptationApplied):
        delta = []
        if record.removes:
            delta.append("-" + ",".join(sorted(record.removes)))
        if record.adds:
            delta.append("+" + ",".join(sorted(record.adds)))
        return (
            f"t={record.time:9.2f}    {record.process}: in-action "
            f"{record.action_id} [{' '.join(delta) or 'no local delta'}]"
        )
    if isinstance(record, RollbackRecord):
        return (
            f"t={record.time:9.2f}    {record.process}: ROLLBACK "
            f"{record.action_id}"
        )
    if isinstance(record, CorruptionRecord):
        return (
            f"t={record.time:9.2f}    {record.process}: CORRUPTION "
            f"{record.detail}"
        )
    if isinstance(record, NoteRecord):
        return f"t={record.time:9.2f}  note: {record.text}"
    return None


def render_events(trace: Trace, width: int = 72) -> str:
    """Chronological event log, one line per protocol-relevant record."""
    lines: List[str] = []
    for record in trace:
        line = format_record(record)
        if line is not None:
            lines.append(line)
    return "\n".join(lines)


class EventStreamSink(Observer):
    """Streaming event log: tails a live run over the observation bus.

    Each published record is formatted with :func:`format_record` and
    written to *stream* (or handed to *emit*) as it happens — the same
    lines ``render_events`` produces post-hoc, but printed while the run
    is in flight (``repro simulate --tail``).  :meth:`finish` returns the
    full formatted log collected so far.
    """

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        emit: Optional[Callable[[str], None]] = None,
    ):
        self._stream = stream
        self._emit = emit
        self._lines: List[str] = []

    @property
    def name(self) -> str:
        return "events"

    def feed(self, record: TraceRecord) -> None:
        line = format_record(record)
        if line is None:
            return
        self._lines.append(line)
        if self._emit is not None:
            self._emit(line)
        if self._stream is not None:
            self._stream.write(line + "\n")
            self._stream.flush()

    @property
    def lines(self) -> Tuple[str, ...]:
        return tuple(self._lines)

    def finish(self) -> str:
        return "\n".join(self._lines)


def render_timeline(trace: Trace, width: int = 64) -> str:
    """Per-process lane diagram of blocked intervals and in-actions.

    Time is scaled to *width* columns between the first and last record;
    ``█`` marks blocked spans, ``A``/``R`` the instants of in-actions and
    rollbacks, ``!`` corruption, ``|`` commits (on the global lane).
    """
    records = list(trace)
    if not records:
        return "(empty trace)"
    t0 = records[0].time
    t1 = max(r.time for r in records)
    span = max(t1 - t0, 1e-9)

    def col(time: float) -> int:
        return min(width - 1, int((time - t0) / span * (width - 1)))

    processes: List[str] = []
    for record in records:
        process = getattr(record, "process", None)
        if process and process not in processes:
            processes.append(process)
    lanes: Dict[str, List[str]] = {p: ["─"] * width for p in processes}
    global_lane = ["·"] * width

    block_start: Dict[str, float] = {}
    for record in records:
        if isinstance(record, BlockRecord):
            if record.blocked:
                block_start[record.process] = record.time
            else:
                start = block_start.pop(record.process, record.time)
                lane = lanes[record.process]
                for column in range(col(start), col(record.time) + 1):
                    if lane[column] == "─":
                        lane[column] = "█"
        elif isinstance(record, AdaptationApplied):
            lanes[record.process][col(record.time)] = "A"
        elif isinstance(record, RollbackRecord):
            lanes[record.process][col(record.time)] = "R"
        elif isinstance(record, CorruptionRecord):
            lanes[record.process][col(record.time)] = "!"
        elif isinstance(record, ConfigCommitted):
            global_lane[col(record.time)] = "|"
    # a process still blocked at trace end keeps its bar to the edge
    for process, start in block_start.items():
        lane = lanes[process]
        for column in range(col(start), width):
            if lane[column] == "─":
                lane[column] = "█"

    name_width = max((len(p) for p in processes), default=6)
    lines = [
        f"{'commits'.ljust(name_width)} {''.join(global_lane)}",
    ]
    for process in processes:
        lines.append(f"{process.ljust(name_width)} {''.join(lanes[process])}")
    lines.append(
        f"{''.ljust(name_width)} t={t0:g} .. t={t1:g} "
        f"(█ blocked, A in-action, R rollback, ! corruption, | commit)"
    )
    return "\n".join(lines)
