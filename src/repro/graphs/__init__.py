"""From-scratch graph algorithms used by the adaptation planner.

The Safe Adaptation Graph (paper §3.1/§4.2) needs single-pair shortest
paths (Dijkstra, for the Minimum Adaptation Path), k-shortest loopless
paths (Yen, for the failure-handling cascade "try the second minimum
adaptation path"), and best-first partial exploration (A*, the paper's
§7 future-work heuristic that avoids materializing the whole SAG).

All algorithms work over a generic :class:`Digraph` with labelled weighted
edges; nodes may be any hashable value (the planner uses frozensets of
component names).
"""

from repro.graphs.digraph import Digraph, Edge
from repro.graphs.dijkstra import Path, dijkstra, shortest_path
from repro.graphs.yen import k_shortest_paths
from repro.graphs.astar import astar_path, lazy_astar
from repro.graphs.csr import (
    CSRGraph,
    ShortestPathTree,
    bidirectional_shortest_path,
    k_shortest_paths_csr,
)

__all__ = [
    "Digraph",
    "Edge",
    "Path",
    "dijkstra",
    "shortest_path",
    "k_shortest_paths",
    "astar_path",
    "lazy_astar",
    "CSRGraph",
    "ShortestPathTree",
    "bidirectional_shortest_path",
    "k_shortest_paths_csr",
]
