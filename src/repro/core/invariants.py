"""Structural and dependency invariants (paper §3.1, §5.1).

Two flavors, exactly as the paper distinguishes them:

* **Structural invariants** constrain the system's shape regardless of who
  depends on whom — e.g. the video example's resource constraint
  ``one_of(D1, D2, D3)`` (the handheld can host only one decoder) and
  security constraint ``one_of(E1, E2)`` (data must stay encoded).
* **Dependency invariants** are arrows ``A -> Cond`` — the correct
  functionality of ``A`` requires ``Cond``, e.g.
  ``E1 -> (D1 | D2) & D4``.

A configuration is **safe** iff it satisfies every invariant
(:meth:`InvariantSet.all_hold`).
"""

from __future__ import annotations

from typing import (
    AbstractSet,
    Callable,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.errors import ModelError
from repro.expr import Expr, Implies, parse
from repro.expr.ast import to_text


class Invariant:
    """A named boolean predicate over configurations."""

    __slots__ = ("name", "expr")

    def __init__(self, expr: Union[Expr, str], name: str = ""):
        if isinstance(expr, str):
            expr = parse(expr)
        if not isinstance(expr, Expr):
            raise TypeError(f"expected Expr or str, got {type(expr).__name__}")
        object.__setattr__(self, "expr", expr)
        object.__setattr__(self, "name", name or to_text(expr))

    def __setattr__(self, name, value):  # pragma: no cover - immutability
        raise AttributeError("Invariant is immutable")

    def __copy__(self) -> "Invariant":
        return self  # immutable: sharing is safe

    def __deepcopy__(self, memo) -> "Invariant":
        return self  # immutable: sharing is safe

    def holds(self, config: AbstractSet[str]) -> bool:
        """True iff the configuration satisfies this invariant."""
        members = getattr(config, "members", config)
        return self.expr.evaluate(members)

    def atoms(self) -> FrozenSet[str]:
        return self.expr.atoms()

    def __eq__(self, other) -> bool:
        return isinstance(other, Invariant) and self.expr == other.expr

    def __hash__(self) -> int:
        return hash(("invariant", self.expr))

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class StructuralInvariant(Invariant):
    """System-shape constraint (paper: "structural invariant")."""

    __slots__ = ()


class DependencyInvariant(Invariant):
    """Arrow invariant ``depender -> condition`` (paper: ``A → Cond``)."""

    __slots__ = ()

    def __init__(
        self,
        depender: Union[Expr, str],
        condition: Union[Expr, str, None] = None,
        name: str = "",
    ):
        if condition is None:
            # Single-string form: "E1 -> (D1 | D2) & D4".
            expr = parse(depender) if isinstance(depender, str) else depender
            if not isinstance(expr, Implies):
                raise ModelError(
                    "a DependencyInvariant must be an implication; "
                    f"got {to_text(expr) if isinstance(expr, Expr) else expr!r}"
                )
        else:
            left = parse(depender) if isinstance(depender, str) else depender
            right = parse(condition) if isinstance(condition, str) else condition
            expr = Implies(left, right)
        super().__init__(expr, name=name)

    @property
    def depender(self) -> Expr:
        return self.expr.antecedent  # type: ignore[attr-defined]

    @property
    def condition(self) -> Expr:
        return self.expr.consequent  # type: ignore[attr-defined]


class InvariantSet:
    """The conjunction *I* of all invariants (paper §4.1).

    Iterable and indexable; the order is the declaration order, which keeps
    violation reports and collaborative-set decomposition deterministic.
    """

    def __init__(self, invariants: Iterable[Invariant] = ()):
        self._invariants: Tuple[Invariant, ...] = tuple(invariants)
        for inv in self._invariants:
            if not isinstance(inv, Invariant):
                raise TypeError(f"expected Invariant, got {type(inv).__name__}")

    @classmethod
    def of(cls, *specs: Union[Invariant, Expr, str]) -> "InvariantSet":
        """Convenience constructor accepting strings/Exprs/Invariants."""
        out: List[Invariant] = []
        for spec in specs:
            if isinstance(spec, Invariant):
                out.append(spec)
            else:
                out.append(Invariant(spec))
        return cls(out)

    def __iter__(self) -> Iterator[Invariant]:
        return iter(self._invariants)

    def __len__(self) -> int:
        return len(self._invariants)

    def __getitem__(self, index: int) -> Invariant:
        return self._invariants[index]

    def extended(self, *more: Invariant) -> "InvariantSet":
        return InvariantSet(self._invariants + tuple(more))

    def atoms(self) -> FrozenSet[str]:
        """All component names mentioned by any invariant."""
        out: FrozenSet[str] = frozenset()
        for inv in self._invariants:
            out |= inv.atoms()
        return out

    def all_hold(self, config: AbstractSet[str]) -> bool:
        """True iff *config* is a **safe configuration** (paper §3.1)."""
        return all(inv.holds(config) for inv in self._invariants)

    def compile_mask(self, bits) -> "Callable[[int], bool]":
        """Compiled form of :meth:`all_hold` over an integer presence mask.

        *bits* maps component names to bit values — normally
        :attr:`repro.core.model.ComponentUniverse.atom_bits`.  The returned
        closure agrees with :meth:`all_hold` on every configuration whose
        members all carry bits (the property tests pin this); the AST path
        stays the semantic source of truth.
        """
        from repro.expr.compile import compile_conjunction

        return compile_conjunction((inv.expr for inv in self._invariants), bits)

    def compile_mask_partial(self, bits) -> "Tuple[Callable[[int, int], Optional[bool]], ...]":
        """Three-valued compiled invariants for backtracking enumeration."""
        from repro.expr.compile import compile_all_partial

        return compile_all_partial((inv.expr for inv in self._invariants), bits)

    def violated(self, config: AbstractSet[str]) -> Tuple[Invariant, ...]:
        """The invariants *config* breaks — empty tuple means safe."""
        return tuple(inv for inv in self._invariants if not inv.holds(config))

    def explain(self, config: AbstractSet[str]) -> str:
        """Human-readable verdict used in error messages and reports."""
        broken = self.violated(config)
        members = getattr(config, "members", config)
        label = "{" + ",".join(sorted(members)) + "}"
        if not broken:
            return f"{label} is a safe configuration"
        reasons = "; ".join(inv.name for inv in broken)
        return f"{label} violates: {reasons}"

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"InvariantSet({[inv.name for inv in self._invariants]!r})"
