"""Adversarial fuzzing of the sans-io machines.

The machines must be total over *any* message sequence — every input is
either handled (possibly by ignoring it) or rejected with
:class:`IllegalTransitionError`; nothing else may escape, and the agent's
bookkeeping must never desynchronize (e.g. claim an applied action while
RUNNING with no completed record).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.actions import AdaptiveAction
from repro.errors import IllegalTransitionError
from repro.protocol.agent import AgentMachine, AgentState
from repro.protocol.effects import Effect
from repro.protocol.manager import ManagerMachine
from repro.protocol.messages import (
    AdaptDone,
    Message,
    ResetCmd,
    ResetDone,
    ResumeCmd,
    ResumeDone,
    RollbackCmd,
    RollbackDone,
    StatusQuery,
)
from repro.apps.video.system import video_planner, paper_source, paper_target

ACTIONS = [
    AdaptiveAction.replace("A2", "D1", "D2", 10),
    AdaptiveAction.replace("A1", "E1", "E2", 10),
    AdaptiveAction.insert("A17", "D5", 10),
]

STEP_KEYS = ["plan1/0#0", "plan1/0#1", "plan1/1#0", "plan2/0#0"]

PROCESSES = ["handheld", "server", "laptop"]


def agent_messages() -> st.SearchStrategy[Message]:
    keys = st.sampled_from(STEP_KEYS)
    return st.one_of(
        st.builds(
            ResetCmd,
            step_key=keys,
            action=st.sampled_from(ACTIONS),
            participants=st.frozensets(st.sampled_from(PROCESSES), min_size=1),
            await_flush=st.booleans(),
            inject_flush=st.booleans(),
        ),
        st.builds(ResumeCmd, step_key=keys),
        st.builds(RollbackCmd, step_key=keys),
        st.builds(StatusQuery, step_key=keys),
    )


def agent_inputs():
    """A message or a (possibly stale) host callback."""
    keys = st.sampled_from(STEP_KEYS)
    return st.one_of(
        st.tuples(st.just("message"), agent_messages()),
        st.tuples(st.just("local_safe"), keys),
        st.tuples(st.just("in_action_applied"), keys),
        st.tuples(st.just("resumed"), keys),
        st.tuples(st.just("undone"), keys),
    )


@given(st.lists(agent_inputs(), max_size=30))
@settings(max_examples=300, deadline=None)
def test_agent_machine_is_total(inputs):
    agent = AgentMachine("handheld", "manager")
    for kind, payload in inputs:
        try:
            if kind == "message":
                effects = agent.on_message(payload)
            elif kind == "local_safe":
                effects = agent.on_local_safe(payload)
            elif kind == "in_action_applied":
                effects = agent.on_in_action_applied(payload)
            elif kind == "resumed":
                effects = agent.on_resumed(payload)
            else:
                effects = agent.on_undone(payload)
        except IllegalTransitionError:
            continue  # explicit, documented rejection
        assert isinstance(effects, list)
        assert all(isinstance(e, Effect) for e in effects)
        # bookkeeping sanity: a RUNNING agent holds no step state
        if agent.state == AgentState.RUNNING:
            assert agent.step_key is None
            assert agent.action is None
            assert not agent.in_action_applied


def manager_messages() -> st.SearchStrategy[Message]:
    keys = st.sampled_from(STEP_KEYS + ["plan1/0#0"])
    processes = st.sampled_from(PROCESSES)
    return st.one_of(
        st.builds(ResetDone, step_key=keys, process=processes),
        st.builds(AdaptDone, step_key=keys, process=processes),
        st.builds(ResumeDone, step_key=keys, process=processes),
        st.builds(RollbackDone, step_key=keys, process=processes),
    )


@given(
    st.lists(
        st.one_of(
            st.tuples(st.just("message"), manager_messages()),
            st.tuples(st.just("timeout"), st.sampled_from(["phase", "retransmit", "x"])),
        ),
        max_size=40,
    )
)
@settings(max_examples=300, deadline=None)
def test_manager_machine_is_total(inputs):
    planner = video_planner()
    machine = ManagerMachine(planner.universe)
    machine.start(planner.plan(paper_source(), paper_target()))
    safe_space = planner.space
    for kind, payload in inputs:
        try:
            if kind == "message":
                effects = machine.on_message(payload)
            else:
                effects = machine.on_timeout(payload)
        except IllegalTransitionError:
            continue
        assert isinstance(effects, list)
        # the committed configuration can never leave the safe set
        assert machine.committed is None or safe_space.is_safe(machine.committed)
