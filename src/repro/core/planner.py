"""Detection & setup phase: Minimum Adaptation Path planning (paper §4.2).

The :class:`AdaptationPlanner` performs the three setup steps on demand:

1. construct the safe-configuration set,
2. construct the Safe Adaptation Graph,
3. run Dijkstra for the Minimum Adaptation Path (MAP) — plus the extras
   the rest of the paper needs: k-best alternates (failure handling §4.4),
   lazy A* partial exploration and collaborative-set decomposition
   (scalability, §7).
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.core.actions import ActionLibrary, AdaptiveAction
from repro.core.collaborative import collaborative_sets, project_invariants
from repro.core.invariants import InvariantSet
from repro.core.model import ComponentUniverse, Configuration
from repro.core.sag import LazySAG, SafeAdaptationGraph
from repro.core.space import SafeConfigurationSpace
from repro.errors import NoSafePathError
from repro.graphs import lazy_astar
from repro.graphs.csr import ShortestPathTree, k_shortest_paths_csr
from repro.graphs.dijkstra import Path


#: above this many components the eager 2^n enumeration is off the table
#: by default — the service and CLI route requests to :meth:`lazy_plan`
#: (the lint pipeline applies the same cap to its safe-space checks)
LAZY_PLAN_COMPONENTS = 24


@dataclass(frozen=True)
class PlanStep:
    """One adaptation step: an ordered configuration pair plus its action."""

    index: int
    action: AdaptiveAction
    source: Configuration
    target: Configuration

    def participants(self, universe: ComponentUniverse) -> FrozenSet[str]:
        """Processes whose agents take part in this step."""
        return self.action.participants(universe)

    def __repr__(self) -> str:
        return (
            f"PlanStep({self.index}: {self.action.action_id} "
            f"{self.source.label()} -> {self.target.label()})"
        )


@dataclass(frozen=True)
class AdaptationPlan:
    """A safe adaptation path: safe configurations joined by adaptation steps."""

    source: Configuration
    target: Configuration
    steps: Tuple[PlanStep, ...]
    total_cost: float

    @property
    def action_ids(self) -> Tuple[str, ...]:
        return tuple(step.action.action_id for step in self.steps)

    @property
    def configurations(self) -> Tuple[Configuration, ...]:
        """All configurations visited, source first."""
        if not self.steps:
            return (self.source,)
        return (self.steps[0].source,) + tuple(step.target for step in self.steps)

    def __len__(self) -> int:
        return len(self.steps)

    def describe(self) -> str:
        """Multi-line, human-readable rendering used by examples and benches."""
        lines = [
            f"plan {self.source.label()} -> {self.target.label()} "
            f"(cost {self.total_cost:g}, {len(self.steps)} steps)"
        ]
        for step in self.steps:
            lines.append(
                f"  {step.index + 1}. {step.action.action_id}: "
                f"{step.action.description or step.action.operation_text()} "
                f"[cost {step.action.cost:g}]"
            )
        return "\n".join(lines)


class AdaptationPlanner:
    """Runs the detection & setup phase for a fixed ``(universe, I, T, A)``.

    The planner is **incremental**: the safe space, the SAG, and every
    computed plan are cached.  The §4.4 failure cascade — retry the step,
    ask for the next minimum adaptation path, roll back to the source —
    re-enters the planner with shifting ``(source, target)`` pairs; each
    answer is derived once from the shared SAG and the mask-level safety
    memo, then served from the plan cache on repetition.
    """

    #: default bound on cached shortest-path trees (one per distinct source)
    SPT_CACHE_SIZE = 64

    def __init__(
        self,
        universe: ComponentUniverse,
        invariants: InvariantSet,
        actions: ActionLibrary,
        workers: Optional[int] = None,
        spt_cache_size: int = SPT_CACHE_SIZE,
        conflicts: Tuple[Tuple[str, str], ...] = (),
    ):
        self.universe = universe
        self.invariants = invariants
        self.actions = actions
        #: declared racing action pairs (manifest ``[conflicts]``) — kept
        #: inside one collaborative set so they serialize under one manager
        self.conflicts = tuple(conflicts)
        self.space = SafeConfigurationSpace(universe, invariants, workers=workers)
        self.spt_cache_size = max(1, spt_cache_size)
        self._sag: Optional[SafeAdaptationGraph] = None
        self._lazy_sag: Optional[LazySAG] = None
        self._plan_cache: Dict[
            Tuple[Configuration, Configuration], Optional[AdaptationPlan]
        ] = {}
        self._plan_k_cache: Dict[
            Tuple[Configuration, Configuration, int], Tuple[AdaptationPlan, ...]
        ] = {}
        # LRU of shortest-path trees keyed by source configuration.  One
        # tree amortizes every (source, *) query — batched plan_many
        # groups, and the §4.4 replan cascade whose source shifts along
        # the failing path while targets repeat.
        self._spt_cache: "OrderedDict[Configuration, ShortestPathTree]" = OrderedDict()

    def reset_caches(self) -> None:
        """Drop every derived cache (after mutating the action library).

        Clears the SAG (and with it the compiled CSR view), the lazy
        successor generator, the per-pair plan caches, and the
        shortest-path-tree LRU — all of them are derived from the action
        library, so any of them could otherwise serve a path using an
        action that no longer exists.
        """
        self._sag = None
        self._lazy_sag = None
        self._plan_cache.clear()
        self._plan_k_cache.clear()
        self._spt_cache.clear()

    # -- setup steps -------------------------------------------------------------
    @property
    def sag(self) -> SafeAdaptationGraph:
        """The Safe Adaptation Graph (built on first use, then cached)."""
        if self._sag is None:
            self._sag = SafeAdaptationGraph.build(self.space, self.actions)
        return self._sag

    @property
    def lazy_sag(self) -> LazySAG:
        """The implicit-SAG successor generator (built on first use)."""
        if self._lazy_sag is None:
            self._lazy_sag = LazySAG(self.space, self.actions)
        return self._lazy_sag

    def _validate_endpoints(self, source: Configuration, target: Configuration) -> None:
        self.universe.validate_members(source.members)
        self.universe.validate_members(target.members)
        self.space.require_safe(source, role="source configuration")
        self.space.require_safe(target, role="target configuration")

    def _plan_from_path(self, path: Path) -> AdaptationPlan:
        steps = []
        for index, edge in enumerate(path.edges):
            steps.append(
                PlanStep(
                    index=index,
                    action=self.actions.get(edge.label),
                    source=edge.source,
                    target=edge.target,
                )
            )
        return AdaptationPlan(
            source=path.source,
            target=path.target,
            steps=tuple(steps),
            total_cost=path.cost,
        )

    # -- planning entry points -----------------------------------------------------
    def _spt_for(self, source: Configuration) -> ShortestPathTree:
        """The shortest-path tree rooted at *source* (LRU-cached)."""
        cache = self._spt_cache
        tree = cache.get(source)
        if tree is not None:
            cache.move_to_end(source)
            return tree
        tree = self.sag.csr.shortest_path_tree(source)
        cache[source] = tree
        while len(cache) > self.spt_cache_size:
            cache.popitem(last=False)
        return tree

    def _plan_uncached(
        self, source: Configuration, target: Configuration
    ) -> Optional[AdaptationPlan]:
        path = self._spt_for(source).path_to(target)
        return None if path is None else self._plan_from_path(path)

    def plan(self, source: Configuration, target: Configuration) -> AdaptationPlan:
        """The Minimum Adaptation Path (Dijkstra over the compiled SAG).

        The search runs on the CSR view's shortest-path tree for *source*,
        so every further query sharing that source — other targets in a
        batch, the §4.4 cascade re-entering while retrying/rolling back —
        extracts its path in O(path length).  Results are additionally
        cached per ``(source, target)``; a cached ``None`` records that
        the target is unreachable (distinct from an absent entry).

        Raises:
            UnsafeConfigurationError: source or target violates invariants.
            NoSafePathError: target unreachable through safe configurations.
        """
        self._validate_endpoints(source, target)
        key = (source, target)
        if key in self._plan_cache:
            plan = self._plan_cache[key]
        else:
            plan = self._plan_uncached(source, target)
            self._plan_cache[key] = plan
        if plan is None:
            raise NoSafePathError(
                f"no safe adaptation path from {source.label()} to {target.label()}"
            )
        return plan

    def peek_plan(
        self, source: Configuration, target: Configuration
    ) -> Tuple[bool, Optional[AdaptationPlan]]:
        """Warm-cache read: ``(hit, plan)`` without planning or validation.

        A single dict lookup — safe to call without holding any lock (the
        plan cache only ever grows between :meth:`reset_caches` calls).
        ``(True, None)`` means the pair was planned before and found
        unreachable; ``(False, None)`` means it was never planned.
        """
        key = (source, target)
        if key in self._plan_cache:
            return True, self._plan_cache[key]
        return False, None

    def plan_many(
        self, pairs: Sequence[Tuple[Configuration, Configuration]]
    ) -> List[Optional[AdaptationPlan]]:
        """Batched MAP solving: one result per request, input order kept.

        Requests are grouped by source and answered off one shortest-path
        tree per distinct source, so a batch of R requests over S distinct
        sources costs S Dijkstra runs instead of R.  Unlike :meth:`plan`,
        an unreachable pair yields ``None`` in its slot rather than
        raising — a batch should not die on one bad request.  Endpoint
        safety is still enforced (unsafe endpoints raise, as they indicate
        a malformed request rather than a mere absence of a path).

        Every result is written through to the per-pair plan cache, so a
        later :meth:`plan`/:meth:`peek_plan` on any pair in the batch is a
        dict hit.
        """
        results: List[Optional[AdaptationPlan]] = [None] * len(pairs)
        by_source: Dict[Configuration, List[int]] = {}
        for i, (source, target) in enumerate(pairs):
            self._validate_endpoints(source, target)
            key = (source, target)
            if key in self._plan_cache:
                results[i] = self._plan_cache[key]
            else:
                by_source.setdefault(source, []).append(i)
        for source, indices in by_source.items():
            tree = self._spt_for(source)
            for i in indices:
                target = pairs[i][1]
                key = (source, target)
                if key in self._plan_cache:  # duplicate pair earlier in batch
                    results[i] = self._plan_cache[key]
                    continue
                path = tree.path_to(target)
                plan = None if path is None else self._plan_from_path(path)
                self._plan_cache[key] = plan
                results[i] = plan
        return results

    def plan_k(
        self, source: Configuration, target: Configuration, k: int
    ) -> List[AdaptationPlan]:
        """Up to *k* minimum-cost plans in non-decreasing cost order (Yen).

        Plan 2 is the paper's "second minimum adaptation path" used when a
        step fails and the manager re-routes.  Runs Yen over the CSR view
        (banned-set spur queries, no per-spur graph copies); cached per
        ``(source, target, k)`` for the same reason as :meth:`plan`.
        """
        self._validate_endpoints(source, target)
        key = (source, target, k)
        cached = self._plan_k_cache.get(key)
        if cached is None:
            paths = k_shortest_paths_csr(self.sag.csr, source, target, k)
            cached = tuple(self._plan_from_path(path) for path in paths)
            self._plan_k_cache[key] = cached
        return list(cached)

    def _plan_from_mask_path(
        self, source: Configuration, target: Configuration, path: Path
    ) -> AdaptationPlan:
        """Decode a mask-level search result back into an AdaptationPlan."""
        universe = self.universe
        configs: List[Configuration] = [source]
        for mask in path.nodes[1:-1]:
            configs.append(universe.from_mask(mask))
        if len(path.nodes) > 1:
            configs.append(target)
        steps = []
        for index, edge in enumerate(path.edges):
            steps.append(
                PlanStep(
                    index=index,
                    action=self.actions.get(edge.label),
                    source=configs[index],
                    target=configs[index + 1],
                )
            )
        return AdaptationPlan(
            source=source,
            target=target,
            steps=tuple(steps),
            total_cost=path.cost,
        )

    def lazy_plan(
        self,
        source: Configuration,
        target: Configuration,
        max_expansions: Optional[int] = None,
    ) -> AdaptationPlan:
        """The exact MAP by frontier search — no safe space, no SAG (§7).

        Point-query counterpart of :meth:`plan` for universes too large
        to enumerate: it explores the *implicit* SAG through
        :class:`~repro.core.sag.LazySAG` and returns a plan **identical
        — path, cost, and tie-break — to the eager CSR path** wherever
        both are defined, without ever materializing the safe space.
        Two phases over the shared successor generator:

        1. an A* probe with the admissible mask-distance heuristic
           ``ceil(|Δ| / max_flip) · min_cost`` establishes the optimal
           cost ``D`` (or proves the target unreachable) while the
           heuristic funnels expansion toward the target;
        2. a zero-heuristic replay with ``cost_bound=D`` re-runs the
           relaxation sequence exactly as the eager solver would —
           same successor order, same ``(cost, hops, counter)``
           tie-breaking — with the bound trimming the frontier beyond
           the goal (see :func:`repro.graphs.astar.lazy_astar` for why
           the bound cannot perturb the result).

        Phase 2 never re-pays phase 1's safety checks: both phases pull
        adjacency from the same per-mask cache.  Results are written
        through to the shared plan cache, so a later :meth:`plan` or
        :meth:`peek_plan` on the pair is a warm dict hit (and vice
        versa: a pair already planned eagerly returns here without any
        search).

        Raises:
            UnsafeConfigurationError: source or target violates invariants.
            NoSafePathError: target unreachable through safe
                configurations, or *max_expansions* exhausted (budget
                exhaustion is never cached as unreachable).
        """
        self._validate_endpoints(source, target)
        key = (source, target)
        if key in self._plan_cache:
            cached = self._plan_cache[key]
            if cached is None:
                raise NoSafePathError(
                    f"no safe adaptation path from {source.label()} "
                    f"to {target.label()}"
                )
            return cached
        universe = self.universe
        lazy = self.lazy_sag
        source_mask = universe.mask_of(source)
        target_mask = universe.mask_of(target)
        heuristic = self._mask_heuristic(target_mask)
        probe = lazy_astar(
            source_mask, target_mask, lazy.successors, heuristic, max_expansions
        )
        if probe is None:
            if max_expansions is not None:
                raise NoSafePathError(
                    f"no safe adaptation path from {source.label()} to "
                    f"{target.label()} within {max_expansions} expansions"
                )
            self._plan_cache[key] = None
            raise NoSafePathError(
                f"no safe adaptation path from {source.label()} "
                f"to {target.label()}"
            )
        exact = lazy_astar(
            source_mask,
            target_mask,
            lazy.successors,
            lambda mask: 0.0,
            max_expansions,
            cost_bound=probe.cost,
        )
        if exact is None:  # only reachable with an expansion budget set
            raise NoSafePathError(
                f"no safe adaptation path from {source.label()} to "
                f"{target.label()} within {max_expansions} expansions"
            )
        plan = self._plan_from_mask_path(source, target, exact)
        self._plan_cache[key] = plan
        return plan

    def _mask_heuristic(self, target_mask: int):
        """The admissible mask-distance heuristic toward *target_mask*:
        ``ceil(|Δ| / max_flip) · min_cost`` over the maskable actions."""
        maskable = [
            action
            for action, masked in zip(
                self.actions, self.actions.compiled_for(self.universe)
            )
            if masked is not None
        ]
        if maskable:
            max_flip = max(len(action.touched) for action in maskable)
            min_cost = min(action.cost for action in maskable)
        else:
            max_flip, min_cost = 1, 0.0

        def heuristic(mask: int) -> float:
            delta = (mask ^ target_mask).bit_count()
            if delta == 0:
                return 0.0
            return math.ceil(delta / max_flip) * min_cost

        return heuristic

    def _lazy_banned_shortest(
        self,
        source_mask: int,
        target_mask: int,
        banned_nodes,
        banned_arcs,
        heuristic,
        budget: Optional[int],
    ) -> Tuple[Optional[Path], bool, int]:
        """One exact banned-set shortest-path query on the implicit SAG.

        The two-phase :meth:`lazy_plan` technique under banned sets: an
        A* probe establishes the optimal cost ``D`` (or proves the
        target unreachable), then a zero-heuristic replay bounded by
        ``D`` reproduces the eager banned-set Dijkstra's relaxation
        sequence and tie-breaking exactly.  Returns
        ``(path, exhausted, expansions_spent)`` — ``path`` is ``None``
        when the target is unreachable *or* the budget ran out, with
        ``exhausted`` telling the two apart.
        """
        if source_mask == target_mask:
            return Path(nodes=(source_mask,), edges=(), cost=0.0), False, 0
        successors = self.lazy_sag.banned_view(banned_nodes, banned_arcs)
        stats: Dict[str, object] = {}
        probe = lazy_astar(
            source_mask, target_mask, successors, heuristic, budget, stats=stats
        )
        spent = int(stats.get("expansions", 0))
        if probe is None:
            return None, bool(stats.get("exhausted", False)), spent
        remaining = None if budget is None else max(0, budget - spent)
        stats = {}
        exact = lazy_astar(
            source_mask,
            target_mask,
            successors,
            lambda mask: 0.0,
            remaining,
            cost_bound=probe.cost,
            stats=stats,
        )
        spent += int(stats.get("expansions", 0))
        if exact is None:  # only reachable with an expansion budget set
            return None, True, spent
        return exact, False, spent

    def lazy_plan_k(
        self,
        source: Configuration,
        target: Configuration,
        k: int,
        max_expansions: Optional[int] = None,
    ) -> Tuple[List[AdaptationPlan], bool]:
        """Up to *k* minimum-cost plans by frontier search — no SAG (§7).

        Yen's loopless enumeration run entirely over the
        :class:`~repro.core.sag.LazySAG` successor generator: the
        candidate loop, banned node/arc sets, dedup key, and
        ``(cost, insertion order)`` candidate ordering mirror
        :func:`repro.graphs.csr.k_shortest_paths_csr` exactly, and every
        spur query is the two-phase exact search of :meth:`lazy_plan` —
        so the returned plans are **identical (paths, costs, and order)
        to** :meth:`plan_k` wherever both are defined, without ever
        enumerating the safe space.

        Returns ``(plans, complete)``: *complete* is ``False`` when the
        shared *max_expansions* budget ran out before the enumeration
        could finish — the plans returned so far are still the true
        best ones, there may just be more.  Used by
        :func:`repro.ltl.paths.verify_paths` for budget-bounded
        tri-state verdicts above the enumeration cap.
        """
        self._validate_endpoints(source, target)
        if k <= 0:
            return [], True
        universe = self.universe
        source_mask = universe.mask_of(source)
        target_mask = universe.mask_of(target)
        heuristic = self._mask_heuristic(target_mask)
        remaining = max_expansions
        first, exhausted, spent = self._lazy_banned_shortest(
            source_mask, target_mask, frozenset(), frozenset(),
            heuristic, remaining,
        )
        if remaining is not None:
            remaining = max(0, remaining - spent)
        if first is None:
            if not exhausted:
                self._plan_cache.setdefault((source, target), None)
            return [], not exhausted
        found: List[Path] = [first]
        seen = {(first.nodes, first.labels)}
        candidates: List[Tuple[float, int, Path]] = []
        order = 0
        complete = True
        while len(found) < k and complete:
            prev = found[-1]
            for i in range(len(prev.edges)):
                spur_mask = prev.nodes[i]
                root_edges = prev.edges[:i]
                root_cost = sum(edge.weight for edge in root_edges)
                banned_arcs = set()
                for path in found:
                    if (
                        path.nodes[: i + 1] == prev.nodes[: i + 1]
                        and len(path.edges) > i
                    ):
                        banned_arcs.add((path.nodes[i], path.edges[i].label))
                banned_nodes = set(prev.nodes[:i])
                if spur_mask in banned_nodes or target_mask in banned_nodes:
                    continue
                spur, exhausted, spent = self._lazy_banned_shortest(
                    spur_mask, target_mask, banned_nodes, banned_arcs,
                    heuristic, remaining,
                )
                if remaining is not None:
                    remaining = max(0, remaining - spent)
                if spur is None:
                    if exhausted:
                        complete = False
                        break
                    continue
                total = Path(
                    nodes=prev.nodes[:i] + spur.nodes,
                    edges=root_edges + spur.edges,
                    cost=root_cost + spur.cost,
                )
                key = (total.nodes, total.labels)
                if key not in seen:
                    seen.add(key)
                    candidates.append((total.cost, order, total))
                    order += 1
            if not complete or not candidates:
                break
            candidates.sort(key=lambda item: (item[0], item[1]))
            _, _, best = candidates.pop(0)
            found.append(best)
        plans = [
            self._plan_from_mask_path(source, target, path) for path in found
        ]
        # write the optimal plan through to the shared pair cache (it is
        # exact regardless of whether the enumeration finished)
        self._plan_cache.setdefault((source, target), plans[0])
        return plans, complete

    def plan_lazy(
        self,
        source: Configuration,
        target: Configuration,
        max_expansions: Optional[int] = None,
    ) -> AdaptationPlan:
        """MAP by A* partial exploration — never materializes the SAG (§7).

        Expands safe configurations on demand from the action library; the
        admissible heuristic is ``ceil(|Δ| / max_flip) * min_cost`` where Δ
        is the symmetric difference to the target, ``max_flip`` the largest
        number of components any single action changes, and ``min_cost``
        the cheapest action cost.
        """
        self._validate_endpoints(source, target)
        actions = tuple(self.actions)
        if not actions:
            if source == target:
                return AdaptationPlan(source, target, (), 0.0)
            raise NoSafePathError("no adaptive actions available")
        max_flip = max(len(a.touched) for a in actions)
        min_cost = min(a.cost for a in actions)
        masked = self.actions.compiled_for(self.universe)
        if all(m is not None for m in masked):
            return self._plan_lazy_masked(
                source, target, actions, masked, max_flip, min_cost, max_expansions
            )

        # Some action touches components outside the universe: such an
        # action can route through configurations that have no bit
        # encoding, so the search stays on the frozenset representation.
        def heuristic(config: Configuration) -> float:
            delta = len(config.symmetric_difference(target))
            if delta == 0:
                return 0.0
            return math.ceil(delta / max_flip) * min_cost

        def successors(config: Configuration):
            for action in actions:
                if action.is_applicable(config):
                    result = action.apply(config)
                    if self.space.is_safe(result):
                        yield action.action_id, action.cost, result

        path = lazy_astar(source, target, successors, heuristic, max_expansions)
        if path is None:
            raise NoSafePathError(
                f"no safe adaptation path from {source.label()} to {target.label()}"
            )
        return self._plan_from_path(path)

    def _plan_lazy_masked(
        self,
        source: Configuration,
        target: Configuration,
        actions: Tuple[AdaptiveAction, ...],
        masked: Sequence,
        max_flip: int,
        min_cost: float,
        max_expansions: Optional[int],
    ) -> AdaptationPlan:
        """Lazy A* over integer masks — the bitmask fast path.

        Node identity, successor order, and heap tie-breaking are
        bijective with the frozenset search, so the returned plan is
        identical; only the per-expansion cost drops from set algebra to
        a few int ops against the shared safety memo.
        """
        universe = self.universe
        source_mask = universe.mask_of(source)
        target_mask = universe.mask_of(target)
        are_safe_masks = self.space.are_safe_masks
        pairs = tuple(zip(actions, masked))

        def heuristic(mask: int) -> float:
            delta = (mask ^ target_mask).bit_count()
            if delta == 0:
                return 0.0
            return math.ceil(delta / max_flip) * min_cost

        def successors(mask: int):
            # applicability first, then one batched safety query per
            # expansion — verdicts and yield order match the pointwise
            # loop exactly
            candidates = []
            for action, m in pairs:
                required = m.required
                if (mask & required) == required and not (mask & m.forbidden):
                    result = (mask & ~m.clear) | m.set_bits
                    candidates.append((action.action_id, action.cost, result))
            for candidate, safe in zip(
                candidates,
                are_safe_masks([candidate[2] for candidate in candidates]),
            ):
                if safe:
                    yield candidate

        path = lazy_astar(source_mask, target_mask, successors, heuristic, max_expansions)
        if path is None:
            raise NoSafePathError(
                f"no safe adaptation path from {source.label()} to {target.label()}"
            )
        return self._plan_from_mask_path(source, target, path)

    def plan_collaborative(
        self, source: Configuration, target: Configuration
    ) -> AdaptationPlan:
        """Plan per collaborative set and concatenate (§7 decomposition).

        Each collaborative set is planned in its own sub-universe with the
        invariants and actions that fall inside it, using lazy A*; the
        per-set plans are then replayed in order against the global
        configuration.  Exact when the decomposition is valid (invariants
        and actions never span sets — guaranteed by construction).
        """
        self._validate_endpoints(source, target)
        groups = collaborative_sets(
            self.universe, self.invariants, self.actions,
            conflicts=self.conflicts,
        )
        current = source
        steps: List[PlanStep] = []
        total = 0.0
        for group in groups:
            group_source = Configuration(source.members & group)
            group_target = Configuration(target.members & group)
            if group_source == group_target:
                continue
            sub_universe = ComponentUniverse(
                [self.universe.component(name)
                 for name in self.universe.order if name in group]
            )
            sub_planner = AdaptationPlanner(
                sub_universe,
                project_invariants(self.invariants, group),
                self.actions.restricted_to(group),
            )
            sub_plan = sub_planner.plan_lazy(group_source, group_target)
            for step in sub_plan.steps:
                next_config = step.action.apply(current)
                steps.append(
                    PlanStep(
                        index=len(steps),
                        action=step.action,
                        source=current,
                        target=next_config,
                    )
                )
                current = next_config
                total += step.action.cost
        if current != target:
            raise NoSafePathError(
                "collaborative planning could not reach the target "
                f"(stopped at {current.label()})"
            )
        return AdaptationPlan(source=source, target=target, steps=tuple(steps), total_cost=total)
