"""Unit tests for the Feistel cipher substrate."""

import pytest

from repro.crypto.feistel import BLOCK_SIZE, FeistelCipher, pad, unpad


class TestPadding:
    def test_pad_always_adds(self):
        assert len(pad(b"")) == BLOCK_SIZE
        assert len(pad(b"12345678")) == 16

    def test_round_trip(self):
        for size in range(0, 3 * BLOCK_SIZE):
            data = bytes(range(size % 256))[:size]
            assert unpad(pad(data)) == data

    def test_unpad_rejects_bad_padding(self):
        with pytest.raises(ValueError):
            unpad(b"\x00" * BLOCK_SIZE)
        with pytest.raises(ValueError):
            unpad(b"1234567")  # wrong length
        with pytest.raises(ValueError):
            unpad(b"")


class TestBlocks:
    @pytest.fixture
    def cipher(self):
        return FeistelCipher(b"secret-key")

    def test_block_round_trip(self, cipher):
        block = b"ABCDEFGH"
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    def test_block_changes_ciphertext(self, cipher):
        assert cipher.encrypt_block(b"ABCDEFGH") != b"ABCDEFGH"

    def test_wrong_block_size_rejected(self, cipher):
        with pytest.raises(ValueError):
            cipher.encrypt_block(b"short")
        with pytest.raises(ValueError):
            cipher.decrypt_block(b"waytoolongforablock")

    def test_construction_validation(self):
        with pytest.raises(ValueError):
            FeistelCipher(b"")
        with pytest.raises(ValueError):
            FeistelCipher(b"k", rounds=1)


class TestMessages:
    @pytest.fixture
    def cipher(self):
        return FeistelCipher(bytes(range(16)))

    def test_round_trip_various_lengths(self, cipher):
        for size in (0, 1, 7, 8, 9, 63, 64, 100):
            data = bytes(i % 251 for i in range(size))
            assert cipher.decrypt(cipher.encrypt(data)) == data

    def test_deterministic_for_same_nonce(self, cipher):
        assert cipher.encrypt(b"hello", nonce=5) == cipher.encrypt(b"hello", nonce=5)

    def test_nonce_changes_ciphertext(self, cipher):
        assert cipher.encrypt(b"hello", nonce=1) != cipher.encrypt(b"hello", nonce=2)

    def test_nonce_required_for_decryption(self, cipher):
        ct = cipher.encrypt(b"hello", nonce=9)
        assert cipher.decrypt(ct, nonce=9) == b"hello"
        with pytest.raises(ValueError):
            # wrong nonce scrambles the first block and breaks padding (or
            # yields garbage that very rarely unpads — ValueError expected)
            assert cipher.decrypt(ct, nonce=8) != b"hello"

    def test_wrong_key_fails_or_garbles(self):
        a = FeistelCipher(b"key-a")
        b = FeistelCipher(b"key-b")
        ct = a.encrypt(b"payload-payload-payload")
        try:
            assert b.decrypt(ct) != b"payload-payload-payload"
        except ValueError:
            pass  # broken padding is the expected common case

    def test_cbc_hides_repeating_blocks(self, cipher):
        ct = cipher.encrypt(b"A" * 32)
        blocks = [ct[i : i + BLOCK_SIZE] for i in range(0, len(ct), BLOCK_SIZE)]
        assert len(set(blocks)) == len(blocks)

    def test_malformed_ciphertext_rejected(self, cipher):
        with pytest.raises(ValueError):
            cipher.decrypt(b"123")
        with pytest.raises(ValueError):
            cipher.decrypt(b"")
