"""Source spans: where a parsed entity came from in its manifest.

The development-time analyzer (:mod:`repro.lint`) reports diagnostics
against manifest files the way a compiler does — ``file:line:column`` —
so editors and CI annotators (SARIF) can point at the offending entity.
The manifest parser threads a :class:`Span` through every parsed entity;
everything else in the library treats spans as opaque provenance.

Lines and columns are 1-based; ``end_column`` points one past the last
character (the SARIF/LSP half-open convention).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class Span:
    """A half-open region of a source file (1-based lines and columns)."""

    line: int
    column: int = 1
    end_line: int = 0
    end_column: int = 0

    def __post_init__(self) -> None:
        if self.end_line <= 0:
            object.__setattr__(self, "end_line", self.line)
        if self.end_column <= 0:
            object.__setattr__(self, "end_column", self.column)

    @classmethod
    def of_fragment(cls, line_no: int, raw_line: str, fragment: str) -> "Span":
        """Span of *fragment* inside *raw_line* (falls back to the content).

        Used by the manifest scanner: given the raw source line and the
        matched entity text, locate the entity so diagnostics underline
        the name rather than the whole line.
        """
        if fragment:
            index = raw_line.find(fragment)
            if index >= 0:
                return cls(line_no, index + 1, line_no, index + 1 + len(fragment))
        return cls.of_content(line_no, raw_line)

    @classmethod
    def of_content(cls, line_no: int, raw_line: str) -> "Span":
        """Span of the non-blank content of *raw_line*."""
        stripped = raw_line.strip()
        if not stripped:
            return cls(line_no, 1, line_no, max(1, len(raw_line) + 1))
        start = raw_line.index(stripped[0]) + 1
        return cls(line_no, start, line_no, start + len(stripped))

    def shifted(self, columns: int) -> "Span":
        """A copy moved right by *columns* (expression-offset reporting)."""
        return Span(
            self.line, self.column + columns, self.end_line, self.end_column
        )

    def label(self, path: Optional[str] = None) -> str:
        """Render as ``path:line:column`` (path omitted when unknown)."""
        prefix = f"{path}:" if path else ""
        return f"{prefix}{self.line}:{self.column}"
