"""Video codec substrate: frames, packets, and stream filters.

Models the data plane of Figure 3: a web camera produces frames, a video
processor packetizes them, packets traverse filter chains (encryption,
FEC, compression) inside MetaSockets, and the client reassembles frames
for the player.  Payloads are checksummed at the source so any unsafe
adaptation that leaves a packet undecodable is *machine-detectable* as
corruption.
"""

from repro.codecs.packets import Packet, marker_packet
from repro.codecs.frames import (
    Frame,
    FrameResult,
    Packetizer,
    Reassembler,
    SyntheticCamera,
)
from repro.codecs.crypto_filters import DecoderFilter, EncoderFilter
from repro.codecs.fec import FecDecoderFilter, FecEncoderFilter
from repro.codecs.compress import CompressFilter, DecompressFilter

__all__ = [
    "Packet",
    "marker_packet",
    "Frame",
    "FrameResult",
    "SyntheticCamera",
    "Packetizer",
    "Reassembler",
    "EncoderFilter",
    "DecoderFilter",
    "FecEncoderFilter",
    "FecDecoderFilter",
    "CompressFilter",
    "DecompressFilter",
]
