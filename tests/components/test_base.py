"""Unit tests for the adaptive component model (refraction/transmutation)."""

import pytest

from repro.components.base import AdaptiveComponent, absorb, refraction, transmutation
from repro.errors import ModelError


@absorb
class Thermostat(AdaptiveComponent):
    def __init__(self, name):
        super().__init__(name)
        self.setpoint = 20.0

    @refraction
    def read_setpoint(self):
        return self.setpoint

    @transmutation
    def set_setpoint(self, value):
        self.setpoint = value


class UndecoratedChild(Thermostat):
    """Subclass without @absorb: registries must still be discovered."""

    @refraction
    def read_twice(self):
        return self.setpoint * 2


class TestDiscovery:
    def test_refraction_names(self):
        assert "read_setpoint" in Thermostat.refraction_names()
        assert "status" in Thermostat.refraction_names()  # inherited

    def test_transmutation_names(self):
        assert Thermostat.transmutation_names() == ("set_setpoint",)

    def test_roles_disjoint(self):
        assert "set_setpoint" not in Thermostat.refraction_names()
        assert "read_setpoint" not in Thermostat.transmutation_names()

    def test_undecorated_subclass_auto_absorbed(self):
        child = UndecoratedChild("t2")
        assert child.refract("read_twice") == 40.0
        assert "read_setpoint" in UndecoratedChild.refraction_names()


class TestInvocation:
    def test_refract_by_name(self):
        t = Thermostat("t")
        assert t.refract("read_setpoint") == 20.0

    def test_transmute_by_name(self):
        t = Thermostat("t")
        t.transmute("set_setpoint", value=25.0)
        assert t.setpoint == 25.0

    def test_unknown_refraction_lists_available(self):
        t = Thermostat("t")
        with pytest.raises(ModelError) as excinfo:
            t.refract("bogus")
        assert "read_setpoint" in str(excinfo.value)

    def test_unknown_transmutation_raises(self):
        t = Thermostat("t")
        with pytest.raises(ModelError):
            t.transmute("bogus")

    def test_refraction_cannot_be_transmuted(self):
        t = Thermostat("t")
        with pytest.raises(ModelError):
            t.transmute("read_setpoint")

    def test_default_status_refraction(self):
        t = Thermostat("t")
        status = t.refract("status")
        assert status == {"name": "t", "type": "Thermostat"}

    def test_empty_name_rejected(self):
        with pytest.raises(ModelError):
            Thermostat("")
