"""In-memory queue transport for the threaded runtime.

Each registered endpoint gets an unbounded queue; :meth:`send` routes an
envelope to the destination queue.  A :data:`STOP` sentinel shuts a host's
receive loop down cleanly.
"""

from __future__ import annotations

import queue
import threading
from typing import Dict, Optional

from repro.errors import RuntimeHostError
from repro.exec.substrate import STOP
from repro.protocol.messages import Envelope

__all__ = ["STOP", "InMemoryTransport"]


class InMemoryTransport:
    """Thread-safe endpoint registry + router."""

    def __init__(self) -> None:
        self._queues: Dict[str, "queue.Queue"] = {}
        self._lock = threading.Lock()
        self.messages_sent = 0

    def register(self, endpoint: str) -> "queue.Queue":
        with self._lock:
            if endpoint in self._queues:
                raise RuntimeHostError(f"endpoint {endpoint!r} already registered")
            q: "queue.Queue" = queue.Queue()
            self._queues[endpoint] = q
            return q

    def send(self, envelope: Envelope) -> None:
        with self._lock:
            q = self._queues.get(envelope.destination)
        if q is None:
            raise RuntimeHostError(f"no endpoint {envelope.destination!r}")
        self.messages_sent += 1
        q.put(envelope)

    def stop_endpoint(self, endpoint: str) -> None:
        """Deliver the STOP sentinel (receive loop exits after draining)."""
        with self._lock:
            q = self._queues.get(endpoint)
        if q is not None:
            q.put(STOP)
