"""Experiment T1 — the compiled property IR and path-quantified checking.

Two claims behind the `repro.ltl` refactor, recorded into
``BENCH_ltl_paths.json``:

* **compiled vs AST monitor** — evaluating one ptLTL formula over a long
  step stream through :class:`repro.ltl.CompiledProperty` (a couple of
  int ops per slot, state in one int) must be ≥ 5x the per-step AST walk
  of :class:`repro.ltl.PTLTLMonitor` (dict allocation plus a method call
  per subformula) — gated below;
* **path-check latency** — one :func:`repro.ltl.verify_paths` query as a
  function of the quantification width *k* (eager CSR Yen on the paper's
  7-component video system) and of universe size (lazy frontier Yen on
  replicated video universes, where the eager safe space is never
  materialized).

Timing is manual (``time.perf_counter`` best-of), so the assertions hold
under ``--benchmark-disable`` in CI's bench smoke; one
``benchmark.pedantic`` round registers each test with the plugin.
"""

from __future__ import annotations

import time
from pathlib import Path

from benchmarks.conftest import report
from repro.bench import format_table, replicated_video_system
from repro.core.planner import AdaptationPlanner
from repro.ltl import (
    CompiledProperty,
    PTLTLMonitor,
    parse_property,
    verify_paths,
)

LTL_PATHS_JSON = Path(__file__).with_name("BENCH_ltl_paths.json")

STREAM_STEPS = 4_000
BEST_OF = 3

#: every operator, shared subterms, and a configuration-level atom —
#: the shape manifest properties actually take
FORMULA_TEXT = (
    "historically({one_of(C0, C1, C2)})"
    " & (C3 -> once(C4))"
    " & since(!C5, C6)"
    " & (previously(C7) | historically(C8 -> once(C9)))"
)

NAMES = tuple(f"C{i}" for i in range(10))
BITS = {name: 1 << i for i, name in enumerate(NAMES)}


def _stream():
    """A deterministic pseudo-random step stream (no RNG dependency)."""
    state = 0x2545F4914F6CDD1D
    masks = []
    for _ in range(STREAM_STEPS):
        state = (state * 6364136223846793005 + 1442695040888963407) % (1 << 64)
        masks.append((state >> 32) & ((1 << len(NAMES)) - 1))
    events = [
        frozenset(name for name in NAMES if mask & BITS[name]) for mask in masks
    ]
    return masks, events


def _best_of(fn, rounds=BEST_OF):
    best = float("inf")
    result = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_compiled_monitor_speedup(benchmark):
    formula = parse_property(FORMULA_TEXT)
    compiled = CompiledProperty(formula, BITS)
    masks, events = _stream()

    ast_s, ast_values = _best_of(lambda: PTLTLMonitor(formula).run(events))
    compiled_s, compiled_values = _best_of(lambda: compiled.run(masks))
    benchmark.pedantic(lambda: compiled.run(masks), rounds=1, iterations=1)

    # identical verdicts at every step before any speed claim
    assert compiled_values == ast_values

    speedup = ast_s / compiled_s
    ast_rate = STREAM_STEPS / ast_s
    compiled_rate = STREAM_STEPS / compiled_s
    rows = [
        ("AST monitor (PTLTLMonitor)", f"{ast_rate:,.0f}", "1.0x"),
        ("compiled IR (CompiledProperty)", f"{compiled_rate:,.0f}",
         f"{speedup:.1f}x"),
    ]
    report(
        f"T1 — compiled vs AST property evaluation, {STREAM_STEPS} steps",
        format_table(["evaluator", "steps/sec", "speedup"], rows),
        data={
            "steps": STREAM_STEPS,
            "slots": len(compiled._program),
            "ast_steps_per_sec": round(ast_rate, 1),
            "compiled_steps_per_sec": round(compiled_rate, 1),
            "speedup": round(speedup, 2),
        },
        json_path=LTL_PATHS_JSON,
    )
    benchmark.extra_info["speedup"] = speedup
    assert speedup >= 5.0, (
        f"compiled evaluation only {speedup:.1f}x over the AST monitor"
    )


def test_path_check_latency(benchmark):
    data = {}
    rows = []

    # eager: latency vs quantification width on the paper's video system
    from repro.apps.video.system import (
        paper_source,
        paper_target,
        video_actions,
        video_invariants,
        video_universe,
    )

    universe = video_universe()
    planner = AdaptationPlanner(universe, video_invariants(), video_actions())
    source, target = paper_source(universe), paper_target(universe)
    phi = parse_property("historically({one_of(E1, E2)})")
    compiled = CompiledProperty(phi, universe.atom_bits)
    for k in (2, 8, 16):
        seconds, verdict = _best_of(
            lambda k=k: verify_paths(
                planner, source, target, phi, k=k, lazy=False, compiled=compiled
            )
        )
        assert verdict.holds is True and verdict.mode == "eager"
        rows.append((f"eager, video (7 comps), k={k}",
                     f"{seconds * 1e3:.2f}", str(verdict.paths_checked)))
        data[f"eager_video_k{k}_ms"] = round(seconds * 1e3, 3)

    # lazy: latency vs universe size, eager space never materialized
    last_query = None
    for groups in (2, 3, 4):
        system = replicated_video_system(groups)
        lazy_planner = AdaptationPlanner(
            system.universe, system.invariants, system.actions
        )
        lazy_phi = parse_property("historically({one_of(E1@g0, E2@g0)})")
        lazy_compiled = CompiledProperty(lazy_phi, system.universe.atom_bits)

        def query(planner=lazy_planner, phi=lazy_phi, compiled=lazy_compiled,
                  s=system.source, t=system.target):
            return verify_paths(
                planner, s, t, phi, k=2, lazy=True, compiled=compiled,
                max_expansions=60_000,
            )

        seconds, verdict = _best_of(query)
        assert verdict.holds is True and verdict.mode == "lazy"
        assert verdict.complete
        assert lazy_planner._sag is None
        assert lazy_planner.space._cache is None
        rows.append((f"lazy, video x{groups} ({len(system.universe)} comps), k=2",
                     f"{seconds * 1e3:.2f}", str(verdict.paths_checked)))
        data[f"lazy_{len(system.universe)}comps_k2_ms"] = round(seconds * 1e3, 3)
        last_query = query

    benchmark.pedantic(last_query, rounds=1, iterations=1)
    report(
        "T1 — verify_paths latency vs k and universe size",
        format_table(["query", "latency (ms)", "paths checked"], rows),
        data=data,
        json_path=LTL_PATHS_JSON,
    )
