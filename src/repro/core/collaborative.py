"""Collaborative-set decomposition (paper §7).

"To handle the complexity, we can divide the adaptive components of a
system into multiple collaborative sets where component collaborations
occur only within each set.  The component adaptation of each set can be
handled independently, thereby reducing the complexity."

Two components collaborate iff some invariant mentions both or some
adaptive action touches both.  Collaborative sets are the connected
components of that relation, computed with a union-find structure.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, List, Tuple

from repro.core.actions import ActionLibrary
from repro.core.invariants import InvariantSet
from repro.core.model import ComponentUniverse


class UnionFind:
    """Disjoint-set forest with path compression and union by size."""

    def __init__(self, items: Iterable[Hashable] = ()):
        self._parent: Dict[Hashable, Hashable] = {}
        self._size: Dict[Hashable, int] = {}
        for item in items:
            self.add(item)

    def add(self, item: Hashable) -> None:
        if item not in self._parent:
            self._parent[item] = item
            self._size[item] = 1

    def find(self, item: Hashable) -> Hashable:
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:  # path compression
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: Hashable, b: Hashable) -> None:
        self.add(a)
        self.add(b)
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]

    def groups(self) -> List[FrozenSet[Hashable]]:
        by_root: Dict[Hashable, List[Hashable]] = {}
        for item in self._parent:
            by_root.setdefault(self.find(item), []).append(item)
        return [frozenset(members) for members in by_root.values()]


def collaborative_sets(
    universe: ComponentUniverse,
    invariants: InvariantSet,
    actions: ActionLibrary,
    conflicts: Iterable[Tuple[str, str]] = (),
) -> Tuple[FrozenSet[str], ...]:
    """Partition the universe into collaborative sets.

    Returns the sets sorted by their smallest member (deterministic).
    Components mentioned by no invariant and no action form singleton sets.
    Declared ``[conflicts]`` action pairs must serialize, so the touched
    components of both actions in a pair are forced into one set.
    """
    uf = UnionFind(universe.names)
    for invariant in invariants:
        atoms = sorted(invariant.atoms() & universe.names)
        for other in atoms[1:]:
            uf.union(atoms[0], other)
    for action in actions:
        touched = sorted(action.touched & universe.names)
        for other in touched[1:]:
            uf.union(touched[0], other)
    for first, second in conflicts:
        joint: List[str] = []
        for action_id in (first, second):
            if action_id in actions:
                touched = actions.get(action_id).touched & universe.names
                joint.extend(sorted(touched))
        for other in joint[1:]:
            uf.union(joint[0], other)
    groups = uf.groups()
    groups.sort(key=lambda group: min(group))
    return tuple(groups)


def project_invariants(
    invariants: InvariantSet, component_set: FrozenSet[str]
) -> InvariantSet:
    """Invariants whose atoms fall entirely inside *component_set*.

    With a valid collaborative decomposition every invariant lands in
    exactly one set, so projecting onto all sets loses nothing.
    """
    return InvariantSet(
        inv for inv in invariants if inv.atoms() <= component_set
    )
