"""Unit tests for critical communication segments (§3, §3.2)."""

import pytest

from repro.ccs import CCSSpec, SegmentTracker
from repro.trace import CommRecord, Trace


@pytest.fixture
def spec():
    return CCSSpec.single("encode", "send", "receive", "decode", name="packet")


class TestCCSSpec:
    def test_requires_sequences(self):
        with pytest.raises(ValueError):
            CCSSpec([])
        with pytest.raises(ValueError):
            CCSSpec([()])

    def test_membership(self, spec):
        assert spec.is_complete(("encode", "send", "receive", "decode"))
        assert not spec.is_complete(("encode", "send"))
        assert not spec.is_complete(("send", "encode"))

    def test_prefixes(self, spec):
        assert spec.is_prefix(())
        assert spec.is_prefix(("encode",))
        assert spec.is_prefix(("encode", "send", "receive", "decode"))
        assert not spec.is_prefix(("send",))
        assert not spec.is_prefix(("encode", "decode"))

    def test_multiple_allowed_sequences(self):
        spec = CCSSpec([("a", "b"), ("a", "c", "d")])
        assert spec.is_complete(("a", "b"))
        assert spec.is_prefix(("a", "c"))
        assert not spec.is_complete(("a", "c"))

    def test_judge(self, spec):
        assert spec.judge(1, ("encode", "send", "receive", "decode")).complete
        verdict = spec.judge(2, ("encode", "send"))
        assert verdict.in_progress and not verdict.interrupted
        verdict = spec.judge(3, ("encode", "send", "receive", "corrupt"))
        assert verdict.interrupted


class TestJudgeTrace:
    def test_segments_judged_per_cid(self, spec):
        trace = Trace()
        for action in ("encode", "send", "receive", "decode"):
            trace.append(CommRecord(time=0.0, cid=1, action=action))
        for action in ("encode", "send"):
            trace.append(CommRecord(time=0.0, cid=2, action=action))
        for action in ("encode", "send", "receive", "corrupt"):
            trace.append(CommRecord(time=0.0, cid=3, action=action))
        verdicts = {v.cid: v for v in spec.judge_trace(trace)}
        assert verdicts[1].complete
        assert verdicts[2].in_progress
        assert verdicts[3].interrupted

    def test_open_cids(self, spec):
        trace = Trace()
        trace.append(CommRecord(time=0.0, cid=5, action="encode"))
        for action in ("encode", "send", "receive", "decode"):
            trace.append(CommRecord(time=0.0, cid=6, action=action))
        assert spec.open_cids(trace) == (5,)

    def test_interleaved_cids_separated(self, spec):
        trace = Trace()
        trace.append(CommRecord(time=0.0, cid=1, action="encode"))
        trace.append(CommRecord(time=0.1, cid=2, action="encode"))
        trace.append(CommRecord(time=0.2, cid=1, action="send"))
        trace.append(CommRecord(time=0.3, cid=2, action="send"))
        assert trace.comm_sequence(1) == ("encode", "send")
        assert trace.comm_sequence(2) == ("encode", "send")


class TestSegmentTracker:
    def test_quiescent_initially(self, spec):
        tracker = SegmentTracker(spec)
        assert tracker.quiescent

    def test_open_until_complete(self, spec):
        tracker = SegmentTracker(spec)
        tracker.observe(1, "encode")
        assert not tracker.quiescent
        assert tracker.open_count == 1
        tracker.observe(1, "send")
        tracker.observe(1, "receive")
        tracker.observe(1, "decode")
        assert tracker.quiescent
        assert tracker.completed == 1

    def test_violation_detected_and_closed(self, spec):
        tracker = SegmentTracker(spec)
        tracker.observe(1, "encode")
        tracker.observe(1, "decode")  # not a valid continuation
        assert tracker.quiescent  # violation closes the segment
        assert tracker.violations == ((1, ("encode", "decode")),)

    def test_multiple_segments_tracked(self, spec):
        tracker = SegmentTracker(spec)
        tracker.observe(1, "encode")
        tracker.observe(2, "encode")
        assert tracker.open_count == 2
