"""Dijkstra's shortest-path algorithm (paper §4.2, step 3).

The adaptation manager "appl[ies] Dijkstra's shortest path algorithm on the
SAG to find a feasible solution with minimum weight".  Ties between
equal-cost paths are broken deterministically by (cost, hop count,
insertion order), so a given SAG always yields the same Minimum Adaptation
Path run-to-run — important for reproducible planning.

Implementation note: nodes (for the planner: configurations) are interned
to dense integer indices, so every heap entry is a tuple of plain scalars
and the priority queue never falls back to comparing node objects.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Dict, Generic, Hashable, Iterable, List, Optional, Tuple, TypeVar

from repro.graphs.digraph import Digraph, Edge

N = TypeVar("N", bound=Hashable)
L = TypeVar("L", bound=Hashable)


@dataclass(frozen=True)
class Path(Generic[N, L]):
    """A directed path: nodes visited, the edges taken, and the total cost."""

    nodes: Tuple[N, ...]
    edges: Tuple[Edge[N, L], ...]
    cost: float

    def __post_init__(self):
        if len(self.nodes) != len(self.edges) + 1:
            raise ValueError("a path over k edges must have k+1 nodes")

    @property
    def labels(self) -> Tuple[L, ...]:
        """Edge labels along the path (for the planner: action ids)."""
        return tuple(edge.label for edge in self.edges)

    @property
    def source(self) -> N:
        return self.nodes[0]

    @property
    def target(self) -> N:
        return self.nodes[-1]

    def __len__(self) -> int:
        return len(self.edges)


def dijkstra(
    graph: Digraph[N, L],
    source: N,
    target: Optional[N] = None,
) -> Tuple[Dict[N, float], Dict[N, Edge[N, L]]]:
    """Single-source shortest distances and predecessor edges.

    Returns ``(dist, pred)`` where ``dist[n]`` is the minimal cost from
    *source* to ``n`` and ``pred[n]`` is the final edge of one such minimal
    path.  If *target* is given, the search stops once it is settled.
    """
    if source not in graph:
        raise KeyError(f"source node not in graph: {source!r}")
    # Nodes are interned to dense integer indices on first discovery, so
    # heap entries are pure scalar tuples — (cost, hops, tie, index) —
    # and the inner loop never hashes or compares node objects beyond one
    # dict lookup per discovered neighbour.
    index_of: Dict[N, int] = {source: 0}
    nodes: List[N] = [source]
    dist: List[float] = [0.0]
    hops: List[int] = [0]
    pred: List[Optional[Edge[N, L]]] = [None]
    settled: List[bool] = [False]
    adjacency = graph.adjacency
    counter = 0
    # heap entries: (cost, hop_count, tie, node index)
    heap: list = [(0.0, 0, counter, 0)]
    while heap:
        cost, nhops, _, idx = heapq.heappop(heap)
        if settled[idx]:
            continue
        settled[idx] = True
        node = nodes[idx]
        if target is not None and node == target:
            break
        for edge in adjacency(node):
            neighbour = edge.target
            nidx = index_of.get(neighbour)
            if nidx is None:
                nidx = len(nodes)
                index_of[neighbour] = nidx
                nodes.append(neighbour)
                dist.append(cost + edge.weight)
                hops.append(nhops + 1)
                pred.append(edge)
                settled.append(False)
                counter += 1
                heapq.heappush(heap, (dist[nidx], nhops + 1, counter, nidx))
                continue
            if settled[nidx]:
                continue
            candidate = cost + edge.weight
            candidate_hops = nhops + 1
            best = dist[nidx]
            if candidate < best or (
                candidate == best and candidate_hops < hops[nidx]
            ):
                dist[nidx] = candidate
                hops[nidx] = candidate_hops
                pred[nidx] = edge
                counter += 1
                heapq.heappush(heap, (candidate, candidate_hops, counter, nidx))
    dist_map: Dict[N, float] = {n: dist[i] for i, n in enumerate(nodes)}
    pred_map: Dict[N, Edge[N, L]] = {
        n: pred[i] for i, n in enumerate(nodes) if pred[i] is not None
    }
    return dist_map, pred_map


def _reconstruct(source: N, target: N, pred: Dict[N, Edge[N, L]], cost: float) -> Path[N, L]:
    edges = []
    node = target
    while node != source:
        edge = pred[node]
        edges.append(edge)
        node = edge.source
    edges.reverse()
    nodes = (source,) + tuple(edge.target for edge in edges)
    return Path(nodes=nodes, edges=tuple(edges), cost=cost)


def shortest_path(
    graph: Digraph[N, L],
    source: N,
    target: N,
) -> Optional[Path[N, L]]:
    """Minimum-cost path from *source* to *target*, or ``None`` if unreachable."""
    if source not in graph:
        raise KeyError(f"source node not in graph: {source!r}")
    if target not in graph:
        raise KeyError(f"target node not in graph: {target!r}")
    if source == target:
        return Path(nodes=(source,), edges=(), cost=0.0)
    dist, pred = dijkstra(graph, source, target)
    if target not in dist or target not in pred:
        return None
    return _reconstruct(source, target, pred, dist[target])


def reachable_from(graph: Digraph[N, L], source: N) -> Dict[N, float]:
    """All nodes reachable from *source* with their minimal costs."""
    dist, _ = dijkstra(graph, source)
    return dist
