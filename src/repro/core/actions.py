"""Adaptive actions: insert, remove, replace, and composites (paper §3.1).

An adaptive action is "a function from one configuration to another":
``adapt(config1) = config2``.  We represent it by its delta — the set of
components it removes and the set it adds — plus a fixed cost (the paper's
``A: T → VALUE``; §5.1 uses packet-delay milliseconds) and an identifier
(``A1`` … ``A17`` in Table 2).

The paper's ``R: T → PROGRAM`` mapping — each action's implementation code —
lives in :class:`ActionBindings`: per (action, process) pre-action,
in-action, and post-action callables, consumed by the realization phase.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import (
    ActionError,
    ActionNotApplicableError,
    DuplicateActionError,
)
from repro.core.model import ComponentUniverse, Configuration


class ActionKind(enum.Enum):
    """Classification of an action by its delta shape."""

    INSERT = "insert"
    REMOVE = "remove"
    REPLACE = "replace"
    COMPOSITE = "composite"


@dataclass(frozen=True)
class AdaptiveAction:
    """An adaptive action: a costed configuration delta.

    Attributes:
        action_id: unique identifier (``"A1"``, ``"A16"``...).
        removes: components taken out of the configuration.
        adds: components put into the configuration.
        cost: fixed cost (paper §4.1: blocking time, adaptation duration,
            packet delay, resource usage...).
        description: free-text, e.g. ``"replace E1 with E2"``.
    """

    action_id: str
    removes: FrozenSet[str]
    adds: FrozenSet[str]
    cost: float
    description: str = ""

    def __post_init__(self):
        if not self.action_id:
            raise ActionError("action_id must be non-empty")
        if not self.removes and not self.adds:
            raise ActionError(f"{self.action_id}: empty delta (no-op action)")
        if self.removes & self.adds:
            both = sorted(self.removes & self.adds)
            raise ActionError(f"{self.action_id}: components both removed and added: {both}")
        if self.cost < 0:
            raise ActionError(f"{self.action_id}: negative cost {self.cost}")
        object.__setattr__(self, "removes", frozenset(self.removes))
        object.__setattr__(self, "adds", frozenset(self.adds))

    # -- constructors ----------------------------------------------------------
    @classmethod
    def insert(cls, action_id: str, component: str, cost: float, description: str = "") -> "AdaptiveAction":
        return cls(action_id, frozenset(), frozenset((component,)), cost,
                   description or f"insert {component}")

    @classmethod
    def remove(cls, action_id: str, component: str, cost: float, description: str = "") -> "AdaptiveAction":
        return cls(action_id, frozenset((component,)), frozenset(), cost,
                   description or f"remove {component}")

    @classmethod
    def replace(cls, action_id: str, old: str, new: str, cost: float, description: str = "") -> "AdaptiveAction":
        if old == new:
            raise ActionError(f"{action_id}: replacing {old!r} with itself")
        return cls(action_id, frozenset((old,)), frozenset((new,)), cost,
                   description or f"replace {old} with {new}")

    @classmethod
    def compose(
        cls,
        action_id: str,
        parts: Sequence["AdaptiveAction"],
        cost: Optional[float] = None,
        description: str = "",
    ) -> "AdaptiveAction":
        """Simultaneous combination of several actions (Table 2's A6–A15).

        The parts must have pairwise disjoint deltas — a composite performs
        them as one atomic in-action, so no part may add what another
        removes.  Cost defaults to the sum of part costs, but Table 2 shows
        composites are usually costed independently (coordinated blocking
        makes pairs/triples far more expensive than the sum), so callers
        normally pass an explicit cost.
        """
        if not parts:
            raise ActionError(f"{action_id}: composite of zero actions")
        removes: FrozenSet[str] = frozenset()
        adds: FrozenSet[str] = frozenset()
        for part in parts:
            if part.removes & removes or part.adds & adds:
                raise ActionError(
                    f"{action_id}: overlapping deltas in composite parts"
                )
            removes |= part.removes
            adds |= part.adds
        if removes & adds:
            raise ActionError(
                f"{action_id}: composite delta removes and adds {sorted(removes & adds)}"
            )
        if cost is None:
            cost = sum(part.cost for part in parts)
        if not description:
            description = " and ".join(part.action_id for part in parts)
        return cls(action_id, removes, adds, cost, description)

    # -- semantics ----------------------------------------------------------
    @property
    def kind(self) -> ActionKind:
        if len(self.removes) + len(self.adds) > 2:
            return ActionKind.COMPOSITE
        if self.removes and self.adds:
            return ActionKind.REPLACE
        if self.adds:
            return ActionKind.INSERT
        return ActionKind.REMOVE

    @property
    def touched(self) -> FrozenSet[str]:
        """All components this action manipulates."""
        return self.removes | self.adds

    def is_applicable(self, config: Configuration) -> bool:
        """True iff the delta is well-defined on *config*."""
        return self.removes <= config.members and not (self.adds & config.members)

    def apply(self, config: Configuration) -> Configuration:
        """The paper's ``adapt(config1) = config2``."""
        if not self.is_applicable(config):
            raise ActionNotApplicableError(
                f"{self.action_id} not applicable to {config.label()}: "
                f"removes={sorted(self.removes)} adds={sorted(self.adds)}"
            )
        return config.apply_delta(self.removes, self.adds)

    def inverse(self, action_id: Optional[str] = None) -> "AdaptiveAction":
        """The undo action (used by rollback): swap removes and adds."""
        return AdaptiveAction(
            action_id or f"undo({self.action_id})",
            removes=self.adds,
            adds=self.removes,
            cost=self.cost,
            description=f"rollback of {self.action_id}",
        )

    def participants(self, universe: ComponentUniverse) -> FrozenSet[str]:
        """Processes that must take part in this action's realization."""
        return universe.processes_of(self.touched)

    def operation_text(self) -> str:
        """Render the delta in Table 2's operation notation.

        ``E1 → E2`` for replacements, ``−D4`` / ``+D5`` for remove/insert,
        ``(D1, E1) → (D2, E2)`` for composites.
        """
        removes = ", ".join(sorted(self.removes))
        adds = ", ".join(sorted(self.adds))
        if self.removes and self.adds:
            if len(self.removes) == 1 and len(self.adds) == 1:
                return f"{removes} -> {adds}"
            return f"({removes}) -> ({adds})"
        if self.adds:
            return f"+{adds}"
        return f"-{removes}"


class MaskedAction:
    """An adaptive action pre-compiled against a universe's bit encoding.

    Four masks make applicability and application O(1) integer ops in the
    O(|V|·|A|) SAG-build loop and in A* successor expansion:

    * ``required`` — bits that must be present (the removed components);
    * ``forbidden`` — bits that must be absent (the added components);
    * ``clear`` — bits switched off by :meth:`apply_mask`;
    * ``set_bits`` — bits switched on by :meth:`apply_mask`.

    The set-based :meth:`AdaptiveAction.is_applicable`/:meth:`~AdaptiveAction.apply`
    stay the semantic source of truth; the property tests assert agreement
    over every configuration of the universe.
    """

    __slots__ = ("action", "required", "forbidden", "clear", "set_bits")

    def __init__(self, action: AdaptiveAction, bits) -> None:
        required = 0
        for name in action.removes:
            required |= bits[name]
        forbidden = 0
        for name in action.adds:
            forbidden |= bits[name]
        self.action = action
        self.required = required
        self.forbidden = forbidden
        self.clear = required
        self.set_bits = forbidden

    def is_applicable_mask(self, mask: int) -> bool:
        """Mask form of :meth:`AdaptiveAction.is_applicable`."""
        return (mask & self.required) == self.required and not (
            mask & self.forbidden
        )

    def apply_mask(self, mask: int) -> int:
        """Mask form of :meth:`AdaptiveAction.apply` (caller checks applicability)."""
        return (mask & ~self.clear) | self.set_bits

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"MaskedAction({self.action.action_id!r})"


class ActionLibrary:
    """The set *T* of available adaptive actions, indexed by id."""

    def __init__(self, actions: Iterable[AdaptiveAction] = ()):
        self._actions: Dict[str, AdaptiveAction] = {}
        self._masked_cache: Dict[Tuple[str, ...], Tuple[Optional[MaskedAction], ...]] = {}
        for action in actions:
            self.add(action)

    def add(self, action: AdaptiveAction) -> None:
        if action.action_id in self._actions:
            raise DuplicateActionError(f"duplicate action id {action.action_id!r}")
        self._actions[action.action_id] = action
        self._masked_cache.clear()

    def compiled_for(
        self, universe: ComponentUniverse
    ) -> Tuple[Optional[MaskedAction], ...]:
        """Per-action masks for *universe*, aligned with iteration order.

        Entries are ``None`` for actions touching components outside the
        universe — those have no bit encoding, and consumers fall back to
        the set-based delta for them (they can never connect two universe
        configurations, so the SAG build skips them outright).

        Cached per bit encoding (i.e. per universe component order) and
        invalidated when the library grows.
        """
        key = universe.order
        cached = self._masked_cache.get(key)
        if cached is None:
            bits = universe.atom_bits
            cached = tuple(
                MaskedAction(action, bits) if action.touched <= universe.names else None
                for action in self._actions.values()
            )
            self._masked_cache[key] = cached
        return cached

    def __iter__(self) -> Iterator[AdaptiveAction]:
        """Iterate in action-id declaration order (deterministic)."""
        return iter(self._actions.values())

    def __len__(self) -> int:
        return len(self._actions)

    def __contains__(self, action_id: str) -> bool:
        return action_id in self._actions

    def get(self, action_id: str) -> AdaptiveAction:
        try:
            return self._actions[action_id]
        except KeyError:
            raise ActionError(f"unknown action {action_id!r}") from None

    def ids(self) -> Tuple[str, ...]:
        return tuple(self._actions)

    def applicable_to(self, config: Configuration) -> Tuple[AdaptiveAction, ...]:
        """All actions whose delta is defined on *config*."""
        return tuple(a for a in self._actions.values() if a.is_applicable(config))

    def total_cost(self, action_ids: Iterable[str]) -> float:
        return sum(self.get(a).cost for a in action_ids)

    def restricted_to(self, components: FrozenSet[str]) -> "ActionLibrary":
        """Sub-library touching only *components* (collaborative sets, §7)."""
        return ActionLibrary(
            a for a in self._actions.values() if a.touched <= components
        )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"ActionLibrary({list(self._actions)!r})"


def generate_composites(
    base: ActionLibrary,
    cost_fn: Callable[[Sequence[AdaptiveAction]], float],
    max_parts: int = 2,
    id_fn: Optional[Callable[[Sequence[AdaptiveAction]], str]] = None,
) -> ActionLibrary:
    """Extend a library with all valid simultaneous combinations.

    Table 2's composites (A6–A15) are exactly the pairwise/triple
    combinations of the base replacements with their own coordinated
    costs.  This helper automates that construction for other systems:
    every subset of up to *max_parts* base actions with pairwise disjoint
    deltas becomes a composite, costed by *cost_fn* (the paper's model:
    coordinated blocking makes composites far costlier than the sum).

    Returns a new library containing the base actions plus the generated
    composites; the base library is not modified.
    """
    from itertools import combinations

    if max_parts < 2:
        raise ActionError("max_parts must be at least 2")
    id_fn = id_fn or (lambda parts: "+".join(p.action_id for p in parts))
    out = ActionLibrary(base)
    base_actions = list(base)
    for size in range(2, max_parts + 1):
        for parts in combinations(base_actions, size):
            touched: FrozenSet[str] = frozenset()
            overlap = False
            for part in parts:
                if part.touched & touched:
                    overlap = True
                    break
                touched |= part.touched
            if overlap:
                continue
            composite = AdaptiveAction.compose(
                id_fn(parts), parts, cost=cost_fn(parts)
            )
            out.add(composite)
    return out


# -- runtime bindings (the paper's R: T -> PROGRAM) ----------------------------

# A local adaptive action is divided into pre-action, in-action and
# post-action (paper §3.1).  Each is an arbitrary callable taking the hosting
# process's component runtime; the realization layer invokes them at the
# protocol-mandated points.
LocalCallable = Callable[..., None]


@dataclass
class LocalActionBinding:
    """Implementation of one action on one process."""

    pre_action: Optional[LocalCallable] = None
    in_action: Optional[LocalCallable] = None
    post_action: Optional[LocalCallable] = None


class ActionBindings:
    """Registry mapping (action id, process id) to implementation code."""

    def __init__(self) -> None:
        self._bindings: Dict[Tuple[str, str], LocalActionBinding] = {}

    def bind(
        self,
        action_id: str,
        process: str,
        *,
        pre_action: Optional[LocalCallable] = None,
        in_action: Optional[LocalCallable] = None,
        post_action: Optional[LocalCallable] = None,
    ) -> None:
        self._bindings[(action_id, process)] = LocalActionBinding(
            pre_action=pre_action, in_action=in_action, post_action=post_action
        )

    def lookup(self, action_id: str, process: str) -> LocalActionBinding:
        """Binding for (action, process); an empty binding if none registered."""
        return self._bindings.get((action_id, process), LocalActionBinding())

    def __len__(self) -> int:
        return len(self._bindings)
