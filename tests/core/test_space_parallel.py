"""Parallel safe-space enumeration: identical results, merged memos."""

import warnings

import pytest
from hypothesis import given, settings, strategies as st

import repro.core.space as space_mod
from repro.bench.workloads import (
    enumeration_stress_system,
    random_system,
    replicated_video_system,
)
from repro.core.space import MIN_PARALLEL_COMPONENTS, SafeConfigurationSpace


def test_parallel_equals_serial_on_replicated_video():
    system = replicated_video_system(2)  # 14 components
    assert len(system.universe) >= MIN_PARALLEL_COMPONENTS
    serial = SafeConfigurationSpace(system.universe, system.invariants)
    parallel = SafeConfigurationSpace(system.universe, system.invariants, workers=2)
    assert parallel.enumerate() == serial.enumerate()
    assert parallel.enumerate_masks() == serial.enumerate_masks()


def test_parallel_merges_worker_memos():
    system = replicated_video_system(2)
    parallel = SafeConfigurationSpace(system.universe, system.invariants, workers=2)
    parallel.enumerate()
    memo = parallel.safe_memo
    assert memo
    reference = SafeConfigurationSpace(system.universe, system.invariants)
    for mask, verdict in memo.items():
        assert reference.is_safe_mask(mask) == verdict
    # the merged memo covers every safe configuration
    for mask in parallel.enumerate_masks():
        assert memo[mask] is True


def test_small_universe_stays_serial(universe, invariants):
    space = SafeConfigurationSpace(universe, invariants, workers=4)
    assert len(universe) < MIN_PARALLEL_COMPONENTS
    reference = SafeConfigurationSpace(universe, invariants)
    assert space.enumerate() == reference.enumerate()


@given(st.integers(min_value=0, max_value=500))
@settings(max_examples=10, deadline=None)
def test_parallel_equals_serial_on_random_systems(seed):
    system = random_system(
        seed, n_components=MIN_PARALLEL_COMPONENTS, n_invariants=4, n_actions=8
    )
    serial = SafeConfigurationSpace(system.universe, system.invariants)
    parallel = SafeConfigurationSpace(system.universe, system.invariants, workers=2)
    assert parallel.enumerate() == serial.enumerate()


# --- worker edge cases and enumeration stats --------------------------------


def _force_pool(monkeypatch, cpus=4):
    """Pretend the host has *cpus* cores and disable the auto-serial floor."""
    monkeypatch.setattr(space_mod, "_cpu_count", lambda: cpus)
    monkeypatch.setattr(space_mod, "MIN_PARALLEL_MASK_NODES", 1)


def test_workers_one_is_exactly_serial(monkeypatch):
    """workers=1 must take the serial path — no pool, no pickling."""
    _force_pool(monkeypatch)  # even with cores available

    def boom(*args, **kwargs):  # pragma: no cover - must never run
        raise AssertionError("workers=1 must not touch the process pool")

    import repro.parallel as parallel_mod

    monkeypatch.setattr(parallel_mod, "acquire_pool", boom)
    system = replicated_video_system(2)
    space = SafeConfigurationSpace(system.universe, system.invariants, workers=1)
    reference = SafeConfigurationSpace(system.universe, system.invariants)
    assert space.enumerate() == reference.enumerate()
    stats = space.last_enumeration_stats
    assert stats.mode == "serial"
    assert stats.reason == "serial: workers=1 is serial by contract"
    assert stats.effective_workers == 1


def test_workers_above_cpu_count_clamp_and_warn(monkeypatch):
    monkeypatch.setattr(space_mod, "_cpu_count", lambda: 1)
    system = replicated_video_system(2)
    space = SafeConfigurationSpace(system.universe, system.invariants, workers=8)
    with pytest.warns(RuntimeWarning, match="clamping"):
        space.enumerate()
    stats = space.last_enumeration_stats
    assert stats.mode == "serial"
    assert stats.requested_workers == 8
    assert stats.effective_workers == 1
    assert "clamped to 1" in stats.reason


def test_auto_serial_below_node_threshold(monkeypatch):
    monkeypatch.setattr(space_mod, "_cpu_count", lambda: 4)
    system = replicated_video_system(2)  # ~16k estimated nodes << 2^18
    space = SafeConfigurationSpace(system.universe, system.invariants, workers=4)
    space.enumerate()
    stats = space.last_enumeration_stats
    assert stats.mode == "serial"
    assert "below the parallel threshold" in stats.reason


def test_forced_pool_equals_serial_with_stats(monkeypatch):
    """Real pool run (clamp disabled): identical output, parallel stats."""
    import repro.parallel as par

    _force_pool(monkeypatch)
    par.clear_result_caches()  # a warm plane would short-circuit the pool
    system = enumeration_stress_system(14)
    serial = SafeConfigurationSpace(system.universe, system.invariants)
    parallel = SafeConfigurationSpace(
        system.universe, system.invariants, workers=4
    )
    assert parallel.enumerate() == serial.enumerate()
    stats = parallel.last_enumeration_stats
    assert stats.mode == "parallel"
    assert stats.chunks >= 1
    assert stats.partitions >= stats.chunks
    assert stats.safe_count == len(serial.enumerate())
    assert "chunks stolen" in stats.reason
    assert stats.transport in ("shm-plane", "pickled-masks")
    assert stats.total_ms > 0
    assert stats.total_ms >= stats.chunk_wait_ms
    # merged worker memo marks every safe mask
    for mask in parallel.enumerate_masks():
        assert parallel.safe_memo[mask] is True


def test_pool_warm_replay_from_plane_cache(monkeypatch):
    """Second enumeration of the same spec replays the cached plane."""
    import repro.parallel as par

    _force_pool(monkeypatch)
    par.clear_result_caches()
    system = enumeration_stress_system(14)
    cold = SafeConfigurationSpace(system.universe, system.invariants, workers=4)
    warm = SafeConfigurationSpace(system.universe, system.invariants, workers=4)
    cold_out = cold.enumerate()
    assert warm.enumerate() == cold_out
    cold_stats = cold.last_enumeration_stats
    warm_stats = warm.last_enumeration_stats
    # the *plane* was cold (real pool round-trip), even if the pool
    # itself survived from an earlier test in this process
    assert cold_stats.transport in ("shm-plane", "pickled-masks")
    assert warm_stats.mode == "parallel"
    assert warm_stats.pool_warm
    assert warm_stats.transport == "plane-cache"
    assert warm_stats.chunks == 0  # never touched the pool
    assert "plane cache" in warm_stats.reason
    # the replayed memo is as complete as the cold one
    assert dict(warm.safe_memo.items()) == dict(cold.safe_memo.items())


def test_serial_fallback_reason_recorded_without_workers():
    system = replicated_video_system(2)
    space = SafeConfigurationSpace(system.universe, system.invariants)
    space.enumerate()
    stats = space.last_enumeration_stats
    assert stats.reason == "serial: no workers requested"
    assert stats.total_ms > 0
    assert stats.transport == ""
    assert stats.pool_spinup_ms == 0.0 and stats.chunk_wait_ms == 0.0


@given(st.integers(min_value=0, max_value=100))
@settings(max_examples=8, deadline=None)
def test_forced_pool_equals_serial_on_random_systems(seed):
    """Property: the shm pool path is byte-identical to serial.

    Forces the real pool (clamp and node floor off) on random systems;
    the persistent pool makes repeated examples cheap — only the first
    example pays the spin-up.  Pins masks, configuration order, and the
    merged memo contents against the serial enumerator.
    """
    saved = (space_mod._cpu_count, space_mod.MIN_PARALLEL_MASK_NODES)
    space_mod._cpu_count = lambda: 4
    space_mod.MIN_PARALLEL_MASK_NODES = 1
    try:
        import repro.parallel as par

        par.clear_result_caches()
        system = random_system(
            seed, n_components=MIN_PARALLEL_COMPONENTS, n_invariants=4,
            n_actions=8,
        )
        serial = SafeConfigurationSpace(system.universe, system.invariants)
        parallel = SafeConfigurationSpace(
            system.universe, system.invariants, workers=2
        )
        assert parallel.enumerate() == serial.enumerate()
        assert parallel.enumerate_masks() == serial.enumerate_masks()
        stats = parallel.last_enumeration_stats
        # a system can legitimately prune every prefix partition at the
        # root (nothing to fan out) — any other serial fallback is a bug
        if stats.mode != "parallel":
            assert stats.reason == (
                "serial: every prefix partition root-pruned"
            ), stats.reason
        for mask in parallel.enumerate_masks():
            assert parallel.safe_memo[mask] is True
    finally:
        space_mod._cpu_count, space_mod.MIN_PARALLEL_MASK_NODES = saved


@given(st.integers(min_value=0, max_value=500))
@settings(max_examples=20, deadline=None)
def test_are_safe_masks_matches_pointwise(seed):
    """Batched verdicts == mapped is_safe_mask, on both space classes."""
    system = random_system(seed, n_components=8, n_invariants=4, n_actions=8)
    masks = [(seed * 2654435761 + i * 40503) % 256 for i in range(32)]
    space = SafeConfigurationSpace(system.universe, system.invariants)
    assert space.are_safe_masks(masks) == [space.is_safe_mask(m) for m in masks]
    lazy = space.lazy_view()
    assert lazy.are_safe_masks(masks) == [lazy.is_safe_mask(m) for m in masks]
    # repeat: second batch is answered from the memo, same verdicts
    assert space.are_safe_masks(masks) == [space.is_safe_mask(m) for m in masks]


def test_small_universe_fallback_reason(universe, invariants):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        space = SafeConfigurationSpace(universe, invariants, workers=4)
        space.enumerate()
    stats = space.last_enumeration_stats
    assert stats.mode == "serial"
    assert "parallelism" in stats.reason or "components" in stats.reason
