#!/usr/bin/env python
"""Closed-loop self-adaptation: loss spike → monitor → safe FEC insertion.

The full RAPIDware pipeline (§1's four tasks) in one run: the video system
streams over a link whose loss rate jumps mid-run; a monitoring rule
detects the degradation and the decision engine asks the adaptation
manager to insert the FEC triple (FE on the server, FH/FL reconstructors
on the clients) — safely, mid-stream, via the paper's protocol.  Delivery
rate recovers; when the link heals, a second rule removes the FEC again.

Run:  python examples/adaptive_fec.py
"""

from repro.apps.video.extended import extended_source
from repro.apps.video.scenario import VideoScenario, build_video_cluster
from repro.monitor import AdaptationRule, DecisionEngine, Threshold, WindowRateSensor
from repro.sim.net import BernoulliLoss


class SwitchableLoss(BernoulliLoss):
    """Bernoulli loss whose probability can be changed mid-simulation."""

    def __init__(self, probability=0.0):
        super().__init__(probability)
        self._p = probability

    def set(self, probability):
        object.__setattr__(self, "probability", probability)

    def drops(self, rng):
        return rng.random() < self.probability


def main() -> None:
    loss = SwitchableLoss(0.0)
    cluster = build_video_cluster(seed=4, extended=True, data_loss=loss)
    scenario = VideoScenario(cluster=cluster)
    handheld = scenario.client("handheld")
    server = scenario.server

    # -- monitoring: delivered/sent ratio over a sliding window ----------------
    # Compare deliveries against the sent counter from two samples ago so
    # in-flight packets (the 5 ms pipe) are not mistaken for losses.
    loss_sensor = WindowRateSensor("handheld-loss", window=40)
    sent_history = [0, 0, 0]
    last = {"sent_lagged": 0, "received": 0}

    def sample_loss() -> None:
        sent_history.append(server.packets_sent)
        sent_lagged = sent_history.pop(0)
        received = handheld.packets_received
        new_sent = sent_lagged - last["sent_lagged"]
        new_received = received - last["received"]
        for _ in range(max(0, new_sent - new_received)):
            loss_sensor.observe(True)
        for _ in range(min(new_received, new_sent)):
            loss_sensor.observe(False)
        last["sent_lagged"], last["received"] = sent_lagged, received
        cluster.sim.schedule(10.0, sample_loss)

    cluster.sim.schedule(10.0, sample_loss)

    # -- decision rules ------------------------------------------------------------
    engine = DecisionEngine(
        [
            AdaptationRule(
                name="insert-fec",
                sensor=loss_sensor,
                threshold=Threshold(trip=0.10, rearm=0.05),
                target=extended_source(with_fec=True),
                priority=10,
                cooldown=150.0,
            ),
            AdaptationRule(
                name="remove-fec",
                sensor=loss_sensor,
                threshold=Threshold(trip=0.02, direction="below", rearm=0.08),
                target=extended_source(with_fec=False),
                priority=1,
                cooldown=150.0,
            ),
        ]
    )
    engine.attach_to_bus(cluster)

    # -- the environment: loss spikes at t=150, heals at t=600 -----------------------
    cluster.sim.schedule(150.0, lambda: loss.set(0.18))
    cluster.sim.schedule(600.0, lambda: loss.set(0.0))

    cluster.sim.run(until=1000.0)

    print("decisions:")
    for decision in engine.decisions:
        if decision.accepted:
            print(f"  t={decision.time:6.1f}  {decision.rule} -> "
                  f"{decision.target.label()}")
    stats = scenario.stream_stats()
    print(f"\nfinal configuration: {cluster.manager.committed.label()}")
    print(f"packets: sent {stats['packets_sent']}, "
          f"handheld delivered {stats['handheld_received']}, "
          f"corrupt {stats['handheld_corrupt'] + stats['laptop_corrupt']}")
    report = scenario.safety_report()
    print(f"safety: {report.summary()}")
    report.raise_if_unsafe()
    fired = [d.rule for d in engine.decisions if d.accepted]
    assert "insert-fec" in fired, "the loss spike should have inserted FEC"
    assert "remove-fec" in fired, "the heal should have removed FEC"


if __name__ == "__main__":
    main()
