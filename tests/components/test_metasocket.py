"""Unit tests for send/recv MetaSockets."""

import pytest

from repro.components.filters import Filter
from repro.components.metasocket import RecvMetaSocket, SendMetaSocket


class Tag(Filter):
    def __init__(self, name, tag):
        super().__init__(name)
        self.tag = tag

    def process(self, packet):
        return [packet + self.tag]


class TestSendMetaSocket:
    def test_send_through_chain_to_transport(self):
        sent = []
        sock = SendMetaSocket("s", transport=sent.append, filters=[Tag("t", "!")])
        assert sock.send("hi") == 1
        assert sent == ["hi!"]
        assert sock.packets_sent == 1

    def test_blocked_socket_sends_nothing(self):
        sent = []
        sock = SendMetaSocket("s", transport=sent.append)
        sock.set_blocked(True)
        assert sock.send("hi") == 0
        assert sent == []

    def test_unblock_resumes(self):
        sent = []
        sock = SendMetaSocket("s", transport=sent.append)
        sock.set_blocked(True)
        sock.set_blocked(False)
        sock.send("x")
        assert sent == ["x"]

    def test_filter_transmutations(self):
        sent = []
        sock = SendMetaSocket("s", transport=sent.append)
        sock.insert_filter(Tag("a", "A"))
        sock.insert_filter(Tag("b", "B"))
        sock.send("x")
        sock.replace_filter("a", Tag("a", "Z"))
        sock.send("x")
        sock.remove_filter("b")
        sock.send("x")
        assert sent == ["xAB", "xZB", "xZ"]

    def test_status_refraction(self):
        sock = SendMetaSocket("s", transport=lambda p: None, filters=[Tag("t", "!")])
        sock.set_resetting(True)
        status = sock.refract("socket_status")
        assert status["filters"] == ("t",)
        assert status["resetting"] is True


class TestRecvMetaSocket:
    def test_receive_through_chain_to_deliver(self):
        got = []
        sock = RecvMetaSocket("r", deliver=got.append, filters=[Tag("t", "?")])
        sock.receive("msg")
        assert got == ["msg?"]
        assert sock.packets_delivered == 1

    def test_blocked_socket_buffers(self):
        got = []
        sock = RecvMetaSocket("r", deliver=got.append)
        sock.set_blocked(True)
        sock.receive("a")
        sock.receive("b")
        assert got == []
        assert sock.buffered == 2

    def test_unblock_flushes_in_order(self):
        got = []
        sock = RecvMetaSocket("r", deliver=got.append)
        sock.set_blocked(True)
        sock.receive("a")
        sock.receive("b")
        sock.set_blocked(False)
        assert got == ["a", "b"]
        assert sock.buffered == 0

    def test_buffered_packets_use_post_swap_chain(self):
        # The crucial adaptation property: packets arriving while blocked
        # are decoded by the chain installed by the in-action.
        got = []
        sock = RecvMetaSocket("r", deliver=got.append, filters=[Tag("old", "-old")])
        sock.set_blocked(True)
        sock.receive("pkt")
        sock.replace_filter("old", Tag("new", "-new"))
        sock.set_blocked(False)
        assert got == ["pkt-new"]

    def test_resetting_flag(self):
        sock = RecvMetaSocket("r", deliver=lambda p: None)
        sock.transmute("set_resetting", value=True)
        assert sock.resetting
