"""Experiment F4 — Figure 4: the Safe Adaptation Graph and the MAP.

Builds the SAG over Table 1's safe set, runs Dijkstra, and checks the
paper's results: 8 vertices, the drawn arcs present, and the Minimum
Adaptation Path of cost 50 ms whose action multiset is
{A1, A2, A4, A16, A17} (the paper's A2,A17,A1,A16,A4 ordering is one of
the cost-optimal interleavings and must be among the k-best).
"""

import pytest

from benchmarks.conftest import report
from repro.apps.video.system import paper_source, paper_target, video_planner
from repro.bench import format_table
from repro.core.planner import AdaptationPlanner
from repro.core.sag import SafeAdaptationGraph


def build_sag():
    planner = video_planner()
    return planner, SafeAdaptationGraph.build(planner.space, planner.actions)


def test_fig4_sag_construction(benchmark):
    planner, sag = benchmark(build_sag)
    assert sag.node_count == 8
    assert sag.edge_count == 16  # 14 drawn in Fig. 4 + valid A6, A8 arcs
    rows = [
        (planner.universe.to_bits(src), action, planner.universe.to_bits(dst))
        for src, action, dst in sag.edge_list()
    ]
    report(
        "Figure 4 — Safe Adaptation Graph arcs (regenerated)",
        format_table(["source", "action", "target"], sorted(rows)),
    )
    benchmark.extra_info["nodes"] = sag.node_count
    benchmark.extra_info["edges"] = sag.edge_count


def test_fig4_minimum_adaptation_path(benchmark):
    planner = video_planner()
    source, target = paper_source(), paper_target()
    plan = benchmark(lambda: planner.plan(source, target))
    assert plan.total_cost == 50.0
    assert sorted(plan.action_ids) == ["A1", "A16", "A17", "A2", "A4"]
    report(
        "Figure 4 — Minimum Adaptation Path (regenerated)",
        plan.describe(),
    )
    benchmark.extra_info["map_cost_ms"] = plan.total_cost


def test_fig4_paper_ordering_among_optima(benchmark):
    planner = benchmark.pedantic(video_planner, rounds=1, iterations=1)
    plans = planner.plan_k(paper_source(), paper_target(), 8)
    optimal = {p.action_ids for p in plans if p.total_cost == 50.0}
    assert ("A2", "A17", "A1", "A16", "A4") in optimal


def test_fig4_lazy_astar_partial_exploration(benchmark):
    """§7's proposed remedy: the same MAP without materializing the SAG."""
    planner = video_planner()
    source, target = paper_source(), paper_target()
    plan = benchmark(lambda: planner.plan_lazy(source, target))
    assert plan.total_cost == 50.0
