"""Recursive-descent parser for the dependency-expression surface syntax.

Grammar (loosest to tightest binding)::

    expr     := or_expr ( "->" expr )?          # right associative
    or_expr  := xor_expr ( "|" xor_expr )*
    xor_expr := and_expr ( "^" and_expr )*
    and_expr := unary ( "&" unary )*
    unary    := "!" unary | primary
    primary  := NAME | "true" | "false"
              | "one_of" "(" expr ("," expr)* ")"
              | "xor" "(" expr ("," expr)* ")"
              | "(" expr ")"

Word aliases: ``and``/``or``/``not``/``implies`` may be used instead of the
symbolic operators.  Chains of the same n-ary operator are flattened into a
single node, so ``A & B & C`` parses to ``And((A, B, C))``.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.errors import ParseError
from repro.expr.ast import And, Atom, Expr, FALSE, Implies, Not, OneOf, Or, TRUE, Xor

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<arrow>->|=>)"
    r"|(?P<op>[&|^!(),])"
    r"|(?P<name>[A-Za-z_][A-Za-z0-9_.\-@]*))"
)

_WORD_OPS = {
    "and": "&",
    "or": "|",
    "xor": "^",
    "not": "!",
    "implies": "->",
}


class _Token:
    __slots__ = ("kind", "text", "pos")

    def __init__(self, kind: str, text: str, pos: int):
        self.kind = kind
        self.text = text
        self.pos = pos

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"_Token({self.kind}, {self.text!r}, {self.pos})"


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            stripped = text[pos:].lstrip()
            if not stripped:
                break
            raise ParseError(
                f"unexpected character {stripped[0]!r}", text=text, position=pos
            )
        if match.lastgroup == "arrow":
            tokens.append(_Token("op", "->", match.start("arrow")))
        elif match.lastgroup == "op":
            tokens.append(_Token("op", match.group("op"), match.start("op")))
        else:
            name = match.group("name")
            start = match.start("name")
            lowered = name.lower()
            if lowered in _WORD_OPS and lowered not in ("xor",):
                tokens.append(_Token("op", _WORD_OPS[lowered], start))
            elif lowered in ("true", "false"):
                tokens.append(_Token("const", lowered, start))
            elif lowered in ("one_of", "xor") and _peek_is_lparen(text, match.end()):
                tokens.append(_Token("func", lowered, start))
            elif lowered == "xor":
                tokens.append(_Token("op", "^", start))
            else:
                tokens.append(_Token("name", name, start))
        pos = match.end()
    return tokens


def _peek_is_lparen(text: str, pos: int) -> bool:
    rest = text[pos:].lstrip()
    return rest.startswith("(")


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0

    # -- token helpers ------------------------------------------------------
    def _peek(self) -> Optional[_Token]:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of input", text=self.text, position=len(self.text))
        self.index += 1
        return token

    def _accept_op(self, op: str) -> bool:
        token = self._peek()
        if token is not None and token.kind == "op" and token.text == op:
            self.index += 1
            return True
        return False

    def _expect_op(self, op: str) -> None:
        token = self._peek()
        if token is None or token.kind != "op" or token.text != op:
            pos = token.pos if token is not None else len(self.text)
            found = token.text if token is not None else "end of input"
            raise ParseError(f"expected {op!r}, found {found!r}", text=self.text, position=pos)
        self.index += 1

    # -- grammar ------------------------------------------------------------
    def parse(self) -> Expr:
        expr = self._expr()
        token = self._peek()
        if token is not None:
            raise ParseError(
                f"trailing input {token.text!r}", text=self.text, position=token.pos
            )
        return expr

    def _expr(self) -> Expr:
        left = self._or_expr()
        if self._accept_op("->"):
            right = self._expr()  # right associative
            return Implies(left, right)
        return left

    def _or_expr(self) -> Expr:
        items = [self._xor_expr()]
        while self._accept_op("|"):
            items.append(self._xor_expr())
        if len(items) == 1:
            return items[0]
        return Or(items)

    def _xor_expr(self) -> Expr:
        items = [self._and_expr()]
        while self._accept_op("^"):
            items.append(self._and_expr())
        if len(items) == 1:
            return items[0]
        return Xor(items)

    def _and_expr(self) -> Expr:
        items = [self._unary()]
        while self._accept_op("&"):
            items.append(self._unary())
        if len(items) == 1:
            return items[0]
        return And(items)

    def _unary(self) -> Expr:
        if self._accept_op("!"):
            return Not(self._unary())
        return self._primary()

    def _primary(self) -> Expr:
        token = self._next()
        if token.kind == "const":
            return TRUE if token.text == "true" else FALSE
        if token.kind == "func":
            args = self._arg_list()
            if len(args) == 1:
                return args[0]
            if token.text == "one_of":
                return OneOf(args)
            return Xor(args)
        if token.kind == "name":
            return Atom(token.text)
        if token.kind == "op" and token.text == "(":
            inner = self._expr()
            self._expect_op(")")
            return inner
        raise ParseError(
            f"unexpected token {token.text!r}", text=self.text, position=token.pos
        )

    def _arg_list(self) -> List[Expr]:
        self._expect_op("(")
        args = [self._expr()]
        while self._accept_op(","):
            args.append(self._expr())
        self._expect_op(")")
        return args


def parse(text: str) -> Expr:
    """Parse a dependency-expression string into an :class:`Expr`.

    Raises:
        ParseError: on malformed input, with the failure position.
    """
    if not isinstance(text, str):
        raise TypeError(f"expected str, got {type(text).__name__}")
    if not text.strip():
        raise ParseError("empty expression", text=text, position=0)
    return _Parser(text).parse()
