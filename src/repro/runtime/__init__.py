"""Threaded live runtime: real hot swaps with the same protocol machines.

The discrete-event simulator (:mod:`repro.sim`) proves the protocol's
properties; this package shows the *same* sans-io manager/agent machines
driving a live, multi-threaded Python system — each process is a thread,
coordination messages travel over in-memory queues, timers are real, and
the recomposed structure is a running :class:`~repro.components.FilterChain`
processing items while the adaptation happens around it.

This package is the threaded backend of the shared execution substrate
(:mod:`repro.exec`): hosts and the system assembly only add thread/queue
wiring; all effect interpretation lives in the shared runtimes.
"""

from repro.runtime.transport import InMemoryTransport, STOP
from repro.runtime.host import LiveAgentHost, LiveApp
from repro.runtime.live import LiveAdaptationSystem, PipelineApp

__all__ = [
    "InMemoryTransport",
    "STOP",
    "LiveApp",
    "LiveAgentHost",
    "LiveAdaptationSystem",
    "PipelineApp",
]
