"""Mask-based action semantics ≡ set-based semantics.

``MaskedAction`` precompiles each adaptive action's delta against a
universe's bit encoding so the SAG build and A* expansion run on integer
ops.  These tests pin the mask path to the frozenset path across the
whole Table 2 action library (every configuration of the video universe)
and on randomized deltas.
"""

from hypothesis import given, settings, strategies as st

from repro.apps.video.system import video_actions, video_universe
from repro.core.actions import ActionLibrary, AdaptiveAction
from repro.core.model import ComponentUniverse

NAMES = ("A", "B", "C", "D", "E", "F")


class TestTable2Agreement:
    def test_masks_agree_on_every_configuration(self):
        universe = video_universe()
        actions = video_actions()
        masked = actions.compiled_for(universe)
        assert len(masked) == len(actions)
        for config in universe.all_configurations():
            mask = universe.mask_of(config)
            for action, m in zip(actions, masked):
                assert m.is_applicable_mask(mask) == action.is_applicable(config), (
                    action.action_id,
                    config.label(),
                )
                if action.is_applicable(config):
                    assert universe.from_mask(m.apply_mask(mask)) == action.apply(
                        config
                    )

    def test_mask_fields_reflect_delta(self):
        universe = video_universe()
        actions = video_actions()
        a1 = actions.get("A1")  # E1 -> E2
        (masked,) = [
            m for m, a in zip(actions.compiled_for(universe), actions) if a is a1
        ]
        assert masked.required == universe.bit_of("E1")
        assert masked.forbidden == universe.bit_of("E2")
        assert masked.clear == masked.required
        assert masked.set_bits == masked.forbidden

    def test_compiled_for_is_cached_and_invalidated(self):
        universe = video_universe()
        actions = video_actions()
        first = actions.compiled_for(universe)
        assert actions.compiled_for(universe) is first
        actions.add(AdaptiveAction.insert("AX", "D1", 5.0))
        second = actions.compiled_for(universe)
        assert second is not first
        assert len(second) == len(first) + 1

    def test_foreign_actions_compile_to_none(self):
        universe = video_universe()
        library = ActionLibrary(
            [
                AdaptiveAction.insert("IN", "D5", 1.0),
                AdaptiveAction.insert("OUT", "Z9", 1.0),
            ]
        )
        masked = library.compiled_for(universe)
        assert masked[0] is not None
        assert masked[1] is None


@st.composite
def _actions(draw):
    removes = draw(st.frozensets(st.sampled_from(NAMES), max_size=3))
    adds = draw(
        st.frozensets(
            st.sampled_from(sorted(set(NAMES) - removes)), max_size=3
        )
    )
    if not removes and not adds:
        adds = frozenset(("A",))
        removes = frozenset(("B",))
    return AdaptiveAction("R0", removes, adds, cost=1.0)


class TestRandomizedAgreement:
    @given(action=_actions(), members=st.frozensets(st.sampled_from(NAMES)))
    @settings(max_examples=300)
    def test_applicability_and_apply_agree(self, action, members):
        universe = ComponentUniverse.from_names(NAMES)
        config = universe.configuration(*members)
        mask = universe.mask_of(config)
        (masked,) = ActionLibrary([action]).compiled_for(universe)
        assert masked.is_applicable_mask(mask) == action.is_applicable(config)
        if action.is_applicable(config):
            assert universe.from_mask(masked.apply_mask(mask)) == action.apply(config)
