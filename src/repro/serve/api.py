"""Control-plane wire types: typed requests, results, and error envelopes.

Every operation the system exposes — spec registration, planning, batch
planning, path-quantified verification, static analysis, offline trace
checking, stats — is a **request dataclass** in, a **result dataclass**
(or :class:`ErrorEnvelope`) out.  The CLI and the HTTP adapter both
speak exactly these types through
:meth:`repro.serve.control.ControlPlane.dispatch`, which is what makes
their answers byte-identical: the JSON a ``repro plan --json`` prints is
:func:`to_json` of the same object the HTTP server writes on the wire.

Error envelopes replace raw exceptions at the boundary.  A dispatch
never lets a traceback escape; domain failures become one of the
:data:`ERROR_CODES` with a human-readable message (and sometimes a
``detail`` payload), so the wire contract can be golden-tested.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

# -- error envelopes ----------------------------------------------------------

#: the closed set of wire error codes (golden-tested; extend deliberately)
ERROR_CODES = (
    "bad-request",  # malformed/invalid request fields
    "bad-manifest",  # manifest text failed to parse
    "bad-property",  # inline property formula failed to parse
    "bad-trace",  # trace JSONL failed to decode
    "unknown-spec",  # digest not registered (or evicted)
    "unknown-configuration",  # source/target not resolvable in the spec
    "unknown-property",  # named [properties] entry absent
    "unsafe-configuration",  # endpoint outside the safe space
    "no-safe-path",  # planning answered: unreachable
    "not-found",  # referenced file absent (local dispatch only)
    "overloaded",  # admission control rejected the request
    "deadline-exceeded",  # per-request deadline elapsed
    "internal",  # unexpected failure (exception type + message, no traceback)
)


@dataclass(frozen=True)
class ErrorEnvelope:
    """A structured operation failure (never a raw traceback)."""

    code: str
    message: str
    detail: Optional[Dict[str, Any]] = None

    def __post_init__(self) -> None:
        if self.code not in ERROR_CODES:
            raise ValueError(f"unknown error code {self.code!r}")

    def payload(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {"code": self.code, "message": self.message}
        if self.detail is not None:
            doc["detail"] = self.detail
        return doc


# -- requests -----------------------------------------------------------------
#
# Requests that operate on a spec accept either ``spec`` (the digest of a
# previously registered spec) or ``manifest`` (inline manifest text,
# registered on use) — exactly one.


@dataclass(frozen=True)
class RegisterSpecRequest:
    """Upload a spec: the manifest text is the wire format."""

    manifest: str


@dataclass(frozen=True)
class EvictSpecRequest:
    """Drop a registered spec (and its warm caches)."""

    spec: str


@dataclass(frozen=True)
class PlanRequest:
    """One MAP request: source → target over a spec."""

    source: str
    target: str
    spec: Optional[str] = None
    manifest: Optional[str] = None
    #: also answer the k best alternates when > 1
    k: int = 1
    #: "auto" | "dijkstra" | "lazy" | "collaborative"
    method: str = "auto"


@dataclass(frozen=True)
class PlanBatchRequest:
    """Many MAP requests over one spec (NDJSON-streamable over HTTP)."""

    pairs: Tuple[Tuple[str, str], ...]
    spec: Optional[str] = None
    manifest: Optional[str] = None


@dataclass(frozen=True)
class VerifyPathsRequest:
    """Path-quantified ptLTL verification over the spec's SAG."""

    source: str
    target: str
    #: a [properties] name from the manifest...
    property_name: Optional[str] = None
    #: ...or an inline ptLTL formula
    formula: Optional[str] = None
    quantifier: str = "all"
    k: Optional[int] = None
    lazy: Optional[bool] = None
    max_expansions: Optional[int] = None
    spec: Optional[str] = None
    manifest: Optional[str] = None


@dataclass(frozen=True)
class LintRequest:
    """Static analysis over one or more manifest sources.

    ``sources`` is ``(path, text)`` pairs; *path* is provenance only (it
    labels diagnostics) and may be ``None`` for anonymous uploads.
    """

    sources: Tuple[Tuple[Optional[str], str], ...]
    format: str = "text"
    fail_on: str = "error"
    verbose: bool = False
    max_enum_components: Optional[int] = None
    workers: Optional[int] = None


@dataclass(frozen=True)
class TraceCheckRequest:
    """Offline safety (+ optional ptLTL) check of a persisted trace."""

    trace: Optional[str] = None  # trace JSONL text (the wire form)
    trace_path: Optional[str] = None  # or a local file (CLI dispatch)
    ltl: Optional[str] = None  # [properties] name to check alongside
    metrics: bool = False
    stream: bool = True
    spec: Optional[str] = None
    manifest: Optional[str] = None


@dataclass(frozen=True)
class StatsRequest:
    """Service counters + per-spec registry listing."""


Request = Union[
    RegisterSpecRequest,
    EvictSpecRequest,
    PlanRequest,
    PlanBatchRequest,
    VerifyPathsRequest,
    LintRequest,
    TraceCheckRequest,
    StatsRequest,
]


# -- results ------------------------------------------------------------------


@dataclass(frozen=True)
class PlanStepInfo:
    """One plan step, fully rendered (no live objects on the wire)."""

    index: int
    action: str
    description: str
    operation: str
    cost: float
    source: str
    target: str

    def payload(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "action": self.action,
            "description": self.description,
            "operation": self.operation,
            "cost": self.cost,
            "source": self.source,
            "target": self.target,
        }


@dataclass(frozen=True)
class PlanInfo:
    """A wire-rendered adaptation plan."""

    source: str
    target: str
    cost: float
    steps: Tuple[PlanStepInfo, ...]

    def payload(self) -> Dict[str, Any]:
        return {
            "source": self.source,
            "target": self.target,
            "cost": self.cost,
            "actions": [step.action for step in self.steps],
            "steps": [step.payload() for step in self.steps],
        }

    def describe(self) -> str:
        """Byte-identical to :meth:`repro.core.planner.AdaptationPlan.describe`."""
        lines = [
            f"plan {self.source} -> {self.target} "
            f"(cost {self.cost:g}, {len(self.steps)} steps)"
        ]
        for step in self.steps:
            lines.append(
                f"  {step.index + 1}. {step.action}: "
                f"{step.description or step.operation} "
                f"[cost {step.cost:g}]"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class PlanResult:
    kind = "plan"

    digest: str
    plan: PlanInfo
    #: the method that actually answered ("dijkstra" | "lazy" | "collaborative")
    method: str
    #: (action_ids, cost) per alternate, present when the request asked k > 1
    alternates: Tuple[Tuple[Tuple[str, ...], float], ...] = ()

    def payload(self) -> Dict[str, Any]:
        doc = {
            "digest": self.digest,
            "method": self.method,
            "plan": self.plan.payload(),
        }
        if self.alternates:
            doc["alternates"] = [
                {"actions": list(actions), "cost": cost}
                for actions, cost in self.alternates
            ]
        return doc


@dataclass(frozen=True)
class PlanBatchItem:
    source: str
    target: str
    reachable: bool
    actions: Tuple[str, ...] = ()
    cost: Optional[float] = None

    def payload(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "source": self.source,
            "target": self.target,
            "reachable": self.reachable,
        }
        if self.reachable:
            doc["actions"] = list(self.actions)
            doc["cost"] = self.cost
        return doc


@dataclass(frozen=True)
class PlanBatchResult:
    kind = "plan-batch"

    digest: str
    results: Tuple[PlanBatchItem, ...]

    @property
    def reachable(self) -> int:
        return sum(1 for item in self.results if item.reachable)

    def payload(self) -> Dict[str, Any]:
        return {
            "digest": self.digest,
            "results": [item.payload() for item in self.results],
            "summary": {
                "requested": len(self.results),
                "reachable": self.reachable,
            },
        }


@dataclass(frozen=True)
class VerifyPathsResult:
    kind = "verify-paths"

    digest: str
    property_name: Optional[str]
    formula: str
    quantifier: str
    k: int
    mode: str
    paths_checked: int
    complete: bool
    holds: Optional[bool]
    reason: str
    violation_index: Optional[int] = None
    counterexample: Optional[PlanInfo] = None
    witness: Optional[PlanInfo] = None

    def payload(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "digest": self.digest,
            "property": self.property_name,
            "formula": self.formula,
            "quantifier": self.quantifier,
            "k": self.k,
            "mode": self.mode,
            "paths_checked": self.paths_checked,
            "complete": self.complete,
            "holds": self.holds,
            "reason": self.reason,
        }
        if self.violation_index is not None:
            doc["violation_index"] = self.violation_index
        if self.counterexample is not None:
            doc["counterexample"] = self.counterexample.payload()
        if self.witness is not None:
            doc["witness"] = self.witness.payload()
        return doc


@dataclass(frozen=True)
class LintResult:
    kind = "lint"

    failed: bool
    format: str
    #: the report rendered in the requested format (text/json/sarif)
    rendered: str
    summary: Dict[str, int]
    #: the structured JSON report, format-independent
    report: Dict[str, Any]

    def payload(self) -> Dict[str, Any]:
        return {
            "failed": self.failed,
            "format": self.format,
            "rendered": self.rendered,
            "summary": dict(self.summary),
            "report": self.report,
        }


@dataclass(frozen=True)
class TraceViolationInfo:
    kind_label: str
    time: float
    detail: str

    def payload(self) -> Dict[str, Any]:
        return {"kind": self.kind_label, "time": self.time, "detail": self.detail}


@dataclass(frozen=True)
class TracePropertyInfo:
    name: str
    formula: str
    holds: bool
    commits: int
    #: set when violated: (commit index, time, triggering action/step, members)
    violation_commit: Optional[int] = None
    violation_time: Optional[float] = None
    violation_after: Optional[str] = None
    violation_members: Tuple[str, ...] = ()

    def payload(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "name": self.name,
            "formula": self.formula,
            "holds": self.holds,
            "commits": self.commits,
        }
        if not self.holds:
            doc["violation"] = {
                "commit": self.violation_commit,
                "time": self.violation_time,
                "after": self.violation_after,
                "members": list(self.violation_members),
            }
        return doc


@dataclass(frozen=True)
class TraceCheckResult:
    kind = "trace-check"

    digest: str
    records: int
    commits: int
    safety_ok: bool
    safety_summary: str
    violations: Tuple[TraceViolationInfo, ...] = ()
    #: named ``property_check`` (not ``property``) to keep the builtin
    #: usable in this class body; the wire key is still "property"
    property_check: Optional[TracePropertyInfo] = None
    metrics_summary: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.safety_ok and (
            self.property_check is None or self.property_check.holds
        )

    def payload(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "digest": self.digest,
            "records": self.records,
            "commits": self.commits,
            "safety": {
                "ok": self.safety_ok,
                "summary": self.safety_summary,
                "violations": [v.payload() for v in self.violations],
            },
            "ok": self.ok,
        }
        if self.property_check is not None:
            doc["property"] = self.property_check.payload()
        if self.metrics_summary is not None:
            doc["metrics"] = self.metrics_summary
        return doc


@dataclass(frozen=True)
class RegisterSpecResult:
    kind = "register-spec"

    digest: str
    components: int
    processes: int
    invariants: int
    actions: int
    configurations: Tuple[str, ...] = ()
    properties: Tuple[str, ...] = ()
    #: False when an equal spec was already registered (idempotent upload)
    created: bool = True

    def payload(self) -> Dict[str, Any]:
        return {
            "digest": self.digest,
            "components": self.components,
            "processes": self.processes,
            "invariants": self.invariants,
            "actions": self.actions,
            "configurations": list(self.configurations),
            "properties": list(self.properties),
            "created": self.created,
        }


@dataclass(frozen=True)
class EvictSpecResult:
    kind = "evict-spec"

    digest: str
    evicted: bool

    def payload(self) -> Dict[str, Any]:
        return {"digest": self.digest, "evicted": self.evicted}


@dataclass(frozen=True)
class StatsResult:
    kind = "stats"

    service: Dict[str, int]
    specs: Tuple[Dict[str, Any], ...] = ()
    #: filled in by the HTTP layer (in-flight, served, rejections, shard)
    server: Optional[Dict[str, Any]] = field(default=None, compare=False)
    #: fleet-wide counter sums across every forked worker (filled in by
    #: the HTTP layer from the shared-memory counter block; absent when
    #: the server runs a single process with no block)
    cluster: Optional[Dict[str, Any]] = field(default=None, compare=False)

    def payload(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "service": dict(self.service),
            "specs": [dict(spec) for spec in self.specs],
        }
        if self.server is not None:
            doc["server"] = dict(self.server)
        if self.cluster is not None:
            doc["cluster"] = dict(self.cluster)
        return doc


Result = Union[
    PlanResult,
    PlanBatchResult,
    VerifyPathsResult,
    LintResult,
    TraceCheckResult,
    RegisterSpecResult,
    EvictSpecResult,
    StatsResult,
]

Response = Union[Result, ErrorEnvelope]


# -- envelopes and serialization ----------------------------------------------


def envelope(response: Response) -> Dict[str, Any]:
    """The canonical JSON-ready form of any dispatch answer."""
    if isinstance(response, ErrorEnvelope):
        return {"ok": False, "error": response.payload()}
    return {"ok": True, "kind": response.kind, "result": response.payload()}


def to_json(response: Response) -> str:
    """Pretty, key-sorted JSON — what ``--json`` CLI modes print."""
    return json.dumps(envelope(response), indent=2, sort_keys=True)


def to_wire(response: Response) -> bytes:
    """Compact JSON bytes — what the HTTP adapter writes (same payload)."""
    return json.dumps(
        envelope(response), separators=(",", ":"), sort_keys=True
    ).encode("utf-8")


# -- JSON → request builders (used by the HTTP adapter) -----------------------


class RequestDecodeError(ValueError):
    """A JSON body did not decode into a valid request."""


def _take(
    payload: Dict[str, Any],
    allowed: Dict[str, type],
    required: Tuple[str, ...],
) -> Dict[str, Any]:
    if not isinstance(payload, dict):
        raise RequestDecodeError("request body must be a JSON object")
    unknown = set(payload) - set(allowed)
    if unknown:
        raise RequestDecodeError(f"unknown request field(s): {sorted(unknown)}")
    for name in required:
        if payload.get(name) is None:
            raise RequestDecodeError(f"missing required field {name!r}")
    out: Dict[str, Any] = {}
    for name, value in payload.items():
        if value is None:
            continue
        expected = allowed[name]
        if expected is float and isinstance(value, int):
            value = float(value)
        if expected is not object and not isinstance(value, expected):
            raise RequestDecodeError(
                f"field {name!r} must be {expected.__name__}"
            )
        out[name] = value
    return out


_SPEC_FIELDS: Dict[str, type] = {"spec": str, "manifest": str}


def plan_request_from_json(payload: Dict[str, Any]) -> PlanRequest:
    fields = _take(
        payload,
        {"source": str, "target": str, "k": int, "method": str, **_SPEC_FIELDS},
        required=("source", "target"),
    )
    return PlanRequest(**fields)


def plan_batch_request_from_json(payload: Dict[str, Any]) -> PlanBatchRequest:
    fields = _take(
        payload, {"pairs": list, **_SPEC_FIELDS}, required=("pairs",)
    )
    pairs: List[Tuple[str, str]] = []
    for index, pair in enumerate(fields.pop("pairs")):
        if (
            not isinstance(pair, (list, tuple))
            or len(pair) != 2
            or not all(isinstance(p, str) for p in pair)
        ):
            raise RequestDecodeError(
                f"pairs[{index}] must be a [source, target] string pair"
            )
        pairs.append((pair[0], pair[1]))
    if not pairs:
        raise RequestDecodeError("pairs must not be empty")
    return PlanBatchRequest(pairs=tuple(pairs), **fields)


def verify_paths_request_from_json(payload: Dict[str, Any]) -> VerifyPathsRequest:
    fields = _take(
        payload,
        {
            "source": str,
            "target": str,
            "property": str,
            "formula": str,
            "quantifier": str,
            "k": int,
            "lazy": bool,
            "max_expansions": int,
            **_SPEC_FIELDS,
        },
        required=("source", "target"),
    )
    if "property" in fields:
        fields["property_name"] = fields.pop("property")
    return VerifyPathsRequest(**fields)


def lint_request_from_json(payload: Dict[str, Any]) -> LintRequest:
    fields = _take(
        payload,
        {
            "manifest": str,
            "sources": list,
            "format": str,
            "fail_on": str,
            "verbose": bool,
            "max_enum_components": int,
            "workers": int,
        },
        required=(),
    )
    sources: List[Tuple[Optional[str], str]] = []
    if "manifest" in fields:
        sources.append((None, fields.pop("manifest")))
    for index, entry in enumerate(fields.pop("sources", ())):
        if isinstance(entry, str):
            sources.append((None, entry))
        elif (
            isinstance(entry, dict)
            and isinstance(entry.get("text"), str)
            and isinstance(entry.get("path"), (str, type(None)))
            and set(entry) <= {"path", "text"}
        ):
            sources.append((entry.get("path"), entry["text"]))
        else:
            raise RequestDecodeError(
                f"sources[{index}] must be manifest text or "
                "{path?, text} objects"
            )
    if not sources:
        raise RequestDecodeError(
            "lint needs 'manifest' text or a 'sources' list"
        )
    return LintRequest(sources=tuple(sources), **fields)


def trace_check_request_from_json(payload: Dict[str, Any]) -> TraceCheckRequest:
    fields = _take(
        payload,
        {"trace": str, "ltl": str, "metrics": bool, **_SPEC_FIELDS},
        required=("trace",),
    )
    return TraceCheckRequest(**fields)
