"""The video server process app (Figure 3, left).

A synthetic camera produces frames on a fixed interval; the video
processor packetizes them; packets traverse the send MetaSocket's encoder
chain and are multicast to the clients.  The adaptation hooks implement
the §5.2 mechanics: on reset the server finishes the current frame, stops
pumping, optionally injects the in-band FLUSH marker (the global safe
condition for encoder/decoder composite actions), and reports its local
safe state; in-actions rebuild the encoder chain from the host's current
component set.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.apps.video.system import ENCODER_SCHEMES, make_encoder
from repro.apps.video.transport import DataMessage, data_endpoint
from repro.codecs.frames import Packetizer, SyntheticCamera
from repro.codecs.packets import Packet, marker_packet
from repro.components.metasocket import SendMetaSocket
from repro.core.actions import AdaptiveAction
from repro.protocol.messages import Envelope
from repro.sim.cluster import ProcessApp
from repro.trace import CommRecord


class VideoServerApp(ProcessApp):
    """Simulated video server: camera → packetizer → send MetaSocket."""

    def __init__(
        self,
        clients: Sequence[str] = ("handheld", "laptop"),
        frame_interval: float = 2.0,
        frame_size: int = 96,
        chunk_size: int = 48,
        camera_seed: int = 0,
        cid_stride: int = 8,
    ):
        self.clients: Tuple[str, ...] = tuple(clients)
        self.frame_interval = frame_interval
        self.camera = SyntheticCamera(seed=camera_seed, frame_size=frame_size)
        self.packetizer = Packetizer(chunk_size=chunk_size)
        self.cid_stride = cid_stride
        self.socket: Optional[SendMetaSocket] = None
        self.frames_sent = 0
        self.packets_sent = 0
        self.markers_sent = 0
        self._resetting = False
        self._started = False

    # -- lifecycle ----------------------------------------------------------------
    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self.socket = SendMetaSocket(
            "server.send", transport=self._transmit, filters=()
        )
        self._rebuild_chain()
        self._schedule_pump()

    def _rebuild_chain(self) -> None:
        """Sync the filter chain with the host's live component set.

        Crypto encoders first, then the FEC parity encoder (parity over
        ciphertext keeps receive-side ordering simple: reconstruct, then
        decrypt).
        """
        from repro.apps.video.extended import DEFAULT_FEC_K, FEC_ENCODERS
        from repro.codecs.fec import FecEncoderFilter

        assert self.socket is not None
        for name in self.socket.chain.filter_names():
            self.socket.remove_filter(name)
        for name in sorted(self.host.components):
            if name in ENCODER_SCHEMES:
                self.socket.insert_filter(make_encoder(name))
        for name in sorted(self.host.components):
            if name in FEC_ENCODERS:
                self.socket.insert_filter(FecEncoderFilter(name, k=DEFAULT_FEC_K))

    # -- data plane ------------------------------------------------------------------
    def _schedule_pump(self) -> None:
        self.host.sim.schedule(self.frame_interval, self._pump)

    def _pump(self) -> None:
        if not self.host.blocked and not self._resetting:
            self._send_frame()
        self._schedule_pump()

    def _send_frame(self) -> None:
        assert self.socket is not None
        frame = self.camera.capture()
        for packet in self.packetizer.packetize(frame):
            self.socket.send(packet)
        self.frames_sent += 1

    def _transmit(self, packet: Packet) -> None:
        """Post-chain transport: multicast + CCS bookkeeping per client."""
        now = self.host.sim.now
        for index, client in enumerate(self.clients):
            if packet.is_data:
                cid = packet.seq * self.cid_stride + index
                if packet.enc_scheme is not None:
                    self.host.trace.append(
                        CommRecord(
                            time=now,
                            cid=cid,
                            action="encode",
                            component=self._encoder_name(packet),
                            process=self.host.process_id,
                        )
                    )
                self.host.trace.append(
                    CommRecord(
                        time=now,
                        cid=cid,
                        action="send",
                        component="server.send",
                        process=self.host.process_id,
                    )
                )
            self.host.network.send(
                Envelope(
                    source=self.host.process_id,
                    destination=data_endpoint(client),
                    message=DataMessage(step_key="", packet=packet),
                )
            )
        if packet.is_data:
            self.packets_sent += 1

    @staticmethod
    def _encoder_name(packet: Packet) -> str:
        for name, scheme in ENCODER_SCHEMES.items():
            if scheme == packet.enc_scheme:
                return name
        return ""

    # -- adaptation hooks ---------------------------------------------------------------
    def begin_reset(
        self, step_key: str, action: AdaptiveAction, inject_flush: bool, await_flush: bool
    ) -> None:
        # Pre-action: stop accepting new frames (the current frame — one
        # simulator event — is already complete, so we are between
        # packets: the local safe state of §5.2).
        self._resetting = True
        if self.socket is not None:
            self.socket.set_resetting(True)
        if inject_flush and self.socket is not None:
            marker = marker_packet(self.packetizer.allocate_seq(), step_key)
            # Markers bypass the encoders but keep FIFO order with data.
            self._transmit(marker)
            self.markers_sent += 1
        self.host.sim.call_soon(lambda: self.host.local_safe(step_key))

    def abort_reset(self, step_key: str) -> None:
        self._clear_resetting()

    def inject_marker(self, step_key: str) -> None:
        """Out-of-band drain marker: emitted in-band, streaming continues.

        Used for decoder-side steps where this server's own components are
        untouched — downstream agents wait for the marker (all earlier
        packets drained) before swapping decoders, but the stream itself
        never stops.
        """
        if self.socket is None:
            return
        self._transmit(marker_packet(self.packetizer.allocate_seq(), step_key))
        self.markers_sent += 1

    def apply_action(self, action: AdaptiveAction) -> None:
        self._rebuild_chain()

    def undo_action(self, action: AdaptiveAction) -> None:
        self._rebuild_chain()

    def on_resumed(self) -> None:
        self._clear_resetting()

    def _clear_resetting(self) -> None:
        self._resetting = False
        if self.socket is not None:
            self.socket.set_resetting(False)
