"""Shared fixtures: the paper's §5 video system in various assemblies."""

from __future__ import annotations

import pytest

from repro.apps.video.system import (
    paper_source,
    paper_target,
    video_actions,
    video_invariants,
    video_planner,
    video_universe,
)
from repro.core.planner import AdaptationPlanner


@pytest.fixture
def universe():
    return video_universe()


@pytest.fixture
def invariants():
    return video_invariants()


@pytest.fixture
def actions():
    return video_actions()


@pytest.fixture
def planner(universe, invariants, actions) -> AdaptationPlanner:
    return AdaptationPlanner(universe, invariants, actions)


@pytest.fixture
def source(universe):
    return paper_source(universe)


@pytest.fixture
def target(universe):
    return paper_target(universe)


# The eight safe configurations of Table 1, keyed by bit vector.
TABLE1_BITS = (
    "0100101",
    "1100101",
    "1101001",
    "1101010",
    "1110010",
    "0101001",
    "1001010",
    "1010010",
)


@pytest.fixture
def table1_bits():
    return TABLE1_BITS
