"""Core safe-adaptation model — the paper's primary contribution.

Contents map directly onto the paper's analysis/setup machinery:

* :mod:`repro.core.model` — components, processes, configurations, and the
  bit-vector encoding used throughout §5.
* :mod:`repro.core.invariants` — structural and dependency invariants
  (the predicate set *I* of ``P = (S, I, T, R, A)``).
* :mod:`repro.core.actions` — adaptive actions with costs and runtime
  bindings (*T*, *R*, *A*).
* :mod:`repro.core.space` — safe-configuration enumeration (step 1 of the
  detection & setup phase).
* :mod:`repro.core.sag` — the Safe Adaptation Graph (step 2).
* :mod:`repro.core.planner` — Minimum Adaptation Path search plus the
  re-planning entry points used by failure handling (step 3 and §4.4).
* :mod:`repro.core.collaborative` — collaborative-set decomposition
  (§7 scalability remedy).
"""

from repro.core.model import Component, ComponentUniverse, Configuration
from repro.core.invariants import (
    DependencyInvariant,
    Invariant,
    InvariantSet,
    StructuralInvariant,
)
from repro.core.actions import ActionKind, ActionLibrary, AdaptiveAction
from repro.core.space import (
    EnumerationStats,
    LazySafeSpace,
    SafeConfigurationSpace,
)
from repro.core.sag import LazySAG, SafeAdaptationGraph
from repro.core.planner import (
    LAZY_PLAN_COMPONENTS,
    AdaptationPlan,
    AdaptationPlanner,
    PlanStep,
)
from repro.core.collaborative import collaborative_sets

__all__ = [
    "Component",
    "ComponentUniverse",
    "Configuration",
    "Invariant",
    "StructuralInvariant",
    "DependencyInvariant",
    "InvariantSet",
    "ActionKind",
    "AdaptiveAction",
    "ActionLibrary",
    "SafeConfigurationSpace",
    "LazySafeSpace",
    "EnumerationStats",
    "SafeAdaptationGraph",
    "LazySAG",
    "AdaptationPlanner",
    "AdaptationPlan",
    "PlanStep",
    "LAZY_PLAN_COMPONENTS",
    "collaborative_sets",
]
