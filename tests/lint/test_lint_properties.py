"""Property tests: analyzer verdicts ≡ brute-force AST enumeration.

The analyzer decides everything on compiled bitmasks; the AST evaluator
is the semantic source of truth.  On random universes, invariants, and
actions these tests pin:

* :func:`repro.lint.truth_profile` (satisfiable/tautology) to exhaustive
  ``Expr.evaluate`` over every subset of the universe;
* :func:`repro.lint.jointly_satisfiable` to the same enumeration of the
  conjunction;
* the SA301 dead-action verdict (``action_arcs``) to an AST-level sweep
  of every safe configuration through ``AdaptiveAction.apply``.
"""

from hypothesis import given, settings, strategies as st

from repro.core.actions import AdaptiveAction, MaskedAction
from repro.core.invariants import InvariantSet
from repro.core.model import ComponentUniverse
from repro.core.space import SafeConfigurationSpace
from repro.expr.ast import FALSE, TRUE, And, Atom, Implies, Not, OneOf, Or, Xor
from repro.lint import action_arcs, jointly_satisfiable, truth_profile

NAMES = ("A", "B", "C", "D", "E")
UNIVERSE = ComponentUniverse.from_names(NAMES)

ATOMS = st.sampled_from(NAMES).map(Atom)
EXPRESSIONS = st.recursive(
    st.one_of(ATOMS, st.sampled_from((TRUE, FALSE))),
    lambda children: st.one_of(
        children.map(Not),
        st.lists(children, min_size=2, max_size=3).map(lambda ops: And(tuple(ops))),
        st.lists(children, min_size=2, max_size=3).map(lambda ops: Or(tuple(ops))),
        st.lists(children, min_size=2, max_size=3).map(lambda ops: Xor(tuple(ops))),
        st.lists(children, min_size=2, max_size=3).map(lambda ops: OneOf(tuple(ops))),
        st.tuples(children, children).map(lambda ab: Implies(ab[0], ab[1])),
    ),
    max_leaves=12,
)


def every_subset():
    for mask in range(1 << len(NAMES)):
        yield frozenset(
            name for index, name in enumerate(NAMES) if mask & (1 << index)
        )


@given(expr=EXPRESSIONS)
@settings(max_examples=200)
def test_truth_profile_matches_brute_force(expr):
    verdicts = [expr.evaluate(subset) for subset in every_subset()]
    assert truth_profile(expr, UNIVERSE) == (any(verdicts), all(verdicts))


@given(left=EXPRESSIONS, right=EXPRESSIONS)
@settings(max_examples=200)
def test_joint_satisfiability_matches_brute_force(left, right):
    brute = any(
        left.evaluate(subset) and right.evaluate(subset)
        for subset in every_subset()
    )
    assert jointly_satisfiable(left, right, UNIVERSE) == brute


DELTAS = st.tuples(
    st.frozensets(st.sampled_from(NAMES), max_size=2),
    st.frozensets(st.sampled_from(NAMES), max_size=2),
).filter(lambda ra: (ra[0] or ra[1]) and not (ra[0] & ra[1]))


@given(expr=EXPRESSIONS, delta=DELTAS)
@settings(max_examples=200)
def test_dead_action_verdict_matches_ast_sweep(expr, delta):
    removes, adds = delta
    invariants = InvariantSet.of(expr)
    action = AdaptiveAction("X", removes, adds, cost=1.0)
    space = SafeConfigurationSpace(UNIVERSE, invariants)
    safe_masks = space.enumerate_masks()
    applicable, arcs = action_arcs(
        safe_masks, frozenset(safe_masks), MaskedAction(action, UNIVERSE.atom_bits)
    )

    # Brute force on the AST side: walk every safe subset through the
    # set-level action semantics.
    brute_applicable = 0
    brute_arcs = set()
    for subset in every_subset():
        if not invariants.all_hold(subset):
            continue
        config = UNIVERSE.configuration(*sorted(subset))
        if action.is_applicable(config):
            brute_applicable += 1
            result = action.apply(config)
            if invariants.all_hold(result.members):
                brute_arcs.add(
                    (UNIVERSE.mask_of(config), UNIVERSE.mask_of(result))
                )
    assert applicable == brute_applicable
    assert set(arcs) == brute_arcs
    # The SA301 verdict itself: dead iff no safe-to-safe firing.
    assert (not arcs) == (not brute_arcs)
