"""Unit tests for safe-configuration enumeration (Table 1)."""

import pytest

from repro.core.invariants import InvariantSet
from repro.core.model import ComponentUniverse, Configuration
from repro.core.space import SafeConfigurationSpace
from repro.errors import UnsafeConfigurationError


class TestMembership:
    def test_is_safe(self, planner, source):
        assert planner.space.is_safe(source)
        assert not planner.space.is_safe(Configuration(["E1"]))

    def test_require_safe_raises_with_explanation(self, planner):
        with pytest.raises(UnsafeConfigurationError) as excinfo:
            planner.space.require_safe(Configuration(["E1"]), role="source")
        assert "source" in str(excinfo.value)
        assert "violates" in str(excinfo.value)

    def test_contains_protocol(self, planner, source):
        assert source in planner.space


class TestTable1:
    def test_exact_safe_set(self, planner, universe, table1_bits):
        got = {universe.to_bits(c) for c in planner.space.enumerate()}
        assert got == set(table1_bits)

    def test_count_and_len(self, planner):
        assert planner.space.count() == 8
        assert len(planner.space) == 8

    def test_deterministic_ascending_order(self, planner, universe):
        bits = [universe.to_bits(c) for c in planner.space.enumerate()]
        assert bits == sorted(bits)

    def test_cached(self, planner):
        assert planner.space.enumerate() is planner.space.enumerate()

    def test_to_table_rows(self, planner):
        rows = planner.space.to_table()
        assert ("0100101", "{D1,D4,E1}") in rows
        assert ("1010010", "{D3,D5,E2}") in rows


class TestRestrictedEnumeration:
    def test_restriction_matches_full_when_all_free(self, planner, universe, source):
        restricted = planner.space.enumerate_restricted(source, universe.order)
        assert set(restricted) == set(planner.space.enumerate())

    def test_frozen_components_pinned(self, planner, universe, source):
        # Only vary the handheld decoders; E1, D4 stay as in source.
        restricted = planner.space.enumerate_restricted(source, ["D1", "D2", "D3"])
        for config in restricted:
            assert "E1" in config and "D4" in config
        got = {universe.to_bits(c) for c in restricted}
        assert got == {"0100101", "0101001"}

    def test_unknown_free_component_rejected(self, planner, source):
        from repro.errors import UnknownComponentError

        with pytest.raises(UnknownComponentError):
            planner.space.enumerate_restricted(source, ["Z9"])


class TestBacktrackingEnumerator:
    def test_matches_brute_force_on_paper_instance(self, planner, universe):
        brute = tuple(
            config for config in universe.all_configurations()
            if planner.invariants.all_hold(config)
        )
        assert planner.space.enumerate_backtracking() == brute

    def test_scales_past_brute_force(self):
        """4 replicated groups = 28 components: 2^28 brute-force states,
        but only 8^4 safe ones — backtracking must finish quickly."""
        from repro.bench import replicated_video_system

        system = replicated_video_system(4)
        space = SafeConfigurationSpace(system.universe, system.invariants)
        configs = space.enumerate_backtracking()
        assert len(configs) == 8 ** 4
        for config in configs[:32]:
            assert system.invariants.all_hold(config)

    def test_matches_brute_force_on_random_instances(self):
        from repro.bench import random_system

        for seed in range(20):
            system = random_system(seed, n_components=7)
            space = SafeConfigurationSpace(system.universe, system.invariants)
            brute = tuple(
                config for config in system.universe.all_configurations()
                if system.invariants.all_hold(config)
            )
            assert space.enumerate_backtracking() == brute, seed

    def test_unsatisfiable_invariants_yield_empty(self):
        universe = ComponentUniverse.from_names(["A"])
        space = SafeConfigurationSpace(universe, InvariantSet.of("A & !A"))
        assert space.enumerate_backtracking() == ()


class TestBruteForceCrossCheck:
    def test_enumeration_equals_filtering(self):
        universe = ComponentUniverse.from_names(["A", "B", "C", "D"])
        invariants = InvariantSet.of("A -> B", "one_of(C, D)")
        space = SafeConfigurationSpace(universe, invariants)
        expected = {
            config.members
            for config in universe.all_configurations()
            if invariants.all_hold(config)
        }
        assert {c.members for c in space.enumerate()} == expected
        # sanity: the constraint actually prunes
        assert 0 < len(expected) < 16
