"""Property-based tests for the expression language (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.expr import And, Atom, Expr, Implies, Not, OneOf, Or, Xor, parse
from repro.expr.ast import to_text

NAMES = ["A", "B", "C", "D1", "D2", "E1"]


def exprs(max_leaves: int = 12) -> st.SearchStrategy[Expr]:
    atoms = st.sampled_from(NAMES).map(Atom)
    return st.recursive(
        atoms,
        lambda children: st.one_of(
            children.map(Not),
            st.lists(children, min_size=2, max_size=4).map(lambda ops: And(tuple(ops))),
            st.lists(children, min_size=2, max_size=4).map(lambda ops: Or(tuple(ops))),
            st.lists(children, min_size=2, max_size=4).map(lambda ops: Xor(tuple(ops))),
            st.lists(children, min_size=2, max_size=4).map(lambda ops: OneOf(tuple(ops))),
            st.tuples(children, children).map(lambda pair: Implies(*pair)),
        ),
        max_leaves=max_leaves,
    )


configs = st.sets(st.sampled_from(NAMES))


@given(exprs(), configs)
def test_evaluation_is_deterministic(expr, config):
    assert expr.evaluate(config) == expr.evaluate(config)


@given(exprs())
def test_render_parse_round_trip(expr):
    assert parse(to_text(expr)) == expr


@given(exprs(), configs)
def test_round_trip_preserves_semantics(expr, config):
    assert parse(to_text(expr)).evaluate(config) == expr.evaluate(config)


@given(exprs(), configs)
def test_double_negation(expr, config):
    assert Not(Not(expr)).evaluate(config) == expr.evaluate(config)


@given(exprs(), exprs(), configs)
def test_implies_is_material(a, b, config):
    assert Implies(a, b).evaluate(config) == (
        (not a.evaluate(config)) or b.evaluate(config)
    )


@given(st.lists(st.sampled_from(NAMES), min_size=2, max_size=5, unique=True), configs)
def test_one_of_counts_members(names, config):
    expr = OneOf(tuple(Atom(n) for n in names))
    expected = sum(1 for n in names if n in config) == 1
    assert expr.evaluate(config) == expected


@given(exprs(), configs)
def test_atoms_cover_evaluation_support(expr, config):
    """Evaluation only depends on atoms the expression mentions."""
    relevant = expr.atoms()
    assert expr.evaluate(config) == expr.evaluate(config & relevant)
