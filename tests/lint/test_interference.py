"""SA6xx interference checks: races between concurrent adaptive actions.

Unit tests craft the smallest manifest that fires each code; the
hypothesis suite pins the mask-based order-sensitivity verdicts against
a brute-force AST enumeration of both firing orders over every safe
configuration.
"""

from hypothesis import given, settings, strategies as st

from repro.core.actions import AdaptiveAction, MaskedAction
from repro.core.invariants import InvariantSet
from repro.core.model import ComponentUniverse
from repro.core.space import SafeConfigurationSpace
from repro.expr.ast import And, Atom, Implies, Not, OneOf, Or
from repro.lint import lint_text


def codes_of(report, code):
    return [d for d in report if d.code == code]


RACING = """\
[components]
FW @ edge
CA @ core
RX @ core

[invariants]
guarded : CA -> FW
shielded : RX -> FW

[actions]
drop_fw : -FW @ 5
add_fw : +FW @ 8
drop_cache : -CA @ 5
add_replica : +RX @ 12
drop_replica : -RX @ 4

[configurations]
baseline = FW, CA
hardened = FW, CA, RX
"""


class TestSA601OrderRace:
    def test_one_order_commits_the_other_exits_safety(self):
        report = lint_text(RACING)
        [race] = [
            d
            for d in codes_of(report, "SA601")
            if "'drop_cache'" in d.message
        ]
        # the safe order is named, the failing order explains itself
        assert "'drop_cache', 'drop_fw' commits safely" in race.message
        assert "exits the safe space once 'drop_fw' commits" in race.message
        assert race.related[0].message == "races with this action"

    def test_witness_is_the_minimized_common_source(self):
        report = lint_text(RACING)
        [race] = [
            d
            for d in codes_of(report, "SA601")
            if "'drop_cache'" in d.message
        ]
        # {CA, FW} is the smallest safe source where both are applicable
        assert "110 {CA,FW}" in race.message

    def test_commuting_pairs_stay_silent(self):
        report = lint_text(
            """
[components]
A @ p1
B @ p1

[actions]
on_a : +A @ 1
on_b : +B @ 1
"""
        )
        assert not codes_of(report, "SA601")

    def test_declared_conflict_silences_the_pair(self):
        report = lint_text(
            RACING
            + "\n[conflicts]\ncache_fw : drop_cache drop_fw\n"
        )
        assert not [
            d
            for d in codes_of(report, "SA601")
            if "'drop_cache'" in d.message
        ]


class TestSA602BlockingOverlap:
    TEXT = """\
[components]
A @ p1
B @ p2
C @ p3

[actions]
left : A -> B @ 1
right : B -> C @ 1
back : B -> A @ 1
fwd : C -> B @ 1
"""

    def test_overlapping_cover_fires(self):
        report = lint_text(self.TEXT)
        findings = codes_of(report, "SA602")
        assert findings
        assert any(
            "'left'" in d.message and "'right'" in d.message
            and "shared: p2" in d.message
            for d in findings
        )

    def test_single_process_manifests_cannot_fire(self):
        report = lint_text(
            """
[components]
A @ p1
B @ p1

[actions]
swap : A -> B @ 1
unswap : B -> A @ 1
"""
        )
        assert not codes_of(report, "SA602")

    def test_disjoint_participants_do_not_fire(self):
        report = lint_text(
            """
[components]
A @ p1
B @ p2

[actions]
on_a : +A @ 1
on_b : +B @ 1
"""
        )
        assert not codes_of(report, "SA602")


class TestSA603LostInverse:
    def test_rollback_stranding_is_the_sharper_diagnosis(self):
        report = lint_text(RACING)
        strands = codes_of(report, "SA603")
        assert len(strands) == 2
        [drop] = [d for d in strands if "'drop_replica'" in d.message]
        # after drop_replica commits, add_replica still restores safety;
        # once drop_fw also commits it would land outside the safe space
        assert "declared inverse 'add_replica'" in drop.message
        assert "no longer viable" in drop.message
        # SA603 replaces SA601 for the pair — not both
        assert not [
            d
            for d in codes_of(report, "SA601")
            if "'drop_replica'" in d.message and "'drop_fw'" in d.message
        ]
        assert any(
            rel.message == "the stranded inverse" for rel in drop.related
        )


class TestSA604ConflictingTouch:
    def test_set_clear_collision_fires_without_enumeration(self):
        report = lint_text(
            """
[components]
A @ p1
B @ p1

[actions]
grow : +A @ 1
migrate : A -> B @ 1
"""
        )
        [race] = codes_of(report, "SA604")
        assert "'grow'" in race.message and "'migrate'" in race.message
        assert "A end(s) up present" in race.message

    def test_mutual_inverses_are_excluded(self):
        report = lint_text(
            """
[components]
A @ p1
B @ p1

[actions]
swap : A -> B @ 1
unswap : B -> A @ 1
"""
        )
        assert not codes_of(report, "SA604")

    def test_declared_conflict_silences_the_pair(self):
        report = lint_text(
            """
[components]
A @ p1
B @ p1

[actions]
grow : +A @ 1
migrate : A -> B @ 1

[conflicts]
reviewed : grow migrate
"""
        )
        assert not codes_of(report, "SA604")


class TestSA605RestrictedFallback:
    def test_above_cap_falls_back_to_named_sources(self):
        report = lint_text(RACING, max_enum_components=2)
        [note] = codes_of(report, "SA605")
        assert "named safe configuration(s)" in note.message
        assert "exceed the enumeration cap" in note.message
        assert any(
            "restricted to named configurations" in line
            for line in report.skipped
        )
        # the named sources still witness the race: baseline = {FW, CA}
        assert [
            d
            for d in codes_of(report, "SA601")
            if "'drop_cache'" in d.message
        ]

    def test_below_cap_has_no_restriction_note(self):
        report = lint_text(RACING)
        assert not codes_of(report, "SA605")


class TestSA606UnknownConflictAction:
    def test_unknown_reference_is_an_error_with_a_fix(self):
        report = lint_text(
            RACING + "\n[conflicts]\nbad : drop_fw nosuch\n"
        )
        [error] = codes_of(report, "SA606")
        assert "'nosuch'" in error.message
        assert error.fixes  # delete the dangling entry

    def test_known_pairs_are_clean(self):
        report = lint_text(
            RACING + "\n[conflicts]\nok : drop_fw drop_cache\n"
        )
        assert not codes_of(report, "SA606")


# -- hypothesis: mask verdicts ≡ brute-force AST order enumeration -------------

NAMES = ("A", "B", "C", "D", "E")
PROCESSES = {"A": "p1", "B": "p1", "C": "p2", "D": "p2", "E": "p3"}
UNIVERSE = ComponentUniverse.from_names(NAMES, processes=PROCESSES)

ATOMS = st.sampled_from(NAMES).map(Atom)
EXPRESSIONS = st.recursive(
    ATOMS,
    lambda children: st.one_of(
        children.map(Not),
        st.lists(children, min_size=2, max_size=3).map(
            lambda ops: And(tuple(ops))
        ),
        st.lists(children, min_size=2, max_size=3).map(
            lambda ops: Or(tuple(ops))
        ),
        st.lists(children, min_size=2, max_size=3).map(
            lambda ops: OneOf(tuple(ops))
        ),
        st.tuples(children, children).map(lambda ab: Implies(ab[0], ab[1])),
    ),
    max_leaves=8,
)

DELTAS = st.tuples(
    st.frozensets(st.sampled_from(NAMES), max_size=2),
    st.frozensets(st.sampled_from(NAMES), max_size=2),
).filter(lambda ra: (ra[0] or ra[1]) and not (ra[0] & ra[1]))


def every_subset():
    for mask in range(1 << len(NAMES)):
        yield frozenset(
            name for index, name in enumerate(NAMES) if mask & (1 << index)
        )


def brute_force_order(action_p, action_q, members, invariants):
    """Fire *p* then *q* at the AST level: (completed, final members)."""
    config = UNIVERSE.configuration(*sorted(members))
    if not action_p.is_applicable(config):
        return False, None
    mid = action_p.apply(config)
    if not invariants.all_hold(mid.members):
        return False, None
    if not action_q.is_applicable(mid):
        return False, None
    final = action_q.apply(mid)
    if not invariants.all_hold(final.members):
        return False, None
    return True, frozenset(final.members)


def mask_order(mp, mq, mask, safe_set):
    """The engine's view of the same two-step firing."""
    if not mp.is_applicable_mask(mask):
        return False, None
    mid = mp.apply_mask(mask)
    if mid not in safe_set:
        return False, None
    if not mq.is_applicable_mask(mid):
        return False, None
    final = mq.apply_mask(mid)
    if final not in safe_set:
        return False, None
    return True, final


@given(expr=EXPRESSIONS, dx=DELTAS, dy=DELTAS)
@settings(max_examples=150, deadline=None)
def test_order_verdicts_match_brute_force(expr, dx, dy):
    """Both firing orders, every safe source: mask engine ≡ AST sweep.

    This is the exact loop SA601/SA603 run; if the two semantics ever
    disagreed on completion or final configuration, the interference
    verdicts would be unsound.
    """
    invariants = InvariantSet.of(expr)
    x = AdaptiveAction("x", dx[0], dx[1], cost=1.0)
    y = AdaptiveAction("y", dy[0], dy[1], cost=1.0)
    mx = MaskedAction(x, UNIVERSE.atom_bits)
    my = MaskedAction(y, UNIVERSE.atom_bits)
    space = SafeConfigurationSpace(UNIVERSE, invariants)
    safe_set = frozenset(space.enumerate_masks())

    for members in every_subset():
        if not invariants.all_hold(members):
            continue
        mask = UNIVERSE.mask_of(UNIVERSE.configuration(*sorted(members)))
        assert mask in safe_set
        for p, q, mp, mq in ((x, y, mx, my), (y, x, my, mx)):
            brute_ok, brute_final = brute_force_order(
                p, q, members, invariants
            )
            engine_ok, engine_final = mask_order(mp, mq, mask, safe_set)
            assert brute_ok == engine_ok
            if brute_ok:
                assert engine_final == UNIVERSE.mask_of(
                    UNIVERSE.configuration(*sorted(brute_final))
                )


@given(dx=DELTAS, dy=DELTAS)
@settings(max_examples=150, deadline=None)
def test_sa604_collision_predicts_composition_divergence(dx, dy):
    """The SA604 algebra: set/clear collision ⟺ composed sets differ.

    Also pins the theorem the docstring leans on: a colliding pair can
    never share a source where both are applicable.
    """
    x = AdaptiveAction("x", dx[0], dx[1], cost=1.0)
    y = AdaptiveAction("y", dy[0], dy[1], cost=1.0)
    mx = MaskedAction(x, UNIVERSE.atom_bits)
    my = MaskedAction(y, UNIVERSE.atom_bits)
    collide = (mx.set_bits & my.clear) | (my.set_bits & mx.clear)
    set_xy = (mx.set_bits & ~my.clear) | my.set_bits
    set_yx = (my.set_bits & ~mx.clear) | mx.set_bits

    if not collide:
        # commuting deltas: identical composition from every start
        assert set_xy == set_yx
        for members in every_subset():
            mask = UNIVERSE.mask_of(
                UNIVERSE.configuration(*sorted(members))
            )
            one = my.apply_mask(mx.apply_mask(mask))
            other = mx.apply_mask(my.apply_mask(mask))
            assert one == other
    else:
        # colliding pairs are never co-applicable anywhere
        for members in every_subset():
            mask = UNIVERSE.mask_of(
                UNIVERSE.configuration(*sorted(members))
            )
            assert not (
                mx.is_applicable_mask(mask) and my.is_applicable_mask(mask)
            )
