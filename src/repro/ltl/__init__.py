"""Past-time LTL: one property core for every evaluation surface (§7).

Previously a single module housing the AST and the live-trace monitor,
``repro.ltl`` is now a package whose center of gravity is the **compiled
property IR** — formulas compiled once per spec and evaluated in
O(formula) per step over int bitmasks:

* :mod:`repro.ltl.ast` — the formula classes (``Prop``, boolean and
  past-time operators, the configuration-level ``StateProp`` atom) and
  the manifest ``[properties]`` text syntax
  (:func:`parse_property` / :func:`property_to_text`);
* :mod:`repro.ltl.compile` — :class:`CompiledProperty` /
  :class:`CompiledMonitor`, the bit-slot program shared by paths, lint,
  the planning service, and offline trace checking;
* :mod:`repro.ltl.monitor` — the incremental AST monitor
  (:class:`PTLTLMonitor`, the semantic source of truth), the
  safe-state machinery, and the observation-bus surface;
* :mod:`repro.ltl.paths` — :func:`verify_paths`, path-quantified
  checking over the Safe Adaptation Graph ("along every/some k-best
  path from S to T, φ holds at each committed configuration").

Every name importable from the old module is re-exported here.
"""

from repro.ltl.ast import (
    Historically,
    Once,
    PAnd,
    PFormula,
    PImplies,
    PNot,
    POr,
    Previously,
    Prop,
    Since,
    StateProp,
    parse_property,
    property_to_text,
)
from repro.ltl.compile import (
    CompiledMonitor,
    CompiledProperty,
    compile_property,
)
from repro.ltl.monitor import (
    BalancedPair,
    PTLTLMonitor,
    SafeStateMonitor,
    TemporalObserver,
    TemporalReport,
    no_open_segments,
    record_events,
)
from repro.ltl.paths import (
    DEFAULT_K,
    LAZY_VERIFY_EXPANSIONS,
    PathVerdict,
    check_plan,
    verify_paths,
)

__all__ = [
    "BalancedPair",
    "CompiledMonitor",
    "CompiledProperty",
    "DEFAULT_K",
    "Historically",
    "LAZY_VERIFY_EXPANSIONS",
    "Once",
    "PAnd",
    "PFormula",
    "PImplies",
    "PNot",
    "POr",
    "PTLTLMonitor",
    "PathVerdict",
    "Previously",
    "Prop",
    "SafeStateMonitor",
    "Since",
    "StateProp",
    "TemporalObserver",
    "TemporalReport",
    "check_plan",
    "compile_property",
    "no_open_segments",
    "parse_property",
    "property_to_text",
    "record_events",
    "verify_paths",
]
