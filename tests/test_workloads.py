"""Unit tests for benchmark workload generators and table rendering."""

import pytest

from repro.bench import format_table, random_system, replicated_video_system
from repro.core.planner import AdaptationPlanner


class TestReplicatedVideoSystem:
    def test_size_scales(self):
        system = replicated_video_system(3)
        assert len(system.universe) == 21
        assert len(system.invariants) == 12
        assert len(system.actions) == 51

    def test_groups_are_isolated(self):
        system = replicated_video_system(2)
        for action in system.actions:
            suffixes = {name.split("@")[1] for name in action.touched}
            assert len(suffixes) == 1
        for invariant in system.invariants:
            suffixes = {name.split("@")[1] for name in invariant.atoms()}
            assert len(suffixes) == 1

    def test_source_target_safe(self):
        system = replicated_video_system(2)
        assert system.invariants.all_hold(system.source)
        assert system.invariants.all_hold(system.target)

    def test_safe_space_is_power_of_eight(self):
        system = replicated_video_system(2)
        planner = AdaptationPlanner(system.universe, system.invariants, system.actions)
        assert planner.space.count() == 64  # 8^2

    def test_n_groups_validated(self):
        with pytest.raises(ValueError):
            replicated_video_system(0)


class TestRandomSystem:
    def test_reproducible(self):
        a = random_system(42)
        b = random_system(42)
        assert a.universe.order == b.universe.order
        assert a.source == b.source
        assert [x.action_id for x in a.actions] == [x.action_id for x in b.actions]

    def test_shapes(self):
        system = random_system(7, n_components=5, n_invariants=2, n_actions=6)
        assert len(system.universe) == 5
        assert len(system.invariants) == 2
        assert len(system.actions) == 6

    def test_different_seeds_differ(self):
        ops_a = [a.operation_text() for a in random_system(1).actions]
        ops_b = [a.operation_text() for a in random_system(2).actions]
        assert ops_a != ops_b


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["name", "cost"], [["A1", 10], ["A14", 150]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "A14" in lines[3]
        assert len(set(len(line) for line in lines)) == 1  # rectangular

    def test_mismatched_row_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_empty_rows_ok(self):
        text = format_table(["a"], [])
        assert "a" in text
