"""Property-based tests: our algorithms vs networkx on random graphs."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import Digraph, astar_path, k_shortest_paths, shortest_path


@st.composite
def random_digraphs(draw):
    n = draw(st.integers(min_value=2, max_value=8))
    edge_count = draw(st.integers(min_value=1, max_value=20))
    edges = []
    for index in range(edge_count):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u == v:
            continue
        w = draw(st.integers(min_value=0, max_value=10))
        edges.append((u, v, float(w), f"e{index}"))
    return n, edges


def build_both(n, edges):
    ours = Digraph()
    theirs = nx.MultiDiGraph()
    for node in range(n):
        ours.add_node(node)
        theirs.add_node(node)
    for u, v, w, label in edges:
        ours.add_edge(u, v, label, w)
        theirs.add_edge(u, v, key=label, weight=w)
    return ours, theirs


@given(random_digraphs())
@settings(max_examples=60, deadline=None)
def test_shortest_path_cost_matches_networkx(case):
    n, edges = case
    ours, theirs = build_both(n, edges)
    path = shortest_path(ours, 0, n - 1)
    try:
        expected = nx.shortest_path_length(theirs, 0, n - 1, weight="weight")
    except nx.NetworkXNoPath:
        assert path is None
        return
    assert path is not None
    assert path.cost == pytest.approx(expected)


@given(random_digraphs())
@settings(max_examples=40, deadline=None)
def test_astar_zero_heuristic_matches_dijkstra(case):
    n, edges = case
    ours, _ = build_both(n, edges)
    d = shortest_path(ours, 0, n - 1)
    a = astar_path(ours, 0, n - 1, lambda node: 0.0)
    if d is None:
        assert a is None
    else:
        assert a is not None and a.cost == pytest.approx(d.cost)


@given(random_digraphs(), st.integers(min_value=1, max_value=5))
@settings(max_examples=40, deadline=None)
def test_yen_paths_sorted_distinct_loopless_valid(case, k):
    n, edges = case
    ours, _ = build_both(n, edges)
    paths = k_shortest_paths(ours, 0, n - 1, k)
    costs = [p.cost for p in paths]
    assert costs == sorted(costs)
    assert len({(p.nodes, p.labels) for p in paths}) == len(paths)
    for path in paths:
        assert len(set(path.nodes)) == len(path.nodes)  # loopless
        assert path.cost == pytest.approx(sum(e.weight for e in path.edges))
        for edge, (u, v) in zip(path.edges, zip(path.nodes, path.nodes[1:])):
            assert (edge.source, edge.target) == (u, v)


@given(random_digraphs())
@settings(max_examples=40, deadline=None)
def test_yen_first_path_is_global_optimum(case):
    n, edges = case
    ours, _ = build_both(n, edges)
    best = shortest_path(ours, 0, n - 1)
    paths = k_shortest_paths(ours, 0, n - 1, 1)
    if best is None:
        assert paths == []
    else:
        assert paths and paths[0].cost == pytest.approx(best.cost)
