"""Critical communication segments (paper §3, §3.2).

"We use a set of finite sequence[s] of indivisible actions (named atomic
actions) to model the set of critical communication segments CCS. [...]
We say an adaptive system does not interrupt critical communication
segments if [...] for all critical communication CID, we have
``S_CID ∈ CCS``."

:class:`CCSSpec` is that language: a finite set of *complete* atomic-action
sequences.  A segment observed in a trace is judged:

* **complete** if its sequence is exactly one of the allowed sequences;
* **in progress** if it is a proper prefix of at least one allowed
  sequence (permitted only at the very end of a trace — the system was
  cut off mid-segment by observation, not by adaptation);
* **interrupted/invalid** otherwise.

The paper's video example uses one segment shape per packet:
``encode → send → receive → decode``; its UDP example's global safe
condition — "the receiver has received all the datagram packets that the
sender has sent" — is precisely "no segment is stuck between *send* and
*receive* when the in-action fires".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.trace import CommRecord, Trace


@dataclass(frozen=True)
class SegmentVerdict:
    """Judgement of one observed segment."""

    cid: int
    sequence: Tuple[str, ...]
    complete: bool
    in_progress: bool

    @property
    def interrupted(self) -> bool:
        return not self.complete and not self.in_progress


class CCSSpec:
    """A critical-communication-segment language over atomic actions."""

    def __init__(self, allowed: Iterable[Sequence[str]], name: str = "ccs"):
        self.name = name
        self._allowed: Tuple[Tuple[str, ...], ...] = tuple(
            tuple(seq) for seq in allowed
        )
        if not self._allowed:
            raise ValueError("CCSSpec needs at least one allowed sequence")
        for seq in self._allowed:
            if not seq:
                raise ValueError("allowed sequences must be non-empty")
        self._prefixes: FrozenSet[Tuple[str, ...]] = frozenset(
            seq[:i] for seq in self._allowed for i in range(len(seq) + 1)
        )
        self._complete: FrozenSet[Tuple[str, ...]] = frozenset(self._allowed)

    @classmethod
    def single(cls, *actions: str, name: str = "ccs") -> "CCSSpec":
        """Language with exactly one allowed sequence."""
        return cls([actions], name=name)

    @property
    def allowed(self) -> Tuple[Tuple[str, ...], ...]:
        return self._allowed

    def is_complete(self, sequence: Sequence[str]) -> bool:
        """``sequence ∈ CCS`` — the paper's membership test."""
        return tuple(sequence) in self._complete

    def is_prefix(self, sequence: Sequence[str]) -> bool:
        """True iff *sequence* can still be extended into a member."""
        return tuple(sequence) in self._prefixes

    def judge(self, cid: int, sequence: Sequence[str]) -> SegmentVerdict:
        seq = tuple(sequence)
        complete = self.is_complete(seq)
        in_progress = (not complete) and self.is_prefix(seq)
        return SegmentVerdict(
            cid=cid, sequence=seq, complete=complete, in_progress=in_progress
        )

    def judge_trace(self, trace: Trace) -> List[SegmentVerdict]:
        """Judge every CID appearing in *trace*."""
        return [self.judge(cid, trace.comm_sequence(cid)) for cid in trace.cids()]

    def open_cids(self, trace: Trace) -> Tuple[int, ...]:
        """Segments started but not completed (drain check for global safety)."""
        return tuple(
            verdict.cid
            for verdict in self.judge_trace(trace)
            if not verdict.complete
        )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"CCSSpec({self.name!r}, {len(self._allowed)} sequences)"


class _SegmentState:
    """Per-CID incremental state kept by :class:`CCSTracker`.

    ``status`` is the segment's *current* classification:

    * ``"open"`` — a proper prefix of at least one allowed sequence;
    * ``"complete"`` — exactly an allowed sequence (stored compactly as
      an index into the spec's allowed tuple, not a copied list — the
      common case for long safe runs, so memory stays bounded by the
      number of open/interrupted segments, not by traffic volume);
    * ``"dead"`` — left the prefix set.  The prefix set is prefix-closed,
      so no future action can revive a dead segment: its final verdict
      is already known to be *interrupted*, which is what makes online
      CCS enforcement sound.
    """

    __slots__ = ("status", "actions", "complete_index", "last_time")

    def __init__(self) -> None:
        self.status = "open"
        self.actions: Optional[List[str]] = []
        self.complete_index = -1
        self.last_time = 0.0


class CCSTracker:
    """Incremental, batch-parity CCS checking over a record stream.

    Mirrors :meth:`CCSSpec.judge_trace` event-by-event: after any number
    of :meth:`observe` calls, :meth:`verdicts` equals what the batch
    judgement would return over the same records (same CIDs, same
    sequences, same first-seen order — the property tests pin this).
    Unlike :class:`SegmentTracker` (live quiescence bookkeeping, which
    forgets completed segments), this tracker keeps exact per-CID
    verdict state so a completed segment that receives further actions
    is re-judged exactly as the batch extraction would.

    :meth:`observe` additionally returns a :class:`SegmentVerdict` at
    the *moment* a segment becomes unrecoverable (leaves the prefix
    set) — the online-enforcement hook: at that instant the final
    verdict is guaranteed to be *interrupted*, no matter what follows.
    """

    def __init__(self, spec: CCSSpec):
        self.spec = spec
        self._segments: Dict[int, _SegmentState] = {}
        self._complete_index: Dict[Tuple[str, ...], int] = {}
        for index, seq in enumerate(spec._allowed):
            self._complete_index.setdefault(seq, index)
        self.completed = 0
        self.interrupted = 0

    def observe(self, cid: int, action: str, time: float = 0.0) -> Optional[SegmentVerdict]:
        """Record one atomic action; returns a verdict iff the segment
        just became irrecoverably interrupted (None otherwise)."""
        state = self._segments.get(cid)
        if state is None:
            state = self._segments[cid] = _SegmentState()
        state.last_time = time
        if state.status == "dead":
            assert state.actions is not None
            state.actions.append(action)
            return None
        if state.status == "complete":
            # Re-expand the compact form: the segment is growing again.
            state.actions = list(self.spec.allowed[state.complete_index])
            state.complete_index = -1
            self.completed -= 1
        assert state.actions is not None
        state.actions.append(action)
        sequence = tuple(state.actions)
        if sequence in self.spec._complete:
            state.status = "complete"
            state.complete_index = self._complete_index[sequence]
            state.actions = None
            self.completed += 1
            return None
        if sequence in self.spec._prefixes:
            state.status = "open"
            return None
        state.status = "dead"
        self.interrupted += 1
        return SegmentVerdict(cid=cid, sequence=sequence, complete=False, in_progress=False)

    def sequence(self, cid: int) -> Tuple[str, ...]:
        """The segment's full action sequence so far (== ``S_CID``)."""
        state = self._segments[cid]
        if state.status == "complete":
            return self.spec.allowed[state.complete_index]
        assert state.actions is not None
        return tuple(state.actions)

    def last_time(self, cid: int) -> float:
        """Time of the most recent action observed for *cid*."""
        return self._segments[cid].last_time

    def cids(self) -> Tuple[int, ...]:
        """All CIDs seen, in first-seen order (matches ``Trace.cids``)."""
        return tuple(self._segments)

    def verdicts(self) -> List[SegmentVerdict]:
        """Batch-identical judgement of every segment seen so far."""
        out: List[SegmentVerdict] = []
        for cid, state in self._segments.items():
            sequence = self.sequence(cid)
            out.append(
                SegmentVerdict(
                    cid=cid,
                    sequence=sequence,
                    complete=state.status == "complete",
                    in_progress=state.status == "open",
                )
            )
        return out

    @property
    def segments_seen(self) -> int:
        return len(self._segments)

    @property
    def open_count(self) -> int:
        return sum(1 for s in self._segments.values() if s.status == "open")


class SegmentTracker:
    """Incremental segment bookkeeping for live components.

    Processes use this to answer "am I in a local safe state?" — i.e. no
    critical communication segment involving my components is currently
    open.  It mirrors :class:`CCSSpec` but works event-by-event instead of
    over a finished trace.
    """

    def __init__(self, spec: CCSSpec):
        self.spec = spec
        self._open: Dict[int, List[str]] = {}
        self._violations: List[Tuple[int, Tuple[str, ...]]] = []
        self.completed = 0

    def observe(self, cid: int, action: str) -> None:
        """Record one atomic action; classifies the segment incrementally."""
        sequence = self._open.setdefault(cid, [])
        sequence.append(action)
        if self.spec.is_complete(sequence):
            del self._open[cid]
            self.completed += 1
        elif not self.spec.is_prefix(sequence):
            self._violations.append((cid, tuple(sequence)))
            del self._open[cid]

    @property
    def open_count(self) -> int:
        return len(self._open)

    @property
    def quiescent(self) -> bool:
        """No open segments — the local safe state of paper §3.2."""
        return not self._open

    @property
    def violations(self) -> Tuple[Tuple[int, Tuple[str, ...]], ...]:
        return tuple(self._violations)
