"""Integration tests for the threaded live runtime (real hot swaps)."""

import threading
import time

import pytest

from repro.components.filters import Filter, PassthroughFilter
from repro.core.actions import ActionLibrary, AdaptiveAction
from repro.core.invariants import InvariantSet
from repro.core.model import ComponentUniverse
from repro.errors import RuntimeHostError
from repro.runtime import InMemoryTransport, LiveAdaptationSystem, PipelineApp
from repro.runtime.transport import STOP
from repro.protocol.messages import Envelope, StatusQuery
from repro.safety import check_safe


class Scaler(Filter):
    """Multiplies items; the live analogue of an encoder variant."""

    def __init__(self, name, factor):
        super().__init__(name)
        self.factor = factor

    def process(self, item):
        return [item * self.factor]


FACTORS = {"F1": 10, "F2": 100, "F3": 1000}


def filter_factory(name):
    return Scaler(name, FACTORS[name])


def make_system(**kwargs):
    universe = ComponentUniverse.from_names(
        ["F1", "F2", "F3"], {n: "node" for n in FACTORS}
    )
    invariants = InvariantSet.of("one_of(F1, F2, F3)")
    actions = ActionLibrary(
        [
            AdaptiveAction.replace("S12", "F1", "F2", 5),
            AdaptiveAction.replace("S23", "F2", "F3", 5),
            AdaptiveAction.replace("S21", "F2", "F1", 5),
        ]
    )
    outputs = []
    app = PipelineApp(filter_factory, sink=outputs.append, interval=0.001)
    system = LiveAdaptationSystem(
        universe,
        invariants,
        actions,
        universe.configuration("F1"),
        apps={"node": app},
        **kwargs,
    )
    return system, app, outputs


class TestTransport:
    def test_register_and_send(self):
        transport = InMemoryTransport()
        q = transport.register("x")
        transport.send(Envelope("a", "x", StatusQuery(step_key="k")))
        assert q.get_nowait().message.step_key == "k"

    def test_duplicate_endpoint_rejected(self):
        transport = InMemoryTransport()
        transport.register("x")
        with pytest.raises(RuntimeHostError):
            transport.register("x")

    def test_unknown_destination_rejected(self):
        transport = InMemoryTransport()
        with pytest.raises(RuntimeHostError):
            transport.send(Envelope("a", "nowhere", StatusQuery(step_key="k")))

    def test_stop_sentinel(self):
        transport = InMemoryTransport()
        q = transport.register("x")
        transport.stop_endpoint("x")
        assert q.get_nowait() is STOP


class TestLiveAdaptation:
    def test_single_step_swap(self):
        system, app, outputs = make_system()
        with system:
            time.sleep(0.03)
            outcome = system.adapt_to(
                system.universe.configuration("F2"), timeout=15
            )
            time.sleep(0.03)
        assert outcome.succeeded
        assert system.hosts["node"].components == {"F2"}
        # outputs show both regimes: ×10 before the swap, ×100 after
        assert any(o % 100 == 0 for o in outputs)

    def test_multi_step_plan(self):
        system, app, outputs = make_system()
        with system:
            time.sleep(0.02)
            outcome = system.adapt_to(
                system.universe.configuration("F3"), timeout=15
            )
        assert outcome.succeeded
        assert outcome.steps_committed == 2  # F1→F2→F3

    def test_pipeline_keeps_processing(self):
        system, app, outputs = make_system()
        with system:
            time.sleep(0.03)
            before = app.items_processed
            system.adapt_to(system.universe.configuration("F2"), timeout=15)
            time.sleep(0.05)
            after = app.items_processed
        assert after > before  # survived the adaptation and kept working

    def test_trace_passes_safety_checker(self):
        system, app, outputs = make_system()
        with system:
            time.sleep(0.02)
            system.adapt_to(system.universe.configuration("F2"), timeout=15)
        report = check_safe(system.trace, system.planner.invariants)
        assert report.ok, report.violations[:3]

    def test_sequential_adaptations(self):
        system, app, outputs = make_system()
        with system:
            assert system.adapt_to(
                system.universe.configuration("F2"), timeout=15
            ).succeeded
            assert system.adapt_to(
                system.universe.configuration("F1"), timeout=15
            ).succeeded
        assert system.hosts["node"].components == {"F1"}

    def test_unsafe_target_rejected_immediately(self):
        from repro.errors import UnsafeConfigurationError

        system, app, outputs = make_system()
        with system:
            with pytest.raises(UnsafeConfigurationError):
                system.adapt_to(system.universe.configuration("F1", "F2"))

    def test_shutdown_idempotent_workers(self):
        system, app, outputs = make_system()
        system.start()
        system.shutdown()
        # threads are gone; a second shutdown of hosts would fail loudly if
        # the receive loops were still alive — reaching here is the test.


class StuckLiveApp(PipelineApp):
    """Never reaches the local safe state: live fail-to-reset injection."""

    def begin_reset(self, step_key, action, inject_flush, await_flush):
        pass  # never call local_safe


class TestLiveFailureHandling:
    def test_fail_to_reset_rolls_back_with_real_timers(self):
        from repro.protocol.failures import FailurePolicy

        universe = ComponentUniverse.from_names(
            ["F1", "F2", "F3"], {n: "node" for n in FACTORS}
        )
        invariants = InvariantSet.of("one_of(F1, F2, F3)")
        actions = ActionLibrary(
            [AdaptiveAction.replace("S12", "F1", "F2", 5)]
        )
        outputs = []
        app = StuckLiveApp(filter_factory, sink=outputs.append, interval=0.001)
        system = LiveAdaptationSystem(
            universe,
            invariants,
            actions,
            universe.configuration("F1"),
            apps={"node": app},
            policy=FailurePolicy(
                reset_timeout=30.0,
                resume_timeout=20.0,
                rollback_timeout=20.0,
                retransmit_interval=10.0,
            ),
            time_scale=0.001,  # 30 time units ≈ 30 ms wall
        )
        with system:
            outcome = system.adapt_to(
                system.universe.configuration("F2"), timeout=20
            )
            # the only path needs the stuck node → abort at the source
            assert outcome.status in ("aborted", "await_user")
            assert system.committed == universe.configuration("F1")
            assert system.hosts["node"].components == {"F1"}
        report = check_safe(system.trace, invariants)
        assert report.ok, report.violations[:3]
