"""Assembly of the full §5 scenario: cluster, CCS spec, flush roles.

The critical communication segment of the video stream is one packet's
journey per destination: ``encode → send → receive → decode`` (§3: "the
transmission of each datagram packet is a critical communication
segment").  CIDs are ``seq * stride + client_index`` so each multicast
destination is its own segment.

The **flush provider** encodes the global-safe-condition analysis:

* composite actions touching an encoder *and* decoders (Table 2's A6–A9,
  A13–A15) block the server until the drain marker has flushed the
  channel — this is why the paper costs them ~10× a single action;
* decoder-only actions that *reduce* decode capability on a process
  (e.g. A4 replaces the 128/64 decoder D2 with the 128-only D3) need the
  upstream to inject a marker but **not** to block: packets after the
  marker are decodable by the new chain because the target configuration
  is safe (the dependency invariants are exactly decode-compatibility);
* capability-preserving swaps (A2: D1→D2, D2 decodes everything D1 did)
  need no drain at all — matching §5.2's "the global safe state of this
  action is the same as the local safe state of the device".
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Mapping, Optional, Tuple

from repro.apps.video.client import VideoClientApp
from repro.apps.video.server import VideoServerApp
from repro.apps.video.system import (
    DECODER_SCHEMES,
    ENCODER_SCHEMES,
    paper_source,
    paper_target,
    video_actions,
    video_invariants,
    video_universe,
)
from repro.ccs import CCSSpec
from repro.core.actions import ActionLibrary, AdaptiveAction
from repro.core.model import ComponentUniverse, Configuration
from repro.protocol.failures import FailurePolicy
from repro.safety import SafetyReport, check_safe
from repro.sim.cluster import AdaptationCluster, AdaptationOutcome, ProcessApp
from repro.sim.net import DelayModel, FixedDelay, LossModel

CID_STRIDE = 8
CLIENTS: Tuple[str, ...] = ("handheld", "laptop")

VIDEO_CCS = CCSSpec([("encode", "send", "receive", "decode")], name="video-packet")


def cid_for(seq: int, client_index: int) -> int:
    """The critical-communication identifier of (packet, destination)."""
    return seq * CID_STRIDE + client_index


def _decoder_processes(universe: ComponentUniverse, action: AdaptiveAction) -> FrozenSet[str]:
    return frozenset(
        universe.process_of(name)
        for name in action.touched
        if name in DECODER_SCHEMES
    )


def _capability_reduced(action: AdaptiveAction, process: str,
                        universe: ComponentUniverse) -> bool:
    """Does *process* lose any decode scheme it had, under this action?

    Compares the schemes of the decoders removed from the process against
    the union of schemes of decoders added on it — losing a scheme means
    in-flight packets under that scheme could become undecodable, so the
    channel must be drained first.
    """
    removed: FrozenSet[str] = frozenset()
    gained: FrozenSet[str] = frozenset()
    for name in action.removes:
        if name in DECODER_SCHEMES and universe.process_of(name) == process:
            removed |= DECODER_SCHEMES[name]
    for name in action.adds:
        if name in DECODER_SCHEMES and universe.process_of(name) == process:
            gained |= DECODER_SCHEMES[name]
    return bool(removed - gained)


def make_video_flush_provider(universe: Optional[ComponentUniverse] = None):
    """Build the flush provider for the video topology (see module doc)."""
    universe = universe or video_universe()
    encoder_host = universe.process_of("E1")

    def provider(
        action: AdaptiveAction, participants: FrozenSet[str]
    ) -> Tuple[FrozenSet[str], FrozenSet[str]]:
        touches_encoder = bool(set(ENCODER_SCHEMES) & action.touched)
        decoder_procs = _decoder_processes(universe, action)
        if touches_encoder and decoder_procs:
            # Composite encoder+decoder action: server blocks after the
            # marker; every decoder-side participant drains before its swap.
            return frozenset((encoder_host,)), decoder_procs
        reduced = frozenset(
            p for p in decoder_procs if _capability_reduced(action, p, universe)
        )
        if reduced:
            # Decoder-only, capability-reducing: marker without blocking.
            return frozenset((encoder_host,)), reduced
        return frozenset(), frozenset()

    return provider


# Default provider instance over the standard video universe.
video_flush_provider = make_video_flush_provider()


def make_strict_flush_provider(universe: Optional[ComponentUniverse] = None):
    """Conservative ablation variant: drain on *every* decoder-touching step.

    Ignores the capability analysis — even capability-preserving swaps
    like A2 wait for a marker.  Safe but strictly more disruptive; the
    drain-policy ablation bench quantifies the cost of the conservatism.
    """
    universe = universe or video_universe()
    encoder_host = universe.process_of("E1")

    def provider(
        action: AdaptiveAction, participants: FrozenSet[str]
    ) -> Tuple[FrozenSet[str], FrozenSet[str]]:
        decoder_procs = _decoder_processes(universe, action)
        if not decoder_procs:
            return frozenset(), frozenset()
        return frozenset((encoder_host,)), decoder_procs

    return provider


# Drain-policy registry for the ablation benches: "none" disables the
# global safe condition entirely (demonstrably unsafe, even on the MAP);
# "capability" is the default minimal-drain analysis; "always" is the
# conservative variant.
FLUSH_MODES = ("none", "capability", "always")


def flush_provider_for_mode(mode: str, universe: Optional[ComponentUniverse] = None):
    from repro.protocol.manager import no_flush

    if mode == "none":
        return no_flush
    if mode == "capability":
        return make_video_flush_provider(universe)
    if mode == "always":
        return make_strict_flush_provider(universe)
    raise ValueError(f"unknown flush mode {mode!r}; options: {FLUSH_MODES}")


def build_video_cluster(
    *,
    seed: int = 0,
    initial: Optional[Configuration] = None,
    frame_interval: float = 2.0,
    data_delay: Optional[DelayModel] = None,
    control_delay: Optional[DelayModel] = None,
    data_loss: Optional[LossModel] = None,
    control_loss: Optional[LossModel] = None,
    policy: Optional[FailurePolicy] = None,
    replan_k: int = 8,
    flush_mode: str = "capability",
    extended: bool = False,
    bus=None,
) -> AdaptationCluster:
    """Assemble the full simulated video system of Figure 3.

    Data-plane channels (server → client data endpoints) default to a
    5 ms one-way delay so several packets are in flight at any moment —
    the situation that makes unsafe adaptation observable.  Control
    channels default to 1 ms.  ``flush_mode`` selects the drain policy
    (see :data:`FLUSH_MODES`); anything but the default exists for the
    drain-policy ablation.
    """
    if extended:
        from repro.apps.video.extended import (
            extended_actions,
            extended_invariants,
            extended_source,
            extended_universe,
        )

        universe = extended_universe()
        invariants = extended_invariants()
        actions = extended_actions()
        default_initial = extended_source()
    else:
        universe = video_universe()
        invariants = video_invariants()
        actions = video_actions()
        default_initial = paper_source(universe)
    initial = initial if initial is not None else default_initial
    apps: Dict[str, ProcessApp] = {
        "server": VideoServerApp(
            clients=CLIENTS,
            frame_interval=frame_interval,
            camera_seed=seed,
            cid_stride=CID_STRIDE,
        ),
    }
    for index, client in enumerate(CLIENTS):
        apps[client] = VideoClientApp(client_index=index, cid_stride=CID_STRIDE)
    cluster = AdaptationCluster(
        universe,
        invariants,
        actions,
        initial,
        seed=seed,
        apps=apps,
        policy=policy,
        flush_provider=flush_provider_for_mode(flush_mode, universe),
        default_delay=control_delay or FixedDelay(1.0),
        default_loss=control_loss,
        replan_k=replan_k,
        bus=bus,
    )
    data_delay = data_delay or FixedDelay(5.0)
    for client in CLIENTS:
        cluster.network.set_channel(
            "server", f"{client}.data", delay=data_delay, loss=data_loss
        )
    cluster.start_apps()
    return cluster


class VideoScenario:
    """End-to-end runner for the §5.2 walk-through (and variations).

    Streams for a warm-up period, performs the adaptation to the target
    configuration, streams a cool-down period so in-flight traffic lands,
    then checks the paper's safety definition over the full trace.
    """

    def __init__(self, cluster: Optional[AdaptationCluster] = None, **kwargs):
        self.cluster = cluster or build_video_cluster(**kwargs)

    @property
    def server(self) -> VideoServerApp:
        return self.cluster.hosts["server"].app  # type: ignore[return-value]

    def client(self, name: str) -> VideoClientApp:
        return self.cluster.hosts[name].app  # type: ignore[return-value]

    def run(
        self,
        target: Optional[Configuration] = None,
        warmup: float = 50.0,
        cooldown: float = 50.0,
        until: float = 1_000_000.0,
    ) -> AdaptationOutcome:
        """Warm up, adapt, cool down; returns the adaptation outcome."""
        sim = self.cluster.sim
        target = target if target is not None else paper_target(self.cluster.universe)
        sim.run(until=sim.now + warmup)
        outcome = self.cluster.adapt_to(target, until=until)
        sim.run(until=sim.now + cooldown)
        return outcome

    def safety_report(self, check_discipline: bool = True) -> SafetyReport:
        return check_safe(
            self.cluster.trace,
            self.cluster.invariants,
            ccs=VIDEO_CCS,
            check_discipline=check_discipline,
        )

    def stream_stats(self) -> Mapping[str, int]:
        """Aggregate data-plane counters for reports and assertions."""
        stats = {
            "frames_sent": self.server.frames_sent,
            "packets_sent": self.server.packets_sent,
        }
        for name in CLIENTS:
            app = self.client(name)
            stats[f"{name}_received"] = app.packets_received
            stats[f"{name}_ok"] = app.packets_ok
            stats[f"{name}_corrupt"] = app.packets_corrupt
            stats[f"{name}_frames"] = app.frames_played
        return stats
