"""SpecRegistry: multi-tenant manifest registry over a PlanningService.

The :class:`~repro.serve.service.PlanningService` keys warm planners by
the content digest of a compiled ``(S, I, A)`` spec; this registry adds
the **manifest layer** on top — named configurations, ``[properties]``
formulas, component counts — so control-plane requests can say
``"source": "baseline"`` instead of shipping bit vectors.  Uploading a
spec *is* uploading manifest text: the registry parses it, registers the
compiled spec with the service, and remembers the parsed manifest under
the digest.

The registry is LRU-bounded (``max_specs``): registering past the bound
evicts the least-recently-used spec, dropping its warm planner from the
service as well.  In ``--workers`` mode each worker process gets a
``shard=(index, total)`` and **owns** the digests that hash onto it;
foreign specs are still served (any worker can be asked anything) but
are marked *transient* and evicted first, so the shard owner is the
process that keeps a spec's caches warm.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Tuple

from repro.manifest import SystemManifest, loads
from repro.serve.service import PlanningService


class SpecRecord:
    """One registered spec: its digest plus the parsed manifest."""

    __slots__ = ("digest", "manifest", "transient")

    def __init__(
        self, digest: str, manifest: SystemManifest, transient: bool = False
    ):
        self.digest = digest
        self.manifest = manifest
        #: True on a sharded worker that does not own this digest
        self.transient = transient


class SpecRegistry:
    """LRU-bounded digest → :class:`SpecRecord` map, synced to a service.

    Args:
        service: the planning service warm caches live in; evicting a
            record evicts the service entry too.
        max_specs: LRU bound on registered specs (≥ 1).
        shard: ``(index, total)`` worker identity, or ``None`` when the
            process serves the whole digest space.
    """

    def __init__(
        self,
        service: PlanningService,
        max_specs: int = 64,
        shard: Optional[Tuple[int, int]] = None,
    ):
        if max_specs < 1:
            raise ValueError(f"max_specs must be >= 1, got {max_specs}")
        if shard is not None:
            index, total = shard
            if not (total >= 1 and 0 <= index < total):
                raise ValueError(f"shard index/total out of range: {shard}")
        self.service = service
        self.max_specs = max_specs
        self.shard = shard
        self._lock = threading.RLock()
        self._records: "OrderedDict[str, SpecRecord]" = OrderedDict()

    # -- sharding ----------------------------------------------------------------
    def owns(self, digest: str) -> bool:
        """True when this process's shard is the home of *digest*.

        Unsharded registries own everything.  The digest is already a
        uniform hash, so its leading 32 bits modulo the worker count is
        a stable, even assignment.
        """
        if self.shard is None:
            return True
        index, total = self.shard
        return int(digest[:8], 16) % total == index

    # -- registration ------------------------------------------------------------
    def register(self, text: str) -> Tuple[SpecRecord, bool]:
        """Parse manifest *text* and register its spec.

        Returns ``(record, created)`` — *created* is False when an equal
        spec (same content digest) was already registered, in which case
        the existing record is refreshed in LRU order and returned.
        Raises :class:`repro.errors.ParseError` on bad manifest text.
        """
        manifest = loads(text)
        digest = self.service.register(
            manifest.universe, manifest.invariants, manifest.actions
        )
        with self._lock:
            record = self._records.get(digest)
            if record is not None:
                self._records.move_to_end(digest)
                return record, False
            record = SpecRecord(
                digest, manifest, transient=not self.owns(digest)
            )
            self._records[digest] = record
            self._evict_over_bound()
        return record, True

    def _evict_over_bound(self) -> None:
        """Drop LRU records past ``max_specs`` (transient ones first)."""
        while len(self._records) > self.max_specs:
            victim = next(
                (d for d, r in self._records.items() if r.transient),
                next(iter(self._records)),
            )
            del self._records[victim]
            self.service.evict(victim)

    # -- lookup ------------------------------------------------------------------
    def get(self, digest: str) -> SpecRecord:
        """The record for *digest*, refreshed in LRU order.

        Raises ``KeyError`` (message includes the digest) when absent.
        """
        with self._lock:
            record = self._records.get(digest)
            if record is None:
                raise KeyError(f"unknown spec digest {digest!r}")
            self._records.move_to_end(digest)
            return record

    def peek(self, digest: str) -> Optional[SpecRecord]:
        """Lock-free, LRU-neutral lookup for hot paths (None when absent)."""
        return self._records.get(digest)

    def __contains__(self, digest: str) -> bool:
        return digest in self._records

    def __len__(self) -> int:
        return len(self._records)

    def digests(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(self._records)

    def evict(self, digest: str) -> bool:
        """Drop a spec from registry and service; True when it existed."""
        with self._lock:
            existed = self._records.pop(digest, None) is not None
        # Sync the service either way: a spec registered through the
        # object-keyed service API may exist there without a record here.
        serviced = self.service.evict(digest)
        return existed or serviced

    # -- introspection -----------------------------------------------------------
    def describe(self) -> List[Dict[str, Any]]:
        """Per-spec listing merging registry facts with service counters."""
        with self._lock:
            records = list(self._records.values())
        counters = self.service.spec_stats()
        out: List[Dict[str, Any]] = []
        for record in sorted(records, key=lambda r: r.digest):
            doc: Dict[str, Any] = {
                "digest": record.digest,
                "components": len(record.manifest.universe),
                "configurations": sorted(record.manifest.configurations),
                "properties": sorted(record.manifest.properties),
                "owned": self.owns(record.digest),
            }
            spec_counters = dict(counters.get(record.digest, {}))
            # the service's "properties" counter is its compiled-formula
            # cache size; don't clobber the manifest's property names
            if "properties" in spec_counters:
                spec_counters["compiled_properties"] = spec_counters.pop(
                    "properties"
                )
            doc.update(spec_counters)
            out.append(doc)
        return out
