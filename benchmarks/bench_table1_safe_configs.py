"""Experiment T1 — Table 1: the safe configuration set.

Regenerates the paper's Table 1 (eight safe configurations over
``(D5,D4,D3,D2,D1,E2,E1)``) from the §5.1 invariants and checks it is
*exactly* the published set, then benchmarks the enumeration step of the
detection & setup phase.
"""

import pytest

from benchmarks.conftest import report
from repro.apps.video.system import video_invariants, video_universe
from repro.bench import format_table
from repro.core.space import SafeConfigurationSpace

TABLE1 = {
    "0100101": "{D1,D4,E1}",
    "1100101": "{D1,D4,D5,E1}",
    "1101001": "{D2,D4,D5,E1}",
    "1101010": "{D2,D4,D5,E2}",
    "1110010": "{D3,D4,D5,E2}",
    "0101001": "{D2,D4,E1}",
    "1001010": "{D2,D5,E2}",
    "1010010": "{D3,D5,E2}",
}


def enumerate_safe_set():
    space = SafeConfigurationSpace(video_universe(), video_invariants())
    return space.to_table()


def test_table1_safe_configuration_set(benchmark):
    rows = benchmark(enumerate_safe_set)
    got = dict(rows)
    assert got == TABLE1, "safe configuration set diverges from Table 1"
    report(
        "Table 1 — safe configuration set (regenerated)",
        format_table(["bit vector", "configuration"], rows),
    )
    benchmark.extra_info["safe_configurations"] = len(rows)


def test_table1_enumeration_scales_with_restriction(benchmark):
    """Restricted enumeration (only handheld decoders free) is the planner's
    fast path; it must agree with the full sweep on the pinned slice."""
    universe = video_universe()
    space = SafeConfigurationSpace(universe, video_invariants())
    source = universe.from_bits("0100101")

    def restricted():
        return space.enumerate_restricted(source, ["D1", "D2", "D3"])

    rows = benchmark(restricted)
    assert {universe.to_bits(c) for c in rows} == {"0100101", "0101001"}
