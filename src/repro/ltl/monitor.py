"""ptLTL runtime monitoring — the paper's §7 future work, built.

    "One promising approach is to use a temporal logic formula to specify
    the set of critical communication segments of a component.  The
    run-time component states can be monitored and the formula can then be
    dynamically evaluated.  If all the obligations of the formula are
    fulfilled in a state, then the state can be automatically identified
    as a safe state."

We implement exactly that: the ptLTL AST of :mod:`repro.ltl.ast`
evaluated *incrementally* in O(formula) per event (the standard
recursive-update construction), plus a :class:`SafeStateMonitor` that
watches a process's event stream and reports when the formula holds —
the automatically derived local safe state.

:class:`PTLTLMonitor` walks the AST with id-keyed value dicts; it is the
semantic source of truth that the compiled core
(:mod:`repro.ltl.compile`) and the naive full-history reference in the
test suite are both pinned against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

from repro.ltl.ast import PFormula
from repro.obs import Observer
from repro.trace import (
    AdaptationApplied,
    BlockRecord,
    CommRecord,
    ConfigCommitted,
    CorruptionRecord,
    RollbackRecord,
    TraceRecord,
)


class PTLTLMonitor:
    """Incremental evaluator: O(|formula|) per step, O(|formula|) state."""

    def __init__(self, formula: PFormula):
        self.formula = formula
        self._order = formula.subformulas()
        self._prev: Dict[int, bool] = {}
        self.steps = 0
        self.value: Optional[bool] = None

    def step(self, events: Iterable[str]) -> bool:
        """Feed one step's event set; returns the formula's current value."""
        event_set = frozenset(events)
        now: Dict[int, bool] = {}
        for sub in self._order:
            now[id(sub)] = sub._step(event_set, now, self._prev)
        self._prev = now
        self.steps += 1
        self.value = now[id(self.formula)]
        return self.value

    def run(self, trace: Iterable[Iterable[str]]) -> List[bool]:
        """Evaluate over a whole trace; returns the per-step values."""
        return [self.step(events) for events in trace]


@dataclass(frozen=True)
class BalancedPair:
    """A start/done event pair whose balance defines an open obligation."""

    start: str
    done: str


class SafeStateMonitor:
    """Automatic local-safe-state detection (§7 future work).

    Combines a ptLTL formula (arbitrary temporal obligations) with
    *balanced pairs* (counting obligations like "every begin-decode has a
    matching end-decode", which pure ptLTL cannot count).  The process is
    in a safe state when the formula holds **and** every pair is balanced
    — exactly "all the obligations of the formula are fulfilled in a
    state".
    """

    def __init__(
        self,
        formula: Optional[PFormula] = None,
        pairs: Iterable[BalancedPair] = (),
    ):
        self.monitor = PTLTLMonitor(formula) if formula is not None else None
        self.pairs = tuple(pairs)
        self._open: Dict[BalancedPair, int] = {pair: 0 for pair in self.pairs}
        self._callbacks: List[Callable[[], None]] = []

    def on_safe(self, callback: Callable[[], None]) -> None:
        """Register a callback fired whenever an observation lands in a
        safe state (used by agents waiting to reset)."""
        self._callbacks.append(callback)

    def observe(self, *events: str) -> bool:
        """Feed one step's events; returns whether the state is safe."""
        event_set = frozenset(events)
        for pair in self.pairs:
            if pair.start in event_set:
                self._open[pair] += 1
            if pair.done in event_set:
                if self._open[pair] == 0:
                    raise ValueError(
                        f"unmatched {pair.done!r} (no open {pair.start!r})"
                    )
                self._open[pair] -= 1
        formula_ok = True
        if self.monitor is not None:
            formula_ok = self.monitor.step(event_set)
        if self.safe and self._callbacks:
            for callback in self._callbacks:
                callback()
        return self.safe

    @property
    def open_obligations(self) -> int:
        return sum(self._open.values())

    @property
    def safe(self) -> bool:
        formula_ok = self.monitor.value if self.monitor is not None else True
        if formula_ok is None:  # no step observed yet: vacuously safe
            formula_ok = True
        return bool(formula_ok) and self.open_obligations == 0


def no_open_segments(start: str = "start", done: str = "done") -> SafeStateMonitor:
    """The canonical decoder safe-state monitor: no segment mid-flight."""
    return SafeStateMonitor(pairs=[BalancedPair(start, done)])


def record_events(record: TraceRecord) -> Tuple[str, ...]:
    """Default trace-record → proposition mapping for :class:`TemporalObserver`.

    Communication records contribute their atomic-action name directly
    (so CCS-style formulas can be written over ``encode``/``send``/...);
    lifecycle records contribute a fixed proposition each.  Records with
    no temporal meaning (notes) map to the empty tuple and do not step
    the monitor.
    """
    if isinstance(record, CommRecord):
        return (record.action,)
    if isinstance(record, BlockRecord):
        return ("block",) if record.blocked else ("resume",)
    if isinstance(record, ConfigCommitted):
        return ("commit",)
    if isinstance(record, AdaptationApplied):
        return ("adapt",)
    if isinstance(record, RollbackRecord):
        return ("rollback",)
    if isinstance(record, CorruptionRecord):
        return ("corruption",)
    return ()


@dataclass
class TemporalReport:
    """Terminal summary of a :class:`TemporalObserver`."""

    steps: int = 0
    holds: Optional[bool] = None
    unsafe_steps: int = 0
    first_unsafe_time: Optional[float] = None

    @property
    def ever_unsafe(self) -> bool:
        return self.unsafe_steps > 0


class TemporalObserver(Observer):
    """ptLTL / safe-state monitoring as an observation-bus subscriber.

    Replaces the bespoke per-application plumbing (``MonitoredApp``
    calling ``SafeStateMonitor.observe`` by hand): subscribe one of these
    to a trace's bus and the monitor is stepped from the published record
    stream itself, on any backend.  Wraps a :class:`SafeStateMonitor`
    (balanced pairs + formula; its safe-state callbacks keep firing), a
    bare :class:`PTLTLMonitor`, or a
    :class:`~repro.ltl.compile.CompiledMonitor` (the bit-slot core —
    anything exposing ``step(events) -> bool``).

    ``events`` maps each record to the step's proposition set
    (default :func:`record_events`); records mapping to no events are
    skipped, and an optional ``process`` filter restricts the stream to
    one process's records — local safe states are per-process in §3.2.
    """

    def __init__(
        self,
        monitor: Union[SafeStateMonitor, PTLTLMonitor, "StepMonitor"],
        events: Callable[[TraceRecord], Iterable[str]] = record_events,
        process: Optional[str] = None,
        name: str = "temporal",
    ):
        self.monitor = monitor
        self._events = events
        self._process = process
        self._name = name
        self._report = TemporalReport()

    @property
    def name(self) -> str:
        return self._name

    def feed(self, record: TraceRecord) -> None:
        if self._process is not None:
            owner = getattr(record, "process", None)
            if owner != self._process:
                return
        events = tuple(self._events(record))
        if not events:
            return
        if isinstance(self.monitor, SafeStateMonitor):
            holds = self.monitor.observe(*events)
        else:
            holds = self.monitor.step(events)
        report = self._report
        report.steps += 1
        report.holds = holds
        if not holds:
            report.unsafe_steps += 1
            if report.first_unsafe_time is None:
                report.first_unsafe_time = record.time

    @property
    def holds(self) -> Optional[bool]:
        """Current monitor value (None before the first stepped record)."""
        return self._report.holds

    def finish(self) -> TemporalReport:
        return self._report


class StepMonitor:  # pragma: no cover - structural typing aid only
    """Protocol-ish base for monitors steppable by event set (docs only)."""

    def step(self, events: Iterable[str]) -> bool:
        raise NotImplementedError
