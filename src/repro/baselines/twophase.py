"""Single-step two-phase-commit baseline (paper §4.4's comparison point).

"The interaction between the manager and the agents is similar to the
two-phase commit protocol [...] our protocol handles multiple adaptation
steps whereas the two-phase commit protocol only addresses a single
adaptation step."

This baseline runs the *entire* source→target delta as one coordinated
distributed step through the real protocol machinery — i.e. what a plain
2PC-style recomposition would do.  It is safe (the delta action's
endpoints are both safe configurations, all participants block, the
sender drains), but it maximizes blocking: the server stops streaming for
the whole drain + swap + resume cycle, which is exactly why Table 2
prices composite actions an order of magnitude above singles and why the
Minimum Adaptation Path avoids them.
"""

from __future__ import annotations

from repro.baselines.common import BaselineResult
from repro.core.model import Configuration
from repro.core.planner import AdaptationPlan, PlanStep
from repro.baselines.common import delta_action
from repro.sim.cluster import AdaptationCluster, AdaptationOutcome


class TwoPhaseSwap:
    """Whole-delta single-step adaptation through the safe protocol."""

    def __init__(self, cluster: AdaptationCluster, target: Configuration):
        self.cluster = cluster
        self.target = target
        self.result = BaselineResult(strategy="twophase")

    def build_plan(self) -> AdaptationPlan:
        source = self.cluster.manager.committed
        action = delta_action(source, self.target, action_id="2PC", cost=0.0)
        step = PlanStep(index=0, action=action, source=source, target=self.target)
        return AdaptationPlan(
            source=source, target=self.target, steps=(step,), total_cost=action.cost
        )

    def run(self, until: float = 1_000_000.0) -> AdaptationOutcome:
        """Execute the single-step plan to a terminal outcome."""
        self.result.started_at = self.cluster.sim.now
        outcome = self.cluster.run_plan(self.build_plan(), until=until)
        self.result.finished_at = self.cluster.sim.now
        self.result.swaps = 1
        self.result.done = outcome.succeeded
        return outcome
