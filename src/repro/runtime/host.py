"""Live agent host: one thread per adaptive process.

Mirrors :class:`repro.sim.cluster.ProcessHost` for real threads.  The
host's receive loop consumes control messages; agent effects execute under
an RLock so app-thread callbacks (``local_safe`` from a worker) and
queue-thread message handling never interleave mid-effect.  Blocking is a
:class:`threading.Event` the application's workers wait on.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Iterable, List, Optional, Set

from repro.core.actions import AdaptiveAction
from repro.core.model import ComponentUniverse
from repro.errors import RuntimeHostError
from repro.protocol.agent import AgentMachine
from repro.protocol.effects import (
    AbortReset,
    BlockProcess,
    Effect,
    ExecuteInAction,
    ExecutePostAction,
    ResumeProcess,
    Send,
    StartReset,
    UndoInAction,
)
from repro.protocol.messages import Envelope, FlushRequest
from repro.runtime.transport import STOP, InMemoryTransport
from repro.trace import AdaptationApplied, BlockRecord, RollbackRecord, Trace


class LiveApp:
    """Application adapter for the threaded runtime (mirror of ProcessApp)."""

    host: "LiveAgentHost"

    def attach(self, host: "LiveAgentHost") -> None:
        self.host = host

    def start(self) -> None:
        """Start application worker threads."""

    def stop(self) -> None:
        """Stop application worker threads (system shutdown)."""

    def begin_reset(
        self, step_key: str, action: AdaptiveAction, inject_flush: bool, await_flush: bool
    ) -> None:
        """Must eventually call ``self.host.local_safe(step_key)``."""
        self.host.local_safe(step_key)

    def abort_reset(self, step_key: str) -> None:
        pass

    def apply_action(self, action: AdaptiveAction) -> None:
        pass

    def undo_action(self, action: AdaptiveAction) -> None:
        pass

    def post_action(self, action: AdaptiveAction) -> None:
        pass

    def inject_marker(self, step_key: str) -> None:
        pass

    def on_blocked(self) -> None:
        pass

    def on_resumed(self) -> None:
        pass


class LiveAgentHost:
    """One adaptive process: receive thread + agent machine + app."""

    def __init__(
        self,
        process_id: str,
        transport: InMemoryTransport,
        universe: ComponentUniverse,
        components: Iterable[str],
        app: Optional[LiveApp] = None,
        trace: Optional[Trace] = None,
        clock: Callable[[], float] = time.monotonic,
        manager_id: str = "manager",
    ):
        self.process_id = process_id
        self.transport = transport
        self.universe = universe
        self.components: Set[str] = set(components)
        self.trace = trace if trace is not None else Trace()
        self.clock = clock
        self.app = app or LiveApp()
        self.app.attach(self)
        self.agent = AgentMachine(process_id, manager_id)
        self._lock = threading.RLock()
        self.running_event = threading.Event()  # set == full operation
        self.running_event.set()
        self._queue = transport.register(process_id)
        self._thread = threading.Thread(
            target=self._receive_loop, name=f"agent-{process_id}", daemon=True
        )

    # -- lifecycle ----------------------------------------------------------------
    def start(self) -> None:
        self._thread.start()
        self.app.start()

    def stop(self, timeout: float = 5.0) -> None:
        self.app.stop()
        self.transport.stop_endpoint(self.process_id)
        self._thread.join(timeout=timeout)
        if self._thread.is_alive():  # pragma: no cover - shutdown hygiene
            raise RuntimeHostError(f"agent thread {self.process_id} did not stop")

    @property
    def blocked(self) -> bool:
        return not self.running_event.is_set()

    # -- inbound ---------------------------------------------------------------
    def _receive_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is STOP:
                return
            assert isinstance(item, Envelope)
            if isinstance(item.message, FlushRequest):
                self.app.inject_marker(item.message.step_key)
                continue
            with self._lock:
                self._execute(self.agent.on_message(item.message))

    def local_safe(self, step_key: str) -> None:
        """App callback (any thread): local safe state reached."""
        with self._lock:
            self._execute(self.agent.on_local_safe(step_key))

    # -- effect interpreter ---------------------------------------------------------
    def _execute(self, effects: List[Effect]) -> None:
        pending = list(effects)
        while pending:
            effect = pending.pop(0)
            if isinstance(effect, Send):
                self.transport.send(
                    Envelope(self.process_id, effect.destination, effect.message)
                )
            elif isinstance(effect, StartReset):
                self.app.begin_reset(
                    effect.step_key,
                    effect.action,
                    effect.inject_flush,
                    effect.await_flush,
                )
            elif isinstance(effect, AbortReset):
                self.app.abort_reset(effect.step_key)
            elif isinstance(effect, BlockProcess):
                self.running_event.clear()
                self.trace.append(
                    BlockRecord(time=self.clock(), process=self.process_id, blocked=True)
                )
                self.app.on_blocked()
            elif isinstance(effect, ResumeProcess):
                self.running_event.set()
                self.trace.append(
                    BlockRecord(time=self.clock(), process=self.process_id, blocked=False)
                )
                self.app.on_resumed()
                pending.extend(self.agent.on_resumed(effect.step_key))
            elif isinstance(effect, ExecuteInAction):
                self._apply_delta(effect.action, inverse=False)
                self.app.apply_action(effect.action)
                self.trace.append(
                    AdaptationApplied(
                        time=self.clock(),
                        process=self.process_id,
                        action_id=effect.action.action_id,
                        removes=frozenset(self._local(effect.action.removes)),
                        adds=frozenset(self._local(effect.action.adds)),
                    )
                )
                pending.extend(self.agent.on_in_action_applied(effect.step_key))
            elif isinstance(effect, UndoInAction):
                self._apply_delta(effect.action, inverse=True)
                self.app.undo_action(effect.action)
                self.trace.append(
                    RollbackRecord(
                        time=self.clock(),
                        process=self.process_id,
                        action_id=effect.action.action_id,
                    )
                )
                pending.extend(self.agent.on_undone(effect.step_key))
            elif isinstance(effect, ExecutePostAction):
                self.app.post_action(effect.action)
            else:  # pragma: no cover - defensive
                raise RuntimeHostError(f"unhandled agent effect {effect!r}")

    def _local(self, names: Iterable[str]) -> Set[str]:
        return {
            name for name in names
            if self.universe.process_of(name) == self.process_id
        }

    def _apply_delta(self, action: AdaptiveAction, inverse: bool) -> None:
        removes = self._local(action.adds if inverse else action.removes)
        adds = self._local(action.removes if inverse else action.adds)
        self.components -= removes
        self.components |= adds
