"""SafetyMemo: the hybrid bitset/dict memo must behave as a dict."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.parallel import (
    MAX_BITSET_COMPONENTS,
    SafetyMemo,
    iter_plane_masks,
    plane_size,
)
from repro.parallel.bitset import set_plane_bits


def test_backing_selection():
    assert SafetyMemo(4).backing == "bitset"
    assert SafetyMemo(MAX_BITSET_COMPONENTS).backing == "bitset"
    assert SafetyMemo(MAX_BITSET_COMPONENTS + 1).backing == "dict"
    assert SafetyMemo(None).backing == "dict"


def test_plane_size():
    assert plane_size(0) == 1
    assert plane_size(3) == 1
    assert plane_size(4) == 2
    assert plane_size(20) == 1 << 17


@pytest.mark.parametrize("n", [4, None])
def test_dict_interface_basics(n):
    memo = SafetyMemo(n)
    assert not memo
    assert len(memo) == 0
    assert memo.get(3) is None
    assert 3 not in memo
    with pytest.raises(KeyError):
        memo[3]
    memo[3] = True
    memo[5] = False
    assert memo
    assert len(memo) == 2
    assert memo[3] is True
    assert memo[5] is False
    assert memo.get(5) is False
    assert 5 in memo and 4 not in memo
    # overwrite flips the verdict without double-counting
    memo[3] = False
    assert len(memo) == 2
    assert memo[3] is False
    memo[3] = True
    assert memo[3] is True


@given(
    ops=st.lists(
        st.tuples(st.integers(min_value=0, max_value=255), st.booleans()),
        max_size=60,
    )
)
@settings(max_examples=200, deadline=None)
def test_bitset_memo_matches_dict_model(ops):
    memo = SafetyMemo(8)
    model = {}
    for mask, verdict in ops:
        memo[mask] = verdict
        model[mask] = verdict
    assert len(memo) == len(model)
    assert dict(memo.items()) == model
    assert sorted(memo) == sorted(model)
    assert set(memo.keys()) == set(model.keys())
    for mask in range(256):
        assert (mask in memo) == (mask in model)
        assert memo.get(mask, "absent") == model.get(mask, "absent")


@given(masks=st.sets(st.integers(min_value=0, max_value=255), max_size=64))
@settings(max_examples=200, deadline=None)
def test_iter_plane_masks_round_trip(masks):
    plane = bytearray(plane_size(8))
    set_plane_bits(plane, masks)
    assert list(iter_plane_masks(bytes(plane))) == sorted(masks)


def test_iter_plane_masks_tail_bytes():
    # a 3-byte plane exercises the non-word tail path
    plane = bytearray(3)
    set_plane_bits(plane, [0, 7, 8, 17, 23])
    assert list(iter_plane_masks(bytes(plane))) == [0, 7, 8, 17, 23]


@given(
    known=st.lists(
        st.tuples(st.integers(min_value=0, max_value=255), st.booleans()),
        max_size=30,
    ),
    incoming=st.sets(st.integers(min_value=0, max_value=255), max_size=40),
)
@settings(max_examples=200, deadline=None)
def test_or_safe_plane_matches_dict_model(known, incoming):
    for n in (8, None):  # bitset backing and dict fallback
        memo = SafetyMemo(n)
        model = {}
        for mask, verdict in known:
            memo[mask] = verdict
            model[mask] = verdict
        plane = bytearray(plane_size(8))
        set_plane_bits(plane, incoming)
        added = memo.or_safe_plane(bytes(plane))
        assert added == sum(1 for m in incoming if m not in model)
        for mask in incoming:
            model[mask] = True
        assert dict(memo.items()) == model
        assert len(memo) == len(model)


def test_or_safe_plane_rejects_size_mismatch():
    memo = SafetyMemo(8)
    with pytest.raises(ValueError, match="plane is"):
        memo.or_safe_plane(b"\x00" * 3)


def test_memo_values_are_real_bools():
    memo = SafetyMemo(8)
    memo[9] = True
    memo[10] = False
    assert memo[9] is True and memo[10] is False
    assert all(isinstance(v, bool) for _, v in memo.items())
