"""Golden-output tests: the fixture's text/JSON/SARIF renderings are frozen.

Regenerate after an intentional output change with::

    REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/lint/test_golden.py
"""

import os
from pathlib import Path

import pytest

from repro.lint import lint_text, render_json, render_sarif, render_text

FIXTURE = Path("tests/lint/fixtures/defective.manifest")
GOLDEN = Path("tests/lint/golden")

RENDERERS = {
    "defective.txt": lambda report: render_text(report, verbose=True),
    "defective.json": render_json,
    "defective.sarif": render_sarif,
}


@pytest.mark.parametrize("name", sorted(RENDERERS))
def test_golden(name):
    report = lint_text(
        FIXTURE.read_text(encoding="utf-8"), path=FIXTURE.as_posix()
    )
    rendered = RENDERERS[name](report) + "\n"
    golden_path = GOLDEN / name
    if os.environ.get("REGEN_GOLDEN"):
        golden_path.write_text(rendered, encoding="utf-8")
    expected = golden_path.read_text(encoding="utf-8")
    assert rendered == expected, (
        f"{name} drifted from its golden output; rerun with REGEN_GOLDEN=1 "
        "if the change is intentional"
    )
