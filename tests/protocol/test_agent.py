"""Unit tests for the agent state machine (Figure 1)."""

import pytest

from repro.core.actions import AdaptiveAction
from repro.errors import IllegalTransitionError
from repro.protocol.agent import AgentMachine, AgentState
from repro.protocol.effects import (
    AbortReset,
    BlockProcess,
    ExecuteInAction,
    ExecutePostAction,
    ResumeProcess,
    Send,
    StartReset,
    UndoInAction,
)
from repro.protocol.messages import (
    AdaptDone,
    ResetCmd,
    ResetDone,
    ResumeCmd,
    ResumeDone,
    RollbackCmd,
    RollbackDone,
    StatusQuery,
    StatusReport,
)

ACTION = AdaptiveAction.replace("A2", "D1", "D2", 10)
KEY = "plan1/0#0"


def reset_cmd(participants=("handheld",), key=KEY, **kwargs):
    return ResetCmd(
        step_key=key,
        action=ACTION,
        participants=frozenset(participants),
        **kwargs,
    )


def fresh_agent():
    return AgentMachine("handheld", manager_id="mgr")


def sends(effects):
    return [e.message for e in effects if isinstance(e, Send)]


class TestHappyPathMultiParticipant:
    def test_reset_starts_resetting(self):
        agent = fresh_agent()
        effects = agent.on_message(reset_cmd(("handheld", "server")))
        assert agent.state == AgentState.RESETTING
        assert isinstance(effects[0], StartReset)
        assert effects[0].action == ACTION

    def test_local_safe_blocks_reports_and_executes(self):
        agent = fresh_agent()
        agent.on_message(reset_cmd(("handheld", "server")))
        effects = agent.on_local_safe(KEY)
        assert agent.state == AgentState.SAFE
        assert isinstance(effects[0], BlockProcess)
        assert isinstance(effects[1], Send)
        assert isinstance(effects[1].message, ResetDone)
        assert isinstance(effects[2], ExecuteInAction)

    def test_in_action_applied_waits_blocked(self):
        agent = fresh_agent()
        agent.on_message(reset_cmd(("handheld", "server")))
        agent.on_local_safe(KEY)
        effects = agent.on_in_action_applied(KEY)
        assert agent.state == AgentState.ADAPTED
        assert isinstance(effects[0].message, AdaptDone)
        # multi-participant: no self-resume
        assert not any(isinstance(e, ResumeProcess) for e in effects)

    def test_resume_cmd_then_resumed(self):
        agent = fresh_agent()
        agent.on_message(reset_cmd(("handheld", "server")))
        agent.on_local_safe(KEY)
        agent.on_in_action_applied(KEY)
        effects = agent.on_message(ResumeCmd(step_key=KEY))
        assert agent.state == AgentState.RESUMING
        assert isinstance(effects[0], ResumeProcess)
        effects = agent.on_resumed(KEY)
        assert agent.state == AgentState.RUNNING
        assert isinstance(effects[0].message, ResumeDone)
        assert any(isinstance(e, ExecutePostAction) for e in effects)


class TestSoloParticipant:
    def test_auto_resume_after_in_action(self):
        agent = fresh_agent()
        agent.on_message(reset_cmd(("handheld",)))
        agent.on_local_safe(KEY)
        effects = agent.on_in_action_applied(KEY)
        assert agent.state == AgentState.RESUMING
        assert isinstance(effects[0].message, AdaptDone)
        assert any(isinstance(e, ResumeProcess) for e in effects)

    def test_resume_done_after_host_confirms(self):
        agent = fresh_agent()
        agent.on_message(reset_cmd(("handheld",)))
        agent.on_local_safe(KEY)
        agent.on_in_action_applied(KEY)
        effects = agent.on_resumed(KEY)
        assert isinstance(effects[0].message, ResumeDone)
        assert agent.state == AgentState.RUNNING


class TestIdempotency:
    def finished_agent(self):
        agent = fresh_agent()
        agent.on_message(reset_cmd(("handheld",)))
        agent.on_local_safe(KEY)
        agent.on_in_action_applied(KEY)
        agent.on_resumed(KEY)
        return agent

    def test_duplicate_reset_replays_final_answer(self):
        agent = self.finished_agent()
        effects = agent.on_message(reset_cmd(("handheld",)))
        assert isinstance(sends(effects)[0], ResumeDone)
        assert agent.state == AgentState.RUNNING

    def test_duplicate_resume_replays_final_answer(self):
        agent = self.finished_agent()
        effects = agent.on_message(ResumeCmd(step_key=KEY))
        assert isinstance(sends(effects)[0], ResumeDone)

    def test_retransmitted_reset_mid_safe_resends_reset_done(self):
        agent = fresh_agent()
        agent.on_message(reset_cmd(("handheld", "server")))
        agent.on_local_safe(KEY)
        agent.on_in_action_applied(KEY)  # now ADAPTED
        effects = agent.on_message(reset_cmd(("handheld", "server")))
        assert isinstance(sends(effects)[0], AdaptDone)

    def test_retransmitted_reset_while_resetting_is_silent(self):
        agent = fresh_agent()
        agent.on_message(reset_cmd(("handheld", "server")))
        assert agent.on_message(reset_cmd(("handheld", "server"))) == []

    def test_stale_resume_for_unknown_step_ignored(self):
        agent = fresh_agent()
        assert agent.on_message(ResumeCmd(step_key="plan9/9#9")) == []

    def test_stale_host_callbacks_ignored(self):
        agent = fresh_agent()
        assert agent.on_local_safe("nope") == []
        assert agent.on_in_action_applied("nope") == []
        assert agent.on_resumed("nope") == []

    def test_status_query_answered(self):
        agent = fresh_agent()
        effects = agent.on_message(StatusQuery(step_key="x"))
        report = sends(effects)[0]
        assert isinstance(report, StatusReport)
        assert report.state == "running"


class TestRollback:
    def test_rollback_while_resetting_aborts(self):
        agent = fresh_agent()
        agent.on_message(reset_cmd(("handheld", "server")))
        effects = agent.on_message(RollbackCmd(step_key=KEY))
        assert agent.state == AgentState.RUNNING
        assert isinstance(effects[0], AbortReset)
        assert isinstance(sends(effects)[0], RollbackDone)

    def test_rollback_after_in_action_undoes(self):
        agent = fresh_agent()
        agent.on_message(reset_cmd(("handheld", "server")))
        agent.on_local_safe(KEY)
        agent.on_in_action_applied(KEY)
        effects = agent.on_message(RollbackCmd(step_key=KEY))
        assert agent.state == AgentState.ROLLING_BACK
        assert isinstance(effects[0], UndoInAction)
        effects = agent.on_undone(KEY)
        assert isinstance(effects[0], ResumeProcess)
        effects = agent.on_resumed(KEY)
        assert isinstance(sends(effects)[0], RollbackDone)
        assert agent.state == AgentState.RUNNING

    def test_rollback_for_never_seen_step_acked_directly(self):
        agent = fresh_agent()
        effects = agent.on_message(RollbackCmd(step_key="plan1/3#0"))
        done = sends(effects)[0]
        assert isinstance(done, RollbackDone)
        assert done.step_key == "plan1/3#0"

    def test_rollback_after_local_completion_undoes_solo_commit(self):
        agent = fresh_agent()
        agent.on_message(reset_cmd(("handheld",)))
        agent.on_local_safe(KEY)
        agent.on_in_action_applied(KEY)
        agent.on_resumed(KEY)  # locally complete
        effects = agent.on_message(RollbackCmd(step_key=KEY))
        assert isinstance(effects[0], BlockProcess)
        assert isinstance(effects[1], UndoInAction)
        agent.on_undone(KEY)
        effects = agent.on_resumed(KEY)
        assert isinstance(sends(effects)[0], RollbackDone)

    def test_duplicate_rollback_replays(self):
        agent = fresh_agent()
        agent.on_message(reset_cmd(("handheld", "server")))
        agent.on_message(RollbackCmd(step_key=KEY))
        effects = agent.on_message(RollbackCmd(step_key=KEY))
        assert isinstance(sends(effects)[0], RollbackDone)

    def test_new_attempt_after_rollback_is_fresh(self):
        agent = fresh_agent()
        agent.on_message(reset_cmd(("handheld", "server")))
        agent.on_message(RollbackCmd(step_key=KEY))
        retry_key = "plan1/0#1"
        effects = agent.on_message(reset_cmd(("handheld", "server"), key=retry_key))
        assert isinstance(effects[0], StartReset)
        assert agent.step_key == retry_key


class TestErrors:
    def test_new_step_while_busy_raises(self):
        agent = fresh_agent()
        agent.on_message(reset_cmd(("handheld", "server")))
        with pytest.raises(IllegalTransitionError):
            agent.on_message(reset_cmd(("handheld", "server"), key="plan1/1#0"))

    def test_unknown_message_type_raises(self):
        agent = fresh_agent()
        with pytest.raises(IllegalTransitionError):
            agent.on_message(ResetDone(step_key=KEY, process="x"))
