"""Bitmask compilation of dependency expressions (performance layer).

The detection & setup phase evaluates the same invariant expressions over
thousands of configurations: once per candidate during safe-space
enumeration, once per ``(vertex, action)`` pair during SAG construction,
and once per expansion during lazy A*.  Walking the
:mod:`repro.expr.ast` tree each time dominates the phase's cost.

This module compiles an :class:`~repro.expr.ast.Expr` once, against a
``name -> bit value`` mapping (see
:attr:`repro.core.model.ComponentUniverse.atom_bits`), into a closure over
an integer *presence mask*.  Every connective reduces to integer tests:

* ``Atom(name)``            → ``mask & bit``
* ``And`` of atoms          → ``(mask & required) == required``
* ``Or`` of atoms           → ``mask & any_bits``
* ``Xor`` of distinct atoms → ``(mask & bits).bit_count() & 1``
* ``OneOf`` of atoms        → ``x = mask & bits; x and not (x & (x - 1))``
* ``Implies(a, b)``         → ``not a(mask) or b(mask)``

Atoms naming components *outside* the mapping compile to constant False —
identical to set evaluation, where a component that can never be a member
never satisfies an atom.

:func:`compile_partial` is the three-valued (Kleene) counterpart used by
the backtracking enumerator: closures over ``(present, decided)`` masks
returning ``True``/``False``/``None`` with the exact semantics of
:func:`repro.expr.partial.evaluate_partial`.

The AST ``evaluate`` remains the semantic source of truth; the property
tests in ``tests/expr/test_compile_properties.py`` pin the two evaluators
together on randomized expressions.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Mapping, Optional, Tuple

from repro.expr.ast import (
    And,
    Atom,
    Expr,
    Implies,
    Not,
    OneOf,
    Or,
    Xor,
    _Const,
)

MaskFn = Callable[[int], bool]
PartialMaskFn = Callable[[int, int], Optional[bool]]

_ALWAYS_TRUE: MaskFn = lambda mask: True
_ALWAYS_FALSE: MaskFn = lambda mask: False


def compile_expr(expr: Expr, bits: Mapping[str, int]) -> MaskFn:
    """Compile *expr* to a ``mask -> bool`` closure of pure integer ops.

    Args:
        bits: bit value (power of two) per component name; names missing
            from the mapping are treated as never-present.
    """
    if isinstance(expr, _Const):
        return _ALWAYS_TRUE if expr.value else _ALWAYS_FALSE
    if isinstance(expr, Atom):
        bit = bits.get(expr.name, 0)
        if not bit:
            return _ALWAYS_FALSE
        return lambda mask, _b=bit: (mask & _b) != 0
    if isinstance(expr, Not):
        inner = compile_expr(expr.operand, bits)
        if inner is _ALWAYS_TRUE:
            return _ALWAYS_FALSE
        if inner is _ALWAYS_FALSE:
            return _ALWAYS_TRUE
        return lambda mask, _f=inner: not _f(mask)
    if isinstance(expr, And):
        required, forbidden, rest = _partition(expr.operands, bits)
        if any(f is _ALWAYS_FALSE for f in rest) or (required & forbidden):
            return _ALWAYS_FALSE
        rest = tuple(f for f in rest if f is not _ALWAYS_TRUE)
        if not rest:
            return lambda mask, _r=required, _f=forbidden: (
                (mask & _r) == _r and not (mask & _f)
            )
        return lambda mask, _r=required, _f=forbidden, _fs=rest: (
            (mask & _r) == _r
            and not (mask & _f)
            and all(f(mask) for f in _fs)
        )
    if isinstance(expr, Or):
        # De Morgan dual of the And partition: positive atoms collapse to
        # one any-bit test, negated atoms to one not-all-present test.
        present_any, absent_any, rest = _partition(expr.operands, bits)
        if any(f is _ALWAYS_TRUE for f in rest):
            return _ALWAYS_TRUE
        rest = tuple(f for f in rest if f is not _ALWAYS_FALSE)
        if not rest:
            return lambda mask, _p=present_any, _a=absent_any: (
                (mask & _p) != 0 or (mask & _a) != _a
            )
        return lambda mask, _p=present_any, _a=absent_any, _fs=rest: (
            (mask & _p) != 0
            or (mask & _a) != _a
            or any(f(mask) for f in _fs)
        )
    if isinstance(expr, Xor):
        atom_bits, rest = _atom_split(expr.operands, bits)
        if not rest and _distinct(atom_bits):
            combined = 0
            for bit in atom_bits:
                combined |= bit
            return lambda mask, _c=combined: ((mask & _c).bit_count() & 1) == 1
        fns = tuple(compile_expr(op, bits) for op in expr.operands)

        def xor_fn(mask: int, _fs: Tuple[MaskFn, ...] = fns) -> bool:
            value = False
            for f in _fs:
                value ^= f(mask)
            return value

        return xor_fn
    if isinstance(expr, OneOf):
        atom_bits, rest = _atom_split(expr.operands, bits)
        if not rest and _distinct(atom_bits):
            combined = 0
            for bit in atom_bits:
                combined |= bit

            def one_of_bits(mask: int, _c: int = combined) -> bool:
                x = mask & _c
                return x != 0 and (x & (x - 1)) == 0

            return one_of_bits
        fns = tuple(compile_expr(op, bits) for op in expr.operands)

        def one_of_fn(mask: int, _fs: Tuple[MaskFn, ...] = fns) -> bool:
            count = 0
            for f in _fs:
                if f(mask):
                    count += 1
                    if count > 1:
                        return False
            return count == 1

        return one_of_fn
    if isinstance(expr, Implies):
        antecedent = compile_expr(expr.antecedent, bits)
        consequent = compile_expr(expr.consequent, bits)
        if antecedent is _ALWAYS_FALSE or consequent is _ALWAYS_TRUE:
            return _ALWAYS_TRUE
        if antecedent is _ALWAYS_TRUE:
            return consequent
        if isinstance(expr.antecedent, Atom):
            bit = bits.get(expr.antecedent.name, 0)
            return lambda mask, _b=bit, _c=consequent: (
                not (mask & _b) or _c(mask)
            )
        return lambda mask, _a=antecedent, _c=consequent: (
            not _a(mask) or _c(mask)
        )
    raise TypeError(f"unknown Expr node {type(expr).__name__}")  # pragma: no cover


def compile_all(exprs: Iterable[Expr], bits: Mapping[str, int]) -> Tuple[MaskFn, ...]:
    """Compile several expressions against one bit mapping."""
    return tuple(compile_expr(expr, bits) for expr in exprs)


def compile_conjunction(exprs: Iterable[Expr], bits: Mapping[str, int]) -> MaskFn:
    """One closure deciding whether *all* expressions hold under a mask.

    This is the compiled form of :meth:`InvariantSet.all_hold`: a safe
    configuration is one whose mask satisfies the conjunction.
    """
    fns = tuple(f for f in compile_all(exprs, bits) if f is not _ALWAYS_TRUE)
    if not fns:
        return _ALWAYS_TRUE
    if any(f is _ALWAYS_FALSE for f in fns):
        return _ALWAYS_FALSE
    if len(fns) == 1:
        return fns[0]
    return lambda mask, _fs=fns: all(f(mask) for f in _fs)


# -- three-valued compilation ---------------------------------------------------


def compile_partial(expr: Expr, bits: Mapping[str, int]) -> PartialMaskFn:
    """Compile *expr* to a Kleene closure over ``(present, decided)`` masks.

    ``present`` holds the bits decided *in*, ``decided`` all decided bits
    (so ``decided & ~present`` are the bits decided *out*).  The closure
    returns ``True``/``False`` once the decided bits determine the value,
    else ``None`` — the pruning test of the backtracking enumerator.
    """
    if isinstance(expr, _Const):
        value = expr.value
        return lambda present, decided, _v=value: _v
    if isinstance(expr, Atom):
        bit = bits.get(expr.name, 0)
        if not bit:
            # A component outside the universe can never become present.
            return lambda present, decided: False

        def atom_fn(present: int, decided: int, _b: int = bit) -> Optional[bool]:
            if decided & _b:
                return (present & _b) != 0
            return None

        return atom_fn
    if isinstance(expr, Not):
        inner = compile_partial(expr.operand, bits)

        def not_fn(present: int, decided: int, _f: PartialMaskFn = inner) -> Optional[bool]:
            value = _f(present, decided)
            return None if value is None else (not value)

        return not_fn
    if isinstance(expr, And):
        required, forbidden, rest = _partition_partial(expr.operands, bits)

        def and_fn(
            present: int,
            decided: int,
            _r: int = required,
            _f: int = forbidden,
            _fs: Tuple[PartialMaskFn, ...] = rest,
        ) -> Optional[bool]:
            # any required bit decided-out, or forbidden bit decided-in?
            if _r & decided & ~present or _f & present:
                return False
            unknown = (_r | _f) & ~decided
            for fn in _fs:
                value = fn(present, decided)
                if value is False:
                    return False
                if value is None:
                    unknown = 1
            return None if unknown else True

        return and_fn
    if isinstance(expr, Or):
        present_any, absent_any, rest = _partition_partial(expr.operands, bits)

        def or_fn(
            present: int,
            decided: int,
            _p: int = present_any,
            _a: int = absent_any,
            _fs: Tuple[PartialMaskFn, ...] = rest,
        ) -> Optional[bool]:
            if _p & present or _a & decided & ~present:
                return True
            unknown = (_p | _a) & ~decided
            for fn in _fs:
                value = fn(present, decided)
                if value is True:
                    return True
                if value is None:
                    unknown = 1
            return None if unknown else False

        return or_fn
    if isinstance(expr, Xor):
        fns = tuple(compile_partial(op, bits) for op in expr.operands)

        def xor_fn(
            present: int, decided: int, _fs: Tuple[PartialMaskFn, ...] = fns
        ) -> Optional[bool]:
            parity = False
            for fn in _fs:
                value = fn(present, decided)
                if value is None:
                    return None
                parity ^= value
            return parity

        return xor_fn
    if isinstance(expr, OneOf):
        atom_bits, rest = _atom_split(expr.operands, bits)
        if not rest and _distinct(atom_bits):
            combined = 0
            for bit in atom_bits:
                combined |= bit

            def one_of_bits(
                present: int, decided: int, _c: int = combined
            ) -> Optional[bool]:
                trues = (present & _c).bit_count()
                if trues > 1:
                    return False
                if _c & ~decided:
                    return None  # an undecided operand could flip the count
                return trues == 1

            return one_of_bits
        fns = tuple(compile_partial(op, bits) for op in expr.operands)

        def one_of_fn(
            present: int, decided: int, _fs: Tuple[PartialMaskFn, ...] = fns
        ) -> Optional[bool]:
            trues = 0
            unknowns = 0
            for fn in _fs:
                value = fn(present, decided)
                if value is True:
                    trues += 1
                    if trues > 1:
                        return False
                elif value is None:
                    unknowns += 1
            if unknowns == 0:
                return trues == 1
            return None

        return one_of_fn
    if isinstance(expr, Implies):
        antecedent = compile_partial(expr.antecedent, bits)
        consequent = compile_partial(expr.consequent, bits)

        def implies_fn(
            present: int,
            decided: int,
            _a: PartialMaskFn = antecedent,
            _c: PartialMaskFn = consequent,
        ) -> Optional[bool]:
            left = _a(present, decided)
            if left is False:
                return True
            right = _c(present, decided)
            if right is True:
                return True
            if left is True and right is False:
                return False
            return None

        return implies_fn
    raise TypeError(f"unknown Expr node {type(expr).__name__}")  # pragma: no cover


def compile_all_partial(
    exprs: Iterable[Expr], bits: Mapping[str, int]
) -> Tuple[PartialMaskFn, ...]:
    """Compile several expressions to Kleene closures at once."""
    return tuple(compile_partial(expr, bits) for expr in exprs)


# -- helpers --------------------------------------------------------------------


def _partition(
    operands: Iterable[Expr], bits: Mapping[str, int]
) -> Tuple[int, int, List[MaskFn]]:
    """Split operands into (positive-atom bits, negated-atom bits, rest)."""
    positive = 0
    negated = 0
    rest: List[MaskFn] = []
    for op in operands:
        if isinstance(op, Atom):
            bit = bits.get(op.name, 0)
            if bit:
                positive |= bit
            else:
                rest.append(_ALWAYS_FALSE)
        elif isinstance(op, Not) and isinstance(op.operand, Atom):
            bit = bits.get(op.operand.name, 0)
            if bit:
                negated |= bit
            else:
                rest.append(_ALWAYS_TRUE)
        else:
            rest.append(compile_expr(op, bits))
    return positive, negated, rest


def _partition_partial(
    operands: Iterable[Expr], bits: Mapping[str, int]
) -> Tuple[int, int, Tuple[PartialMaskFn, ...]]:
    """Three-valued analogue of :func:`_partition`.

    Foreign atoms (no bit) are constant False and cannot use the mask fast
    path, so they fall into the closure list.
    """
    positive = 0
    negated = 0
    rest: List[PartialMaskFn] = []
    for op in operands:
        if isinstance(op, Atom) and bits.get(op.name, 0):
            positive |= bits[op.name]
        elif (
            isinstance(op, Not)
            and isinstance(op.operand, Atom)
            and bits.get(op.operand.name, 0)
        ):
            negated |= bits[op.operand.name]
        else:
            rest.append(compile_partial(op, bits))
    return positive, negated, tuple(rest)


def _atom_split(
    operands: Iterable[Expr], bits: Mapping[str, int]
) -> Tuple[List[int], List[Expr]]:
    """Separate plain-atom operands (as bit values) from compound ones."""
    atom_bits: List[int] = []
    rest: List[Expr] = []
    for op in operands:
        if isinstance(op, Atom) and bits.get(op.name, 0):
            atom_bits.append(bits[op.name])
        else:
            rest.append(op)
    return atom_bits, rest


def _distinct(values: List[int]) -> bool:
    return len(set(values)) == len(values)
