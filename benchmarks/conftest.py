"""Shared helpers for the benchmark harness.

Every benchmark regenerates a table or figure from the paper, asserts the
*shape* (who wins, by what rough factor, where crossovers fall), and
reports the regenerated rows both to stdout and into the pytest-benchmark
``extra_info`` so they land in machine-readable output.

Planning-phase benchmarks additionally record their headline numbers into
``benchmarks/BENCH_planning.json`` (via ``report(..., data=...)``) so
future PRs can track the planning-engine trajectory against a committed
baseline.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

PLANNING_JSON = Path(__file__).with_name("BENCH_planning.json")


def report(
    title: str, text: str, data=None, json_path: Path = None, throughput=None
) -> None:
    """Print a regenerated table so it is visible even under capture.

    When *data* (any JSON-serializable value) is given, it is also merged
    into ``BENCH_planning.json`` under *title* — the machine-readable perf
    record future PRs diff against.

    *throughput*, if given, is a ``(count, seconds)`` pair; a derived
    plans/sec line is appended to the banner and (when *data* is a dict)
    a ``plans_per_sec`` column is merged into the recorded JSON.
    """
    banner = f"\n=== {title} ===\n{text}\n"
    if throughput is not None:
        count, seconds = throughput
        rate = count / seconds if seconds > 0 else float("inf")
        banner += f"throughput: {count} in {seconds:.3f}s = {rate:,.0f} plans/sec\n"
        if isinstance(data, dict):
            data = {**data, "plans_per_sec": round(rate, 1)}
    sys.stderr.write(banner)
    sys.stderr.flush()
    if data is not None:
        record_json(title, data, json_path=json_path)


def record_json(key: str, data, json_path: Path = None) -> None:
    """Merge ``{key: data}`` into the planning-trajectory JSON file."""
    path = json_path or PLANNING_JSON
    existing = {}
    if path.exists():
        try:
            existing = json.loads(path.read_text())
        except (OSError, ValueError):
            existing = {}
    existing[key] = data
    path.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n")
