"""Effects emitted by the sans-io protocol machines.

A machine never performs IO: each ``handle_*`` call returns a list of
effects which the *driver* (simulated cluster or threaded runtime) carries
out — sending messages, arming timers, blocking/resuming the local
process, executing the bound in-action code, or surfacing terminal
outcomes to the caller.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Tuple

from repro.core.actions import AdaptiveAction
from repro.core.model import Configuration
from repro.core.planner import PlanStep
from repro.protocol.failures import ReplanKind
from repro.protocol.messages import Message


@dataclass(frozen=True)
class Effect:
    """Base class for protocol effects."""


# -- IO effects (both machines) -------------------------------------------------

@dataclass(frozen=True)
class Send(Effect):
    """Transmit *message* to *destination* over the coordination channel."""

    destination: str
    message: Message


@dataclass(frozen=True)
class SetTimer(Effect):
    """Arm (or re-arm) the named timer to fire after *delay* time units."""

    name: str
    delay: float


@dataclass(frozen=True)
class CancelTimer(Effect):
    """Disarm the named timer (no-op if not armed)."""

    name: str


# -- agent/host effects (Fig. 1's do-activities) ----------------------------------

@dataclass(frozen=True)
class StartReset(Effect):
    """Begin the local pre-action and initiate the reset (RESETTING state).

    The host disables functionality related to the adapted components,
    optionally injects the drain marker, and watches for the local safe
    state; it reports back via ``AgentMachine.on_local_safe``.
    """

    step_key: str
    action: AdaptiveAction
    inject_flush: bool
    await_flush: bool


@dataclass(frozen=True)
class AbortReset(Effect):
    """Cancel an in-progress reset (rollback before the safe state)."""

    step_key: str


@dataclass(frozen=True)
class BlockProcess(Effect):
    """Hold the process in its safe state (paper: 'blocking the process')."""

    step_key: str


@dataclass(frozen=True)
class ResumeProcess(Effect):
    """Resume full operation; host confirms via ``on_resumed``."""

    step_key: str


@dataclass(frozen=True)
class ExecuteInAction(Effect):
    """Run the local slice of the step's in-action (structure change).

    The host mutates its local component set / filter chains and confirms
    via ``AgentMachine.on_in_action_applied``.
    """

    step_key: str
    action: AdaptiveAction


@dataclass(frozen=True)
class UndoInAction(Effect):
    """Rollback: apply the inverse of the (already applied) in-action."""

    step_key: str
    action: AdaptiveAction


@dataclass(frozen=True)
class ExecutePostAction(Effect):
    """Run the local post-action (e.g. destroy replaced components)."""

    step_key: str
    action: AdaptiveAction


# -- manager outcome / orchestration effects (Fig. 2) -------------------------------

@dataclass(frozen=True)
class StepCommitted(Effect):
    """One adaptation step finished; the system configuration advanced."""

    step: PlanStep
    step_key: str


@dataclass(frozen=True)
class StepRolledBack(Effect):
    """A failed step was rolled back; system back at the step's source."""

    step: PlanStep
    step_key: str
    reason: str


@dataclass(frozen=True)
class RequestReplan(Effect):
    """Ask the driver for a new plan (failure-handling cascade, §4.4).

    ``kind`` distinguishes "next-best path to the target" from "return to
    the source configuration".  ``failed_edges`` lists (configuration,
    action id) pairs that have already failed so the planner can avoid
    them.
    """

    kind: ReplanKind
    current: Configuration
    failed_edges: Tuple[Tuple[Configuration, str], ...]


@dataclass(frozen=True)
class AdaptationComplete(Effect):
    """Terminal: target configuration reached; system fully operational."""

    configuration: Configuration
    total_steps: int


@dataclass(frozen=True)
class AdaptationAborted(Effect):
    """Terminal: adaptation abandoned; system at a safe configuration."""

    configuration: Configuration
    reason: str


@dataclass(frozen=True)
class AwaitUser(Effect):
    """Terminal: all automatic options exhausted (paper §4.4 option 4)."""

    configuration: Configuration
    reason: str
