"""Baseline strategies: demonstrate exactly which safety clause breaks.

These tests are the executable form of the paper's argument: unsafe and
quiescence-only adaptation observably corrupt the system, while the safe
protocol (tested elsewhere) and the heavyweight alternatives do not —
at very different disruption costs.
"""

import pytest

from repro.apps.video import VideoScenario
from repro.apps.video.system import paper_source, paper_target
from repro.baselines import (
    LocalQuiescenceSwap,
    RestartSwap,
    TwoPhaseSwap,
    UnsafeSwap,
    delta_action,
)
from repro.core.model import Configuration
from repro.trace import BlockRecord


@pytest.fixture
def target():
    return paper_target()


def fresh(seed=3):
    return VideoScenario(seed=seed)


class TestDeltaAction:
    def test_delta(self):
        action = delta_action(paper_source(), paper_target())
        assert action.removes == frozenset({"D1", "D4", "E1"})
        assert action.adds == frozenset({"D3", "D5", "E2"})


class TestUnsafeSwap:
    def test_corrupts_in_flight_packets(self, target):
        scenario = fresh()
        UnsafeSwap(scenario.cluster, target, at_time=50.0).schedule()
        scenario.cluster.sim.run(until=120.0)
        stats = scenario.stream_stats()
        assert stats["handheld_corrupt"] > 0
        assert stats["laptop_corrupt"] > 0

    def test_fails_ccs_and_discipline_clauses(self, target):
        scenario = fresh()
        UnsafeSwap(scenario.cluster, target, at_time=50.0).schedule()
        scenario.cluster.sim.run(until=120.0)
        report = scenario.safety_report()
        assert not report.ok
        assert report.by_kind("ccs")
        assert report.by_kind("corruption")
        assert report.by_kind("discipline")

    def test_reaches_target_anyway(self, target):
        """Unsafe ≠ unsuccessful: the end state is right, the journey wrong."""
        scenario = fresh()
        result = UnsafeSwap(scenario.cluster, target, at_time=50.0).schedule()
        scenario.cluster.sim.run(until=120.0)
        assert result.done
        assert scenario.cluster.live_configuration == target

    def test_staggered_variant_also_breaks_dependency_clause(self, target):
        scenario = fresh()
        UnsafeSwap(scenario.cluster, target, at_time=50.0, stagger=4.0).schedule()
        scenario.cluster.sim.run(until=130.0)
        report = scenario.safety_report()
        assert report.by_kind("dependency")


class TestLocalQuiescenceSwap:
    def test_locally_disciplined_but_globally_unsafe(self, target):
        scenario = fresh()
        LocalQuiescenceSwap(scenario.cluster, target, at_time=50.0).schedule()
        scenario.cluster.sim.run(until=130.0)
        report = scenario.safety_report()
        assert not report.ok
        # every in-action fired blocked (quiescence!) ...
        assert not report.by_kind("discipline")
        # ... yet dependencies and segments still break: the paper's point.
        assert report.by_kind("dependency")
        assert report.by_kind("corruption")

    def test_corruption_from_uncoordinated_order(self, target):
        scenario = fresh()
        LocalQuiescenceSwap(scenario.cluster, target, at_time=50.0).schedule()
        scenario.cluster.sim.run(until=130.0)
        stats = scenario.stream_stats()
        assert stats["handheld_corrupt"] + stats["laptop_corrupt"] > 0


class TestTwoPhaseSwap:
    def test_safe_but_blocks_the_world(self, target):
        scenario = fresh()
        cluster = scenario.cluster
        cluster.sim.run(until=50.0)
        outcome = TwoPhaseSwap(cluster, target).run()
        cluster.sim.run(until=cluster.sim.now + 60.0)
        assert outcome.succeeded
        scenario.safety_report().raise_if_unsafe()
        stats = scenario.stream_stats()
        assert stats["handheld_corrupt"] == 0 and stats["laptop_corrupt"] == 0
        # all three processes were blocked at some point
        blocked = {
            r.process for r in cluster.trace.of_type(BlockRecord) if r.blocked
        }
        assert blocked == {"server", "handheld", "laptop"}

    def test_single_step(self, target):
        scenario = fresh()
        scenario.cluster.sim.run(until=50.0)
        outcome = TwoPhaseSwap(scenario.cluster, target).run()
        assert outcome.steps_committed == 1


class TestRestartSwap:
    def test_safe_but_discards_inflight(self, target):
        scenario = fresh()
        strategy = RestartSwap(scenario.cluster, target, at_time=50.0,
                               restart_duration=10.0)
        strategy.schedule()
        scenario.cluster.sim.run(until=140.0)
        report = scenario.safety_report()
        assert report.ok
        assert strategy.packets_discarded > 0
        assert scenario.cluster.live_configuration == target

    def test_blocks_every_process(self, target):
        scenario = fresh()
        RestartSwap(scenario.cluster, target, at_time=50.0).schedule()
        scenario.cluster.sim.run(until=140.0)
        blocked = {
            r.process
            for r in scenario.cluster.trace.of_type(BlockRecord)
            if r.blocked
        }
        assert blocked == {"server", "handheld", "laptop"}


class TestComparisonSummary:
    def test_only_undisciplined_strategies_corrupt(self, target):
        """One table: strategy → (safe?, corrupt packets)."""
        outcomes = {}
        scenario = fresh()
        UnsafeSwap(scenario.cluster, target, at_time=50.0).schedule()
        scenario.cluster.sim.run(until=120.0)
        stats = scenario.stream_stats()
        outcomes["unsafe"] = (
            scenario.safety_report().ok,
            stats["handheld_corrupt"] + stats["laptop_corrupt"],
        )

        scenario = fresh()
        LocalQuiescenceSwap(scenario.cluster, target, at_time=50.0).schedule()
        scenario.cluster.sim.run(until=120.0)
        stats = scenario.stream_stats()
        outcomes["quiescence"] = (
            scenario.safety_report().ok,
            stats["handheld_corrupt"] + stats["laptop_corrupt"],
        )

        scenario = fresh()
        outcome = scenario.run()
        stats = scenario.stream_stats()
        outcomes["safe-protocol"] = (
            scenario.safety_report().ok,
            stats["handheld_corrupt"] + stats["laptop_corrupt"],
        )

        assert outcomes["unsafe"][0] is False and outcomes["unsafe"][1] > 0
        assert outcomes["quiescence"][0] is False and outcomes["quiescence"][1] > 0
        assert outcomes["safe-protocol"] == (True, 0)
