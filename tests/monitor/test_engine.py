"""Unit + integration tests for the decision engine."""

import pytest

from repro.apps.video import build_video_cluster
from repro.apps.video.system import paper_source, paper_target
from repro.core.model import Configuration
from repro.monitor.engine import DecisionEngine
from repro.monitor.rules import AdaptationRule, Threshold
from repro.monitor.sensors import GaugeSensor


def make_rule(name, sensor, target, priority=0, cooldown=0.0):
    return AdaptationRule(
        name=name,
        sensor=sensor,
        threshold=Threshold(trip=0.5),
        target=target,
        priority=priority,
        cooldown=cooldown,
    )


class TestEvaluate:
    def test_fires_and_requests(self):
        sensor = GaugeSensor("threat", 0.9)
        target = Configuration(["X"])
        requested = []
        engine = DecisionEngine([make_rule("r", sensor, target)])
        decision = engine.evaluate(0.0, Configuration(["Y"]), requested.append)
        assert decision is not None and decision.accepted
        assert requested == [target]

    def test_no_trip_no_decision(self):
        sensor = GaugeSensor("threat", 0.1)
        engine = DecisionEngine([make_rule("r", sensor, Configuration(["X"]))])
        assert engine.evaluate(0.0, Configuration(["Y"]), lambda t: None) is None

    def test_busy_manager_defers(self):
        sensor = GaugeSensor("threat", 0.9)
        engine = DecisionEngine([make_rule("r", sensor, Configuration(["X"]))])
        decision = engine.evaluate(
            0.0, Configuration(["Y"]), lambda t: None, busy=True
        )
        assert decision is not None and not decision.accepted
        assert decision.detail == "manager busy"

    def test_already_at_target_skipped(self):
        sensor = GaugeSensor("threat", 0.9)
        target = Configuration(["X"])
        engine = DecisionEngine([make_rule("r", sensor, target)])
        decision = engine.evaluate(0.0, target, lambda t: None)
        assert decision is not None and not decision.accepted

    def test_priority_wins(self):
        low = make_rule("low", GaugeSensor("a", 0.9), Configuration(["L"]), priority=1)
        high = make_rule("high", GaugeSensor("b", 0.9), Configuration(["H"]), priority=9)
        requested = []
        engine = DecisionEngine([low, high])
        engine.evaluate(0.0, Configuration(["Y"]), requested.append)
        assert requested == [Configuration(["H"])]

    def test_planner_error_recorded_not_raised(self):
        from repro.errors import NoSafePathError

        sensor = GaugeSensor("threat", 0.9)
        engine = DecisionEngine([make_rule("r", sensor, Configuration(["X"]))])

        def failing_request(target):
            raise NoSafePathError("nope")

        decision = engine.evaluate(0.0, Configuration(["Y"]), failing_request)
        assert decision is not None and not decision.accepted
        assert "nope" in decision.detail

    def test_decisions_logged(self):
        sensor = GaugeSensor("threat", 0.9)
        engine = DecisionEngine([make_rule("r", sensor, Configuration(["X"]))])
        engine.evaluate(0.0, Configuration(["Y"]), lambda t: None)
        assert len(engine.decisions) == 1


class TestOnCluster:
    def test_threat_rise_triggers_hardening(self):
        """End-to-end RAPIDware loop: monitor → decide → safely adapt.

        No observation bus here: the tripping sensor reading alone must
        drive the evaluation (``attach_to_bus`` falls back to
        sensor-driven triggers when the cluster publishes no bus).
        """
        cluster = build_video_cluster(seed=6)
        threat = GaugeSensor("threat", 0.0)
        rule = make_rule("harden-to-128", threat, paper_target(), cooldown=50.0)
        engine = DecisionEngine([rule])
        engine.attach_to_bus(cluster)
        cluster.sim.schedule(35.0, lambda: threat.set(0.9))
        cluster.sim.run(until=300.0)
        assert cluster.manager.outcome is not None
        assert cluster.manager.outcome.succeeded
        assert cluster.manager.committed == paper_target()
        accepted = [d for d in engine.decisions if d.accepted]
        assert len(accepted) == 1
        assert accepted[0].rule == "harden-to-128"


class TestOnBus:
    def test_event_driven_hardening(self):
        """attach_to_bus: the tripping reading itself fires the rule."""
        from repro.obs import ObservationBus

        cluster = build_video_cluster(seed=6, bus=ObservationBus())
        threat = GaugeSensor("threat", 0.0)
        rule = make_rule("harden-to-128", threat, paper_target(), cooldown=50.0)
        engine = DecisionEngine([rule])
        engine.attach_to_bus(cluster)
        cluster.sim.schedule(35.0, lambda: threat.set(0.9))
        cluster.sim.run(until=300.0)
        assert cluster.manager.outcome is not None
        assert cluster.manager.outcome.succeeded
        assert cluster.manager.committed == paper_target()
        accepted = [d for d in engine.decisions if d.accepted]
        assert len(accepted) == 1
        assert accepted[0].rule == "harden-to-128"
        # Event-driven: the decision fired at the reading (t=35), not at
        # the next polling tick (t=40 under the deprecated period=10).
        assert accepted[0].time == pytest.approx(35.0)

    def test_busy_rule_retries_after_manager_finishes(self):
        """A rule tripping mid-adaptation fires again on the terminal note."""
        from repro.obs import ObservationBus

        cluster = build_video_cluster(seed=6, bus=ObservationBus())
        load = GaugeSensor("load", 0.0)
        threat = GaugeSensor("threat", 0.0)
        middle = cluster.universe.from_bits("1101001")  # {D2,D4,D5,E1}
        stage = make_rule("stage", load, middle, priority=5)
        harden = make_rule("harden", threat, paper_target())
        engine = DecisionEngine([stage, harden])
        engine.attach_to_bus(cluster)
        cluster.sim.schedule(35.0, lambda: load.set(0.9))
        # While the staging adaptation is still in flight, the second
        # sensor trips; the engine records "manager busy" and retries
        # when the bus publishes the terminal milestone.
        cluster.sim.schedule(38.0, lambda: threat.set(0.9))
        cluster.sim.run(until=400.0)
        deferred = [d for d in engine.decisions if d.detail == "manager busy"]
        assert deferred and deferred[0].rule == "harden"
        accepted = [d for d in engine.decisions if d.accepted]
        assert [d.rule for d in accepted] == ["stage", "harden"]
        assert cluster.manager.committed == paper_target()

    def test_without_bus_sensor_updates_still_drive_evaluation(self):
        cluster = build_video_cluster(seed=6)
        threat = GaugeSensor("threat", 0.0)
        rule = make_rule("harden-to-128", threat, paper_target(), cooldown=50.0)
        engine = DecisionEngine([rule])
        engine.attach_to_bus(cluster)  # trace has no bus: sensor-only mode
        cluster.sim.schedule(35.0, lambda: threat.set(0.9))
        cluster.sim.run(until=300.0)
        assert cluster.manager.outcome is not None
        assert cluster.manager.outcome.succeeded
