"""Failure injection on the live video stream: safety must survive."""

import pytest

from repro.apps.video import VideoScenario, build_video_cluster
from repro.apps.video.system import paper_source, paper_target
from repro.protocol.failures import FailurePolicy
from repro.sim.net import BernoulliLoss, UniformDelay

POLICY = FailurePolicy(
    reset_timeout=80.0,
    resume_timeout=60.0,
    rollback_timeout=60.0,
    retransmit_interval=20.0,
)


class TestVideoUnderFaults:
    def test_rollback_mid_stream_is_invisible_to_viewers(self):
        """Force the first A4 attempt to fail; stream must stay clean."""
        scenario = VideoScenario(
            cluster=build_video_cluster(seed=7, policy=POLICY)
        )
        cluster = scenario.cluster
        cluster.sim.run(until=40.0)
        # Partition manager↔server just before the A1 step's reset goes
        # out: the step times out and rolls back; after the heal the retry
        # (or an alternate) completes the adaptation.
        def cut():
            cluster.network.partition("manager", "server")
        def heal():
            cluster.network.heal_all()
        cluster.sim.schedule(3.0, cut)    # between A17 and A1
        cluster.sim.schedule(200.0, heal)
        outcome = cluster.adapt_to(paper_target())
        cluster.sim.run(until=cluster.sim.now + 60.0)
        assert outcome.succeeded
        assert outcome.steps_rolled_back >= 1
        scenario.safety_report().raise_if_unsafe()
        stats = scenario.stream_stats()
        assert stats["handheld_corrupt"] == 0
        assert stats["laptop_corrupt"] == 0

    @pytest.mark.parametrize("seed", [11, 22, 33])
    def test_lossy_everything_never_corrupts(self, seed):
        scenario = VideoScenario(
            cluster=build_video_cluster(
                seed=seed,
                policy=POLICY,
                control_loss=BernoulliLoss(0.15),
                control_delay=UniformDelay(0.5, 2.5),
            )
        )
        outcome = scenario.run()
        report = scenario.safety_report()
        assert report.ok, report.violations[:3]
        stats = scenario.stream_stats()
        assert stats["handheld_corrupt"] == 0
        assert stats["laptop_corrupt"] == 0
        assert outcome.status in ("complete", "aborted", "await_user")

    def test_data_plane_loss_is_not_a_safety_violation(self):
        """Dropped video packets are loss, not unsafe adaptation."""
        scenario = VideoScenario(
            cluster=build_video_cluster(
                seed=3, policy=POLICY, data_loss=BernoulliLoss(0.2)
            )
        )
        outcome = scenario.run()
        assert outcome.succeeded
        report = scenario.safety_report()
        # lost packets leave in-progress segments, never interrupted ones
        assert report.ok
        stats = scenario.stream_stats()
        assert stats["handheld_received"] < stats["packets_sent"]
        assert stats["handheld_corrupt"] == 0
