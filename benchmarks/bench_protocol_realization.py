"""Experiment F1/F2 — realization-phase mechanics, measured per action type.

The paper's Figures 1–2 define the manager/agent coordination; Table 2's
cost model encodes its consequence — actions that must drain the channel
with the sender blocked (encoder/decoder composites) disrupt the stream an
order of magnitude more than single-component actions.  This bench runs
each action class through the live protocol and measures what Table 2
prices: blocking time and stream disruption.
"""

import time
from pathlib import Path

import pytest

from benchmarks.conftest import report
from repro.apps.video import VideoScenario, build_video_cluster
from repro.apps.video.system import paper_source, paper_target
from repro.bench import format_table
from repro.trace import BlockRecord

BACKENDS_JSON = Path(__file__).with_name("BENCH_backends.json")

CASES = [
    # (label, plan action ids) — each executed from the paper source.
    ("MAP (5 singles)", None),         # planner's own MAP
    ("single composite A14", ("A14",)),
    ("A13 then A4 (composite+single)", ("A13", "A4")),
]


def run_with_plan(action_ids, seed=5):
    scenario = VideoScenario(seed=seed)
    cluster = scenario.cluster
    cluster.sim.run(until=50.0)
    if action_ids is None:
        plan = cluster.planner.plan(paper_source(), paper_target())
    else:
        plans = cluster.planner.plan_k(paper_source(), paper_target(), 30)
        plan = next(p for p in plans if p.action_ids == tuple(action_ids))
    outcome = cluster.run_plan(plan)
    cluster.sim.run(until=cluster.sim.now + 60.0)
    return scenario, outcome


def total_blocked(trace, process):
    total, start = 0.0, None
    for record in trace.of_type(BlockRecord):
        if record.process != process:
            continue
        if record.blocked and start is None:
            start = record.time
        elif not record.blocked and start is not None:
            total += record.time - start
            start = None
    return total


@pytest.mark.parametrize("label,action_ids", CASES, ids=[c[0] for c in CASES])
def test_realization_per_action_class(benchmark, label, action_ids):
    scenario, outcome = benchmark(lambda: run_with_plan(action_ids))
    assert outcome.succeeded
    scenario.safety_report().raise_if_unsafe()
    stats = scenario.stream_stats()
    assert stats["handheld_corrupt"] == 0 and stats["laptop_corrupt"] == 0
    server_blocked = total_blocked(scenario.cluster.trace, "server")
    benchmark.extra_info["adaptation_ms"] = outcome.duration
    benchmark.extra_info["server_blocked_ms"] = server_blocked
    report(
        f"realization: {label}",
        format_table(
            ["metric", "value"],
            [
                ("adaptation duration (ms)", round(outcome.duration, 1)),
                ("server blocked (ms)", round(server_blocked, 1)),
                ("steps", outcome.steps_committed),
            ],
        ),
    )


def test_composites_block_sender_singles_do_not(benchmark):
    """Table 2's cost rationale, measured: the composite drains with the
    server blocked; the all-singles MAP never stops the source."""
    map_scenario, map_outcome = benchmark.pedantic(
        run_with_plan, args=(None,), rounds=1, iterations=1
    )
    composite_scenario, composite_outcome = run_with_plan(("A14",))
    map_blocked = total_blocked(map_scenario.cluster.trace, "server")
    composite_blocked = total_blocked(composite_scenario.cluster.trace, "server")
    assert map_blocked == 0.0
    assert composite_blocked > 0.0
    report(
        "Table 2 cost rationale (measured server blocking)",
        format_table(
            ["plan", "server blocked (ms)"],
            [
                ("MAP (A2,A17,A1,A4,A16)", round(map_blocked, 1)),
                ("composite A14", round(composite_blocked, 1)),
            ],
        ),
    )


def _fig4_system():
    from repro.apps.video.system import (
        video_actions,
        video_invariants,
        video_universe,
    )

    universe = video_universe()
    return (universe, video_invariants(), video_actions(),
            paper_source(universe), paper_target(universe))


def _backend_runners(time_scale=0.0005, quiesce=2.0):
    """Fig. 4 MAP realization on each execution backend.

    Each runner returns ``(outcome, wall_seconds)`` for one source→target
    adaptation with identical :class:`QuiescentAdapter` apps.
    """
    from repro.exec.aio import run_aio_adaptation
    from repro.exec.app import QuiescentAdapter
    from repro.runtime import LiveAdaptationSystem
    from repro.sim import AdaptationCluster

    universe, invariants, actions, source, target = _fig4_system()

    def make_apps():
        return {p: QuiescentAdapter(quiesce) for p in universe.processes()}

    def run_sim():
        cluster = AdaptationCluster(
            universe, invariants, actions, source, apps=make_apps()
        )
        t0 = time.perf_counter()
        outcome = cluster.adapt_to(target)
        return outcome, time.perf_counter() - t0

    def run_live():
        system = LiveAdaptationSystem(
            universe, invariants, actions, source,
            apps=make_apps(), time_scale=time_scale,
        )
        with system:
            t0 = time.perf_counter()
            outcome = system.adapt_to(target, timeout=30.0)
            wall = time.perf_counter() - t0
        return outcome, wall

    def run_aio():
        t0 = time.perf_counter()
        outcome, _system = run_aio_adaptation(
            universe, invariants, actions, source, target,
            apps=make_apps(), time_scale=time_scale, timeout=30.0,
        )
        return outcome, time.perf_counter() - t0

    return {"sim": run_sim, "live": run_live, "aio": run_aio}


def test_backend_realization_latency():
    """One substrate, three backends: same MAP, per-backend latency.

    The committed-step count is backend-independent (the substrate's
    semantics set it); protocol-time duration is exact on the simulator
    and scheduler-approximate on the wall-clock backends; wall time is
    what each deployment style costs.
    """
    rows, data = [], {}
    for name, runner in _backend_runners().items():
        outcome, wall = runner()
        assert outcome.succeeded, f"{name}: {outcome.status} ({outcome.reason})"
        assert outcome.steps_committed == 5
        rows.append((name, round(outcome.duration, 1), round(wall * 1000, 2)))
        data[name] = {
            "duration_units": outcome.duration,
            "wall_ms": wall * 1000,
            "steps_committed": outcome.steps_committed,
        }
    report(
        "Fig. 4 MAP realization latency per backend",
        format_table(
            ["backend", "adaptation (protocol units)", "wall clock (ms)"], rows
        ),
        data=data,
        json_path=BACKENDS_JSON,
    )


def test_message_complexity_of_map(benchmark):
    """Coordination overhead: control messages per five-step adaptation."""

    def run():
        scenario = VideoScenario(seed=9)
        before = scenario.cluster.network.messages_sent
        outcome = scenario.run(warmup=10.0, cooldown=10.0)
        # subtract data-plane traffic: count only manager/agent endpoints
        return scenario, outcome

    scenario, outcome = benchmark(run)
    assert outcome.succeeded
    # 5 steps × (reset + reset_done + adapt_done + resume + resume_done)
    # + 2 flush requests = 27 control messages minimum
    benchmark.extra_info["network_messages_total"] = (
        scenario.cluster.network.messages_sent
    )
