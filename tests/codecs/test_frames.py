"""Unit tests for frames, the synthetic camera, packetizer, reassembler."""

import pytest

from repro.codecs.frames import Frame, Packetizer, Reassembler, SyntheticCamera


class TestCamera:
    def test_frames_are_deterministic(self):
        a = SyntheticCamera(seed=1, frame_size=64)
        b = SyntheticCamera(seed=1, frame_size=64)
        assert a.capture().data == b.capture().data

    def test_seed_changes_content(self):
        a = SyntheticCamera(seed=1).capture()
        b = SyntheticCamera(seed=2).capture()
        assert a.data != b.data

    def test_frame_ids_increment(self):
        cam = SyntheticCamera()
        assert cam.capture().frame_id == 0
        assert cam.capture().frame_id == 1
        assert cam.frames_captured == 2

    def test_frame_at_is_pure(self):
        cam = SyntheticCamera(seed=3)
        assert cam.frame_at(5).data == cam.frame_at(5).data

    def test_checksum_verifies(self):
        frame = SyntheticCamera().capture()
        assert frame.verify()
        assert not Frame(frame.frame_id, frame.data + b"x", frame.checksum).verify()

    def test_frame_size_validated(self):
        with pytest.raises(ValueError):
            SyntheticCamera(frame_size=0)


class TestPacketizer:
    def test_chunking(self):
        frame = Frame.create(0, b"x" * 100)
        packets = Packetizer(chunk_size=40).packetize(frame)
        assert [len(p.payload) for p in packets] == [40, 40, 20]
        assert [p.chunk_index for p in packets] == [0, 1, 2]
        assert all(p.chunk_count == 3 for p in packets)

    def test_sequence_numbers_globally_unique(self):
        packetizer = Packetizer(chunk_size=10)
        a = packetizer.packetize(Frame.create(0, b"x" * 25))
        b = packetizer.packetize(Frame.create(1, b"y" * 25))
        seqs = [p.seq for p in a + b]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)

    def test_empty_frame_yields_one_packet(self):
        packets = Packetizer().packetize(Frame.create(0, b""))
        assert len(packets) == 1
        assert packets[0].payload == b""

    def test_chunk_size_validated(self):
        with pytest.raises(ValueError):
            Packetizer(chunk_size=0)


class TestReassembler:
    def make_packets(self, data=b"A" * 100, frame_id=0):
        return Packetizer(chunk_size=40).packetize(Frame.create(frame_id, data))

    def test_frame_complete_only_when_all_chunks(self):
        reassembler = Reassembler()
        packets = self.make_packets()
        assert reassembler.add(packets[0]) is None
        assert reassembler.add(packets[1]) is None
        result = reassembler.add(packets[2])
        assert result is not None and result.ok
        assert result.data == b"A" * 100
        assert reassembler.frames_ok == 1

    def test_out_of_order_chunks(self):
        reassembler = Reassembler()
        packets = self.make_packets()
        reassembler.add(packets[2])
        reassembler.add(packets[0])
        result = reassembler.add(packets[1])
        assert result is not None and result.ok

    def test_interleaved_frames(self):
        reassembler = Reassembler()
        packetizer = Packetizer(chunk_size=40)
        frame_a = packetizer.packetize(Frame.create(0, b"a" * 80))
        frame_b = packetizer.packetize(Frame.create(1, b"b" * 80))
        reassembler.add(frame_a[0])
        reassembler.add(frame_b[0])
        assert reassembler.pending_frames == 2
        assert reassembler.add(frame_a[1]).frame_id == 0
        assert reassembler.add(frame_b[1]).frame_id == 1

    def test_corrupt_chunk_reported(self):
        reassembler = Reassembler()
        packets = self.make_packets()
        bad = packets[1].with_payload(b"garbage!" * 5)
        reassembler.add(packets[0])
        reassembler.add(bad)
        result = reassembler.add(packets[2])
        assert result is not None and not result.ok
        assert result.corrupt_chunks == (1,)
        assert reassembler.frames_corrupt == 1

    def test_non_data_packets_ignored(self):
        from repro.codecs.packets import marker_packet

        reassembler = Reassembler()
        assert reassembler.add(marker_packet(1, "k")) is None
