"""Unit tests for filters and the recomposable filter chain."""

import pytest

from repro.components.filters import Filter, FilterChain, PassthroughFilter
from repro.errors import ModelError


class Doubler(Filter):
    def process(self, packet):
        return [packet * 2]


class Duplicator(Filter):
    """Fan-out: one packet in, two out."""

    def process(self, packet):
        return [packet, packet]


class Absorber(Filter):
    """Swallows everything."""

    def process(self, packet):
        return []


class TestChainProcessing:
    def test_empty_chain_is_identity(self):
        chain = FilterChain("c")
        assert chain.push(5) == [5]

    def test_filters_applied_in_order(self):
        chain = FilterChain("c", [Doubler("d1"), Doubler("d2")])
        assert chain.push(3) == [12]

    def test_fan_out(self):
        chain = FilterChain("c", [Duplicator("dup"), Doubler("d")])
        assert chain.push(1) == [2, 2]

    def test_absorption_short_circuits(self):
        chain = FilterChain("c", [Absorber("a"), Doubler("d")])
        assert chain.push(1) == []

    def test_push_many(self):
        chain = FilterChain("c", [Doubler("d")])
        assert chain.push_many([1, 2]) == [2, 4]

    def test_counters(self):
        chain = FilterChain("c", [Duplicator("dup")])
        chain.push(1)
        chain.push(2)
        assert chain.packets_in == 2
        assert chain.packets_out == 4


class TestRecomposition:
    def test_insert_append_and_at_index(self):
        chain = FilterChain("c", [Doubler("a")])
        chain.insert_filter(Doubler("b"))
        chain.insert_filter(Doubler("front"), index=0)
        assert chain.filter_names() == ("front", "a", "b")

    def test_duplicate_name_rejected(self):
        chain = FilterChain("c", [Doubler("a")])
        with pytest.raises(ModelError):
            chain.insert_filter(Doubler("a"))

    def test_remove_returns_filter(self):
        chain = FilterChain("c", [Doubler("a"), Doubler("b")])
        removed = chain.remove_filter("a")
        assert removed.name == "a"
        assert chain.filter_names() == ("b",)

    def test_remove_unknown_raises(self):
        with pytest.raises(ModelError):
            FilterChain("c").remove_filter("nope")

    def test_replace_preserves_position(self):
        chain = FilterChain("c", [Doubler("a"), Doubler("b"), Doubler("c3")])
        old = chain.replace_filter("b", Duplicator("b2"))
        assert old.name == "b"
        assert chain.filter_names() == ("a", "b2", "c3")

    def test_replace_same_name_allowed(self):
        chain = FilterChain("c", [Doubler("x")])
        chain.replace_filter("x", Duplicator("x"))
        assert isinstance(chain.filters[0], Duplicator)

    def test_replace_with_existing_other_name_rejected(self):
        chain = FilterChain("c", [Doubler("a"), Doubler("b")])
        with pytest.raises(ModelError):
            chain.replace_filter("a", Doubler("b"))

    def test_recomposition_takes_effect_immediately(self):
        chain = FilterChain("c", [Doubler("d")])
        assert chain.push(1) == [2]
        chain.replace_filter("d", Duplicator("d"))
        assert chain.push(1) == [1, 1]

    def test_transmutations_discoverable(self):
        names = FilterChain("c").transmutation_names()
        assert {"insert_filter", "remove_filter", "replace_filter"} <= set(names)

    def test_chain_status_refraction(self):
        chain = FilterChain("c", [PassthroughFilter("p")])
        chain.push(1)
        status = chain.refract("chain_status")
        assert status["filters"] == ("p",)
        assert status["packets_in"] == 1

    def test_contains_len_index(self):
        chain = FilterChain("c", [Doubler("a")])
        assert "a" in chain and "z" not in chain
        assert len(chain) == 1
        assert chain.index_of("a") == 0

    def test_base_filter_is_abstract(self):
        with pytest.raises(NotImplementedError):
            Filter("f").process(1)
