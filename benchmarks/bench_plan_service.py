"""Experiment P2 — amortized planning: PlanningService vs fresh-planner-per-request.

The ROADMAP north star is serving heavy adaptation-request traffic: many
``(source, target)`` MAP queries against one compiled ``(S, I, T, A)``
spec.  The seed regime pays for the safe space, the SAG, and a full
Dijkstra on *every* request; the :class:`repro.serve.PlanningService`
amortizes all three — one spec entry shares the space + SAG + CSR view,
and batched :meth:`~repro.core.planner.AdaptationPlanner.plan_many`
answers every request sharing a source off one shortest-path tree.

Rows recorded into ``BENCH_plan_service.json`` (plans/sec):

* ``baseline`` — a fresh ``AdaptationPlanner`` per request (the seed
  regime), timed on a sample and reported per-request;
* ``service_cold`` — first batch through an empty service (pays the one
  space + SAG build plus one SPT per distinct source);
* ``service_warm`` — a second batch of *new* pairs over the same sources
  (SPT cache hits, paths extracted in O(path length));
* ``service_repeat`` — the first batch again (pure plan-cache hits).

Required shape: warm batched throughput ≥ 5x the fresh-planner baseline
on the groups=3 replicated video workload, with identical plans.
"""

from __future__ import annotations

import time
from pathlib import Path

from benchmarks.conftest import report
from repro.bench import format_table, replicated_video_system
from repro.core.planner import AdaptationPlanner
from repro.serve import PlanningService

PLAN_SERVICE_JSON = Path(__file__).with_name("BENCH_plan_service.json")

N_SOURCES = 40
TARGETS_PER_SOURCE = 8
BASELINE_SAMPLE = 5


def _request_batches(system):
    """Two deterministic request batches over the same source set.

    Batch 1 pairs each of the first ``N_SOURCES`` safe configurations
    with ``TARGETS_PER_SOURCE`` targets striding the safe set; batch 2
    keeps the sources but shifts the target stride — new pairs, warm
    sources.
    """
    space = AdaptationPlanner(
        system.universe, system.invariants, system.actions
    ).space
    configs = space.enumerate()
    sources = configs[:N_SOURCES]
    batch1, batch2 = [], []
    for i, source in enumerate(sources):
        for j in range(TARGETS_PER_SOURCE):
            batch1.append((source, configs[(i * 17 + j * 31) % len(configs)]))
            batch2.append((source, configs[(i * 13 + j * 37 + 5) % len(configs)]))
    return batch1, batch2


def _fresh_planner_plan(system, source, target):
    """The seed regime: every request builds its own planner."""
    planner = AdaptationPlanner(system.universe, system.invariants, system.actions)
    try:
        return planner.plan(source, target)
    except Exception:
        return None


def test_plan_service_throughput(benchmark):
    system = replicated_video_system(3)
    batch1, batch2 = _request_batches(system)

    # baseline: fresh planner per request, sampled (each sample pays the
    # full space + SAG build; running all 320 would take minutes)
    t0 = time.perf_counter()
    baseline_plans = [
        _fresh_planner_plan(system, source, target)
        for source, target in batch1[:BASELINE_SAMPLE]
    ]
    baseline_s = (time.perf_counter() - t0) / BASELINE_SAMPLE
    baseline_rate = 1.0 / baseline_s

    service = PlanningService()
    spec = (system.universe, system.invariants, system.actions)

    t0 = time.perf_counter()
    cold_plans = service.plan_many(*spec, batch1)
    cold_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    warm_plans = service.plan_many(*spec, batch2)
    warm_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    repeat_plans = service.plan_many(*spec, batch1)
    repeat_s = time.perf_counter() - t0
    benchmark.pedantic(lambda: service.plan_many(*spec, batch1), rounds=1, iterations=1)

    # identical answers before any speed claim
    assert repeat_plans == cold_plans
    for plan, expected in zip(cold_plans, baseline_plans):
        if expected is None:
            assert plan is None
        else:
            assert plan is not None
            assert plan.action_ids == expected.action_ids
            assert plan.total_cost == expected.total_cost

    cold_rate = len(batch1) / cold_s
    warm_rate = len(batch2) / warm_s
    repeat_rate = len(batch1) / repeat_s
    speedup_cold = cold_rate / baseline_rate
    speedup_warm = warm_rate / baseline_rate
    rows = [
        ("fresh planner per request (seed)", f"{baseline_rate:,.0f}", "1.0x"),
        ("service, cold batch", f"{cold_rate:,.0f}", f"{speedup_cold:.1f}x"),
        ("service, warm batch (new pairs)", f"{warm_rate:,.0f}", f"{speedup_warm:.1f}x"),
        ("service, repeat batch (cache)", f"{repeat_rate:,.0f}",
         f"{repeat_rate / baseline_rate:.1f}x"),
    ]
    report(
        "P2 — PlanningService throughput, groups=3 (512 vertices)",
        format_table(["regime", "plans/sec", "vs baseline"], rows),
        data={
            "groups": 3,
            "requests_per_batch": len(batch1),
            "distinct_sources": N_SOURCES,
            "baseline_plans_per_sec": round(baseline_rate, 1),
            "service_cold_plans_per_sec": round(cold_rate, 1),
            "service_warm_plans_per_sec": round(warm_rate, 1),
            "service_repeat_plans_per_sec": round(repeat_rate, 1),
            "speedup_warm_vs_baseline": round(speedup_warm, 2),
        },
        json_path=PLAN_SERVICE_JSON,
        throughput=(len(batch2), warm_s),
    )
    benchmark.extra_info["speedup_warm_vs_baseline"] = speedup_warm
    stats = service.stats()
    assert stats.specs == 1  # one spec entry served every batch
    assert warm_plans is not None
    assert speedup_warm >= 5.0, (
        f"warm batched throughput only {speedup_warm:.1f}x over baseline"
    )


def test_plan_service_shares_across_equal_specs(benchmark):
    """Two separately built (but equal) specs land on one warm entry."""
    system_a = replicated_video_system(2)
    system_b = replicated_video_system(2)
    assert system_a.universe is not system_b.universe
    service = PlanningService()
    plan_a = service.plan(
        system_a.universe, system_a.invariants, system_a.actions,
        system_a.source, system_a.target,
    )
    timed = benchmark.pedantic(
        lambda: service.plan(
            system_b.universe, system_b.invariants, system_b.actions,
            system_b.source, system_b.target,
        ),
        rounds=1, iterations=1,
    )
    assert timed.action_ids == plan_a.action_ids
    assert service.stats().specs == 1
    assert service.stats().warm_hits >= 1
