"""CSR kernel vs the dict-graph reference: exact pinning, tie-breaks included.

The CSR kernels are only allowed to be *faster* — every distance, every
path, and every deterministic tie-break must match
:func:`repro.graphs.dijkstra.dijkstra` / :func:`shortest_path` /
:func:`repro.graphs.yen.k_shortest_paths` bit for bit.  Bidirectional
search is the one exception: its cost always matches, but among
equal-cost optima it may pick a different concrete path (its tie-break
runs at the meeting node, not along the forward frontier), so it is
pinned on cost + structural validity.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import Digraph, dijkstra, k_shortest_paths, shortest_path
from repro.graphs.csr import (
    CSRGraph,
    bidirectional_shortest_path,
    k_shortest_paths_csr,
)


@st.composite
def random_digraphs(draw):
    n = draw(st.integers(min_value=2, max_value=8))
    edge_count = draw(st.integers(min_value=1, max_value=20))
    edges = []
    for index in range(edge_count):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u == v:
            continue
        w = draw(st.integers(min_value=0, max_value=10))
        edges.append((u, v, float(w), f"e{index}"))
    return n, edges


def build(n, edges):
    graph = Digraph()
    for node in range(n):
        graph.add_node(node)
    for u, v, w, label in edges:
        graph.add_edge(u, v, label, w)
    return graph


@given(random_digraphs())
@settings(max_examples=80, deadline=None)
def test_spt_distances_match_dict_dijkstra(case):
    n, edges = case
    graph = build(n, edges)
    csr = CSRGraph.from_digraph(graph)
    for source in range(n):
        dist, _ = dijkstra(graph, source)
        assert csr.shortest_path_tree(source).reachable() == dist


@given(random_digraphs())
@settings(max_examples=80, deadline=None)
def test_spt_and_point_to_point_paths_match_exactly(case):
    """Same nodes, same edge objects, same tie-breaks — not just costs."""
    n, edges = case
    graph = build(n, edges)
    csr = CSRGraph.from_digraph(graph)
    for source in range(n):
        tree = csr.shortest_path_tree(source)
        for target in range(n):
            expected = shortest_path(graph, source, target)
            assert tree.path_to(target) == expected
            assert csr.shortest_path(source, target) == expected


@given(random_digraphs())
@settings(max_examples=60, deadline=None)
def test_bidirectional_matches_on_cost_and_validity(case):
    n, edges = case
    graph = build(n, edges)
    csr = CSRGraph.from_digraph(graph)
    for source in range(n):
        for target in range(n):
            expected = shortest_path(graph, source, target)
            got = bidirectional_shortest_path(csr, source, target)
            if expected is None:
                assert got is None
                continue
            assert got is not None
            assert got.cost == expected.cost
            assert got.nodes[0] == source and got.nodes[-1] == target
            assert got.cost == pytest.approx(sum(e.weight for e in got.edges))
            for edge, (u, v) in zip(got.edges, zip(got.nodes, got.nodes[1:])):
                assert (edge.source, edge.target) == (u, v)


@given(random_digraphs(), st.integers(min_value=1, max_value=5))
@settings(max_examples=60, deadline=None)
def test_csr_yen_identical_to_dict_yen(case, k):
    n, edges = case
    graph = build(n, edges)
    csr = CSRGraph.from_digraph(graph)
    assert k_shortest_paths_csr(csr, 0, n - 1, k) == k_shortest_paths(
        graph, 0, n - 1, k
    )


@given(random_digraphs())
@settings(max_examples=40, deadline=None)
def test_reverse_csr_mirrors_forward_edges(case):
    n, edges = case
    csr = CSRGraph.from_digraph(build(n, edges))
    inbound = {node: [] for node in range(n)}
    for edge_id, edge in enumerate(csr.edge_objects):
        inbound[edge.target].append(edge_id)
    for node in range(n):
        index = csr.index_of[node]
        got = sorted(
            csr.redges[slot]
            for slot in range(csr.roffsets[index], csr.roffsets[index + 1])
        )
        assert got == sorted(inbound[node])


def test_zero_length_and_unreachable_paths():
    graph = Digraph()
    graph.add_node("a")
    graph.add_node("b")
    graph.add_edge("a", "b", "ab", 1.0)
    csr = CSRGraph.from_digraph(graph)
    zero = csr.shortest_path("a", "a")
    assert zero is not None and zero.cost == 0.0 and zero.edges == ()
    assert csr.shortest_path("b", "a") is None
    assert bidirectional_shortest_path(csr, "b", "a") is None
    tree = csr.shortest_path_tree("b")
    assert tree.path_to("a") is None
    assert tree.distance_to("a") is None
    assert tree.distance_to("b") == 0.0
