"""Unit tests for the manager state machine (Figure 2) — pure, no sim."""

import pytest

from repro.core.planner import AdaptationPlan, PlanStep
from repro.errors import IllegalTransitionError
from repro.protocol.effects import (
    AdaptationAborted,
    AdaptationComplete,
    AwaitUser,
    RequestReplan,
    Send,
    SetTimer,
    StepCommitted,
    StepRolledBack,
)
from repro.protocol.failures import FailurePolicy, ReplanKind
from repro.protocol.manager import ManagerMachine, ManagerState
from repro.protocol.messages import (
    AdaptDone,
    FlushRequest,
    ResetCmd,
    ResetDone,
    ResumeCmd,
    ResumeDone,
    RollbackCmd,
    RollbackDone,
)


def sends(effects, message_type=None):
    out = [e for e in effects if isinstance(e, Send)]
    if message_type is not None:
        out = [e for e in out if isinstance(e.message, message_type)]
    return out


def of(effects, effect_type):
    return [e for e in effects if isinstance(e, effect_type)]


@pytest.fixture
def machine(universe):
    return ManagerMachine(universe, policy=FailurePolicy())


@pytest.fixture
def plan(planner, source, target):
    return planner.plan(source, target)


def current_key(machine):
    return machine._current_key


class TestHappyPath:
    def test_start_sends_resets_to_participants(self, machine, plan):
        effects = machine.start(plan)
        resets = sends(effects, ResetCmd)
        # first step is A2 → only the handheld participates
        assert [e.destination for e in resets] == ["handheld"]
        assert machine.state == ManagerState.ADAPTING
        assert of(effects, SetTimer)

    def test_empty_plan_completes_immediately(self, machine, plan, source):
        empty = AdaptationPlan(source, source, (), 0.0)
        effects = machine.start(empty)
        assert isinstance(effects[0], AdaptationComplete)

    def test_adapt_done_triggers_resume(self, machine, plan):
        machine.start(plan)
        key = current_key(machine)
        effects = machine.on_message(AdaptDone(step_key=key, process="handheld"))
        resumes = sends(effects, ResumeCmd)
        assert [e.destination for e in resumes] == ["handheld"]
        assert machine.state == ManagerState.RESUMING

    def test_resume_done_commits_and_advances(self, machine, plan):
        machine.start(plan)
        key = current_key(machine)
        machine.on_message(AdaptDone(step_key=key, process="handheld"))
        effects = machine.on_message(ResumeDone(step_key=key, process="handheld"))
        commits = of(effects, StepCommitted)
        assert len(commits) == 1
        assert commits[0].step.action.action_id == plan.steps[0].action.action_id
        # next step begins automatically
        assert machine.state == ManagerState.ADAPTING
        assert machine.step_index == 1

    def test_full_walkthrough_completes(self, machine, plan):
        effects = machine.start(plan)
        for _ in plan.steps:
            key = current_key(machine)
            step = machine.current_step
            participants = sorted(step.participants(machine.universe))
            for process in participants:
                machine.on_message(ResetDone(step_key=key, process=process))
                effects = machine.on_message(AdaptDone(step_key=key, process=process))
            for process in participants:
                effects = machine.on_message(ResumeDone(step_key=key, process=process))
            if machine.state == ManagerState.RUNNING:
                break
        complete = of(effects, AdaptationComplete)
        assert complete and complete[0].total_steps == 5
        assert machine.committed == plan.target

    def test_stale_messages_ignored(self, machine, plan):
        machine.start(plan)
        assert machine.on_message(AdaptDone(step_key="old/9#9", process="x")) == []

    def test_busy_manager_rejects_new_plan(self, machine, plan):
        machine.start(plan)
        with pytest.raises(IllegalTransitionError):
            machine.start(plan)


class TestTimeoutsAndRetransmits:
    def test_retransmit_resends_resets(self, machine, plan):
        machine.start(plan)
        effects = machine.on_timeout("retransmit")
        assert sends(effects, ResetCmd)
        assert machine.state == ManagerState.ADAPTING

    def test_phase_timeout_before_resume_rolls_back(self, machine, plan):
        machine.start(plan)
        effects = machine.on_timeout("phase")
        assert machine.state == ManagerState.ROLLING_BACK
        assert sends(effects, RollbackCmd)

    def test_retransmit_budget_exhaustion_rolls_back(self, machine, plan):
        machine.start(plan)
        effects = []
        for _ in range(machine.policy.max_retransmits + 1):
            effects = machine.on_timeout("retransmit")
        assert machine.state == ManagerState.ROLLING_BACK

    def test_post_resume_timeout_keeps_retrying(self, machine, plan):
        machine.start(plan)
        key = current_key(machine)
        machine.on_message(AdaptDone(step_key=key, process="handheld"))
        effects = machine.on_timeout("phase")
        # run-to-completion: resume retransmitted, no rollback
        assert sends(effects, ResumeCmd)
        assert machine.state == ManagerState.RESUMING

    def test_post_resume_safety_valve(self, machine, plan):
        machine.start(plan)
        key = current_key(machine)
        machine.on_message(AdaptDone(step_key=key, process="handheld"))
        effects = []
        for _ in range(machine.policy.max_post_resume_retransmits + 1):
            effects = machine.on_timeout("retransmit")
        assert machine.state == ManagerState.AWAIT_USER
        assert of(effects, AwaitUser)

    def test_unknown_timer_ignored(self, machine, plan):
        machine.start(plan)
        assert machine.on_timeout("bogus") == []


class TestFailureCascade:
    def roll_back_step(self, machine):
        """Drive the current step through a rollback."""
        machine.on_timeout("phase")
        key = current_key(machine)
        effects = []
        for process in sorted(machine._pending_rollback.copy()):
            effects = machine.on_message(RollbackDone(step_key=key, process=process))
        return effects

    def test_first_failure_retries_same_step(self, machine, plan):
        machine.start(plan)
        effects = self.roll_back_step(machine)
        assert of(effects, StepRolledBack)
        assert machine.state == ManagerState.ADAPTING
        assert machine.attempt == 1
        assert machine.step_index == 0
        assert sends(effects, ResetCmd)  # fresh attempt key
        assert current_key(machine).endswith("#1")

    def test_second_failure_requests_alternate_plan(self, machine, plan):
        machine.start(plan)
        self.roll_back_step(machine)
        effects = self.roll_back_step(machine)
        replans = of(effects, RequestReplan)
        assert len(replans) == 1
        assert replans[0].kind == ReplanKind.ALTERNATE_TO_TARGET
        assert replans[0].failed_edges == ((plan.source, plan.steps[0].action.action_id),)
        assert machine.state == ManagerState.PREPARING

    def test_new_plan_adopted(self, machine, plan, planner, source, target):
        machine.start(plan)
        self.roll_back_step(machine)
        self.roll_back_step(machine)
        alternates = planner.plan_k(source, target, 4)
        effects = machine.on_new_plan(alternates[1])
        assert sends(effects, ResetCmd)
        assert machine.state == ManagerState.ADAPTING

    def test_new_plan_must_start_at_committed(self, machine, plan, planner, target):
        machine.start(plan)
        self.roll_back_step(machine)
        self.roll_back_step(machine)
        bogus = AdaptationPlan(target, target, (), 0.0)
        with pytest.raises(IllegalTransitionError):
            machine.on_new_plan(bogus)

    def test_no_plan_falls_back_to_return_home(self, machine, plan):
        machine.start(plan)
        self.roll_back_step(machine)
        self.roll_back_step(machine)
        effects = machine.on_no_plan()
        # still at the source: nothing to return through → abort
        aborts = of(effects, AdaptationAborted)
        assert aborts and machine.state == ManagerState.RUNNING

    def test_no_plan_away_from_source_requests_return(self, machine, plan):
        machine.start(plan)
        # commit first step, then fail the second twice
        key = current_key(machine)
        machine.on_message(AdaptDone(step_key=key, process="handheld"))
        machine.on_message(ResumeDone(step_key=key, process="handheld"))
        self.roll_back_step(machine)
        self.roll_back_step(machine)
        effects = machine.on_no_plan()
        replans = of(effects, RequestReplan)
        assert replans and replans[0].kind == ReplanKind.RETURN_TO_SOURCE
        assert machine.returning

    def test_no_way_home_awaits_user(self, machine, plan):
        machine.start(plan)
        key = current_key(machine)
        machine.on_message(AdaptDone(step_key=key, process="handheld"))
        machine.on_message(ResumeDone(step_key=key, process="handheld"))
        self.roll_back_step(machine)
        self.roll_back_step(machine)
        machine.on_no_plan()  # → request return home
        effects = machine.on_no_plan()  # even that fails
        assert of(effects, AwaitUser)
        assert machine.state == ManagerState.AWAIT_USER

    def test_return_journey_completion_reports_aborted(self):
        # The video library has no reverse actions, so "return to source"
        # is impossible there (see EXPERIMENTS.md).  Use a reversible toy
        # system: X1 → X2 → X3 with inverse actions.
        from repro.core.actions import ActionLibrary, AdaptiveAction
        from repro.core.invariants import InvariantSet
        from repro.core.model import ComponentUniverse
        from repro.core.planner import AdaptationPlanner

        universe = ComponentUniverse.from_names(
            ["X1", "X2", "X3"], {n: "node" for n in ("X1", "X2", "X3")}
        )
        invariants = InvariantSet.of("one_of(X1, X2, X3)")
        actions = ActionLibrary(
            [
                AdaptiveAction.replace("S12", "X1", "X2", 1),
                AdaptiveAction.replace("S21", "X2", "X1", 1),
                AdaptiveAction.replace("S23", "X2", "X3", 1),
            ]
        )
        planner = AdaptationPlanner(universe, invariants, actions)
        source = universe.configuration("X1")
        target = universe.configuration("X3")
        machine = ManagerMachine(universe, policy=FailurePolicy(max_alternate_plans=0))
        machine.start(planner.plan(source, target))
        # commit step 1 (S12)
        key = current_key(machine)
        machine.on_message(AdaptDone(step_key=key, process="node"))
        machine.on_message(ResumeDone(step_key=key, process="node"))
        # fail step 2 (S23) twice → replan; alternates disabled → return home
        self.roll_back_step(machine)
        effects = self.roll_back_step(machine)
        replans = of(effects, RequestReplan)
        assert replans and replans[0].kind == ReplanKind.RETURN_TO_SOURCE
        home = planner.plan(machine.committed, source)
        machine.on_new_plan(home)
        key = current_key(machine)
        machine.on_message(AdaptDone(step_key=key, process="node"))
        effects = machine.on_message(ResumeDone(step_key=key, process="node"))
        aborts = of(effects, AdaptationAborted)
        assert aborts
        assert machine.committed == source


class TestFlushRoles:
    def test_flush_provider_drives_reset_flags(self, universe, planner, source, target):
        from repro.apps.video.scenario import make_video_flush_provider

        machine = ManagerMachine(
            universe, flush_provider=make_video_flush_provider(universe)
        )
        plan = planner.plan(source, target)
        # find the A4 step (capability-reducing decoder swap)
        machine.start(plan)
        while machine.current_step.action.action_id != "A4":
            key = current_key(machine)
            for process in sorted(machine.current_step.participants(universe)):
                machine.on_message(AdaptDone(step_key=key, process=process))
            for process in sorted(machine.current_step.participants(universe)):
                machine.on_message(ResumeDone(step_key=key, process=process))
        # Begin-step effects for A4 went out already; re-issue via retransmit
        effects = machine.on_timeout("retransmit")
        flushes = sends(effects, FlushRequest)
        resets = sends(effects, ResetCmd)
        assert [e.destination for e in flushes] == ["server"]
        assert resets and resets[0].message.await_flush
        assert not resets[0].message.inject_flush
