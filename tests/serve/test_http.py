"""HTTP adapter: round trips, admission control, golden error envelopes."""

import http.client
import json
import threading
import time

import pytest

from repro.serve import (
    ControlPlane,
    PlanRequest,
    ServerThread,
)
from tests.serve.conftest import STUCK_MANIFEST


def request(address, method, path, body=None, headers=None):
    """One HTTP exchange; returns (status, parsed-or-raw body, headers)."""
    conn = http.client.HTTPConnection(*address, timeout=30)
    try:
        payload = None
        if isinstance(body, (dict, list)):
            payload = json.dumps(body).encode("utf-8")
            headers = {"Content-Type": "application/json", **(headers or {})}
        elif isinstance(body, str):
            payload = body.encode("utf-8")
        conn.request(method, path, body=payload, headers=headers or {})
        response = conn.getresponse()
        raw = response.read()
        content_type = response.getheader("Content-Type", "")
        if content_type.startswith("application/json"):
            return response.status, json.loads(raw), dict(response.getheaders())
        return response.status, raw, dict(response.getheaders())
    finally:
        conn.close()


@pytest.fixture
def server():
    with ServerThread(ControlPlane(), host="127.0.0.1", port=0) as thread:
        yield thread


def register(server, text):
    status, body, _ = request(server.address, "POST", "/v1/specs", body=text)
    assert status == 200, body
    return body["result"]["digest"]


class TestRoundTrips:
    def test_healthz(self, server):
        status, body, _ = request(server.address, "GET", "/healthz")
        assert (status, body) == (200, {"ok": True})

    def test_register_accepts_raw_text_and_json(self, server, video_text):
        status, body, _ = request(
            server.address, "POST", "/v1/specs", body=video_text
        )
        assert status == 200
        assert body["ok"] is True
        assert body["result"]["created"] is True
        status, again, _ = request(
            server.address, "POST", "/v1/specs", body={"manifest": video_text}
        )
        assert status == 200
        assert again["result"]["digest"] == body["result"]["digest"]
        assert again["result"]["created"] is False

    def test_plan_round_trip_matches_dispatch_wire(self, server, video_text):
        digest = register(server, video_text)
        status, body, _ = request(
            server.address, "POST", "/v1/plan",
            body={"spec": digest, "source": "source", "target": "target"},
        )
        assert status == 200
        assert body["ok"] is True
        assert body["kind"] == "plan"
        assert body["result"]["plan"]["cost"] == 50.0
        # the wire answer is exactly the sans-io dispatch answer
        direct = ControlPlane()
        direct.dispatch(
            PlanRequest(source="source", target="target", manifest=video_text)
        )
        wire = direct.dispatch(
            PlanRequest(source="source", target="target", spec=digest)
        )
        from repro.serve import envelope

        assert body == envelope(wire)

    def test_repeated_plan_hits_the_warm_fast_path(self, server, video_text):
        digest = register(server, video_text)
        body = {"spec": digest, "source": "source", "target": "target"}
        first = request(server.address, "POST", "/v1/plan", body=body)
        second = request(server.address, "POST", "/v1/plan", body=body)
        assert first[1] == second[1]
        status, stats, _ = request(server.address, "GET", "/v1/stats")
        assert stats["result"]["server"]["fast_hits"] == 1
        # register + two plans
        assert stats["result"]["server"]["served"] == 3

    def test_plan_batch_streams_ndjson(self, server, video_text):
        digest = register(server, video_text)
        status, raw, headers = request(
            server.address, "POST", "/v1/plan-batch",
            body={
                "spec": digest,
                "pairs": [["source", "target"], ["target", "target"]],
            },
        )
        assert status == 200
        assert headers["Content-Type"] == "application/x-ndjson"
        lines = [json.loads(line) for line in raw.decode().splitlines()]
        assert len(lines) == 3
        assert [line["reachable"] for line in lines[:2]] == [True, True]
        assert lines[2]["summary"] == {
            "digest": digest, "requested": 2, "reachable": 2
        }

    def test_verify_paths_round_trip(self, server, property_text):
        digest = register(server, property_text)
        status, body, _ = request(
            server.address, "POST", "/v1/verify-paths",
            body={
                "spec": digest, "source": "source", "target": "target",
                "property": "encoder specified",
            },
        )
        assert status == 200
        assert body["result"]["holds"] is True
        assert body["result"]["property"] == "encoder specified"

    def test_lint_round_trip(self, server, video_text):
        status, body, _ = request(
            server.address, "POST", "/v1/lint",
            body={"manifest": video_text},
        )
        assert status == 200
        assert body["result"]["failed"] is False
        assert body["result"]["summary"]["errors"] == 0

    def test_evict_via_delete(self, server, video_text):
        digest = register(server, video_text)
        status, body, _ = request(
            server.address, "DELETE", f"/v1/specs/{digest}"
        )
        assert status == 200
        assert body["result"]["evicted"] is True
        status, body, _ = request(
            server.address, "POST", "/v1/plan",
            body={"spec": digest, "source": "source", "target": "target"},
        )
        assert status == 404
        assert body["error"]["code"] == "unknown-spec"

    def test_unknown_route_is_not_found(self, server):
        status, body, _ = request(server.address, "GET", "/v1/nope")
        assert status == 404
        assert body["error"]["code"] == "not-found"


class TestGoldenErrorEnvelopes:
    """Exact wire bodies for the documented failure modes."""

    def test_unknown_spec(self, server):
        status, body, _ = request(
            server.address, "POST", "/v1/plan",
            body={"spec": "x", "source": "a", "target": "b"},
        )
        assert status == 404
        assert body == {
            "ok": False,
            "error": {
                "code": "unknown-spec",
                "message": "unknown spec digest 'x'",
            },
        }

    def test_no_safe_path(self, server):
        status, body, _ = request(
            server.address, "POST", "/v1/plan",
            body={
                "manifest": STUCK_MANIFEST,
                "source": "only_a", "target": "only_b",
            },
        )
        assert status == 422
        assert body == {
            "ok": False,
            "error": {
                "code": "no-safe-path",
                "message": "no safe adaptation path from {A} to {B}",
            },
        }

    def test_bad_manifest_never_leaks_a_traceback(self, server):
        status, body, _ = request(
            server.address, "POST", "/v1/specs", body="[components\nbroken"
        )
        assert status == 422
        assert body["error"]["code"] == "bad-manifest"
        assert "Traceback" not in json.dumps(body)

    def test_deadline_exceeded(self, server, video_text):
        status, body, _ = request(
            server.address, "POST", "/v1/plan",
            body={
                "manifest": video_text,
                "source": "source", "target": "target",
            },
            headers={"X-Deadline-Ms": "0"},
        )
        assert status == 504
        assert body == {
            "ok": False,
            "error": {
                "code": "deadline-exceeded",
                "message": "request exceeded its 0 ms deadline",
            },
        }

    def test_unknown_fields_rejected(self, server, video_text):
        status, body, _ = request(
            server.address, "POST", "/v1/plan",
            body={
                "manifest": video_text, "source": "a", "target": "b",
                "frobnicate": 1,
            },
        )
        assert status == 400
        assert body["error"]["code"] == "bad-request"
        assert "frobnicate" in body["error"]["message"]

    def test_invalid_json_body(self, server):
        status, body, _ = request(
            server.address, "POST", "/v1/plan", body="{not json",
        )
        assert status == 400
        assert body["error"]["code"] == "bad-request"


class GatedControl(ControlPlane):
    """Plan dispatches block on a gate; everything else is untouched."""

    def __init__(self, gate):
        super().__init__()
        self.gate = gate

    def dispatch(self, request):
        if isinstance(request, PlanRequest):
            self.gate.wait(timeout=30)
        return super().dispatch(request)


def plan_in_thread(address, video_text, results):
    results.append(
        request(
            address, "POST", "/v1/plan",
            body={
                "manifest": video_text,
                "source": "source", "target": "target",
            },
        )
    )


def wait_for_inflight(address, count, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _, stats, _ = request(address, "GET", "/v1/stats")
        if stats["result"]["server"]["inflight"] >= count:
            return stats
        time.sleep(0.01)
    raise AssertionError(f"never saw {count} in-flight requests")


class TestAdmissionControl:
    def test_over_capacity_returns_429_not_collapse(self, video_text):
        gate = threading.Event()
        control = GatedControl(gate)
        with ServerThread(
            control, host="127.0.0.1", port=0, max_inflight=1, queue_limit=0
        ) as server:
            results = []
            blocked = threading.Thread(
                target=plan_in_thread,
                args=(server.address, video_text, results),
            )
            blocked.start()
            try:
                wait_for_inflight(server.address, 1)
                status, body, _ = request(
                    server.address, "POST", "/v1/plan",
                    body={
                        "manifest": video_text,
                        "source": "source", "target": "target",
                    },
                )
                assert status == 429
                assert body == {
                    "ok": False,
                    "error": {
                        "code": "overloaded",
                        "message": (
                            "server at capacity (1 in flight, 0 queued)"
                        ),
                    },
                }
            finally:
                gate.set()
                blocked.join(timeout=30)
            ((status, body, _),) = results
            assert status == 200 and body["ok"] is True
            _, stats, _ = request(server.address, "GET", "/v1/stats")
            assert stats["result"]["server"]["rejected_overload"] == 1

    def test_shutdown_drains_inflight_requests(self, video_text):
        gate = threading.Event()
        server = ServerThread(
            GatedControl(gate), host="127.0.0.1", port=0, drain_timeout=10
        ).start()
        results = []
        blocked = threading.Thread(
            target=plan_in_thread, args=(server.address, video_text, results)
        )
        blocked.start()
        wait_for_inflight(server.address, 1)
        stopper = threading.Thread(target=server.stop)
        stopper.start()
        time.sleep(0.1)  # let shutdown enter its drain loop
        gate.set()
        blocked.join(timeout=30)
        stopper.join(timeout=30)
        assert not stopper.is_alive()
        ((status, body, _),) = results
        assert status == 200
        assert body["ok"] is True
