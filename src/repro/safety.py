"""Executable safety checker — the paper's §3 definition, run over traces.

    "A dynamic adaptation process is safe iff
       – It does not violate dependency relationships among components.
       – It does not interrupt critical communication segments."

Given an execution :class:`~repro.trace.Trace`, the checker verifies:

1. **Dependency clause** — every committed configuration satisfies every
   invariant (safe configurations only, per §3.1).
2. **CCS clause** — for every CID, ``S_CID ∈ CCS`` (or the segment is still
   a live prefix at the instant the trace ends), and no application-level
   corruption was recorded (corruption is the observable symptom of an
   interrupted segment).
3. **Global-safe-state discipline** (optional, on by default) — every
   local in-action fired while its hosting process was blocked, i.e. held
   in a safe state, per §3.3's equivalence proof.

Since the observation-bus refactor the checker is *streaming-first*:
:class:`StreamingSafetyChecker` consumes one record at a time (an
:class:`~repro.obs.Observer`, so it subscribes directly to a trace's
:class:`~repro.obs.ObservationBus`), keeps O(open segments) state, and
can **enforce** online — the first violation raises a structured
:class:`~repro.errors.SafetyViolationError` the moment the violating
record is published, aborting an unsafe adaptation in flight.
:meth:`SafetyChecker.check` is a thin batch wrapper that feeds a finished
trace through the same streaming core; the pre-bus replay implementation
survives as :meth:`SafetyChecker.check_replay`, the reference oracle the
property tests pin the streaming verdict against, byte for byte.

Baseline strategies in :mod:`repro.baselines` demonstrably fail these
checks; the safe-adaptation protocol passes them under randomized
schedules and injected faults (see ``tests/protocol`` and
``benchmarks/bench_safety_vs_baselines.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.ccs import CCSSpec, CCSTracker
from repro.core.invariants import InvariantSet
from repro.errors import SafetyViolationError, UnknownComponentError
from repro.obs import Observer
from repro.trace import (
    AdaptationApplied,
    BlockRecord,
    CommRecord,
    ConfigCommitted,
    CorruptionRecord,
    Trace,
    TraceRecord,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.model import ComponentUniverse


@dataclass(frozen=True)
class Violation:
    """One piece of evidence that an execution was unsafe."""

    kind: str  # "dependency" | "ccs" | "corruption" | "discipline"
    time: float
    detail: str


@dataclass
class SafetyReport:
    """Checker output: list of violations plus summary counters."""

    violations: List[Violation] = field(default_factory=list)
    configurations_checked: int = 0
    segments_checked: int = 0
    segments_complete: int = 0
    in_actions_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def by_kind(self, kind: str) -> Tuple[Violation, ...]:
        return tuple(v for v in self.violations if v.kind == kind)

    def raise_if_unsafe(self) -> None:
        if not self.ok:
            first = self.violations[0]
            raise SafetyViolationError(
                f"{len(self.violations)} safety violation(s); first: "
                f"[{first.kind} @ t={first.time:g}] {first.detail}",
                violation=first,
            )

    def summary(self) -> str:
        status = "SAFE" if self.ok else f"UNSAFE ({len(self.violations)} violations)"
        return (
            f"{status} — {self.configurations_checked} configurations, "
            f"{self.segments_complete}/{self.segments_checked} segments complete, "
            f"{self.in_actions_checked} in-actions checked"
        )


def _dependency_violation(record: ConfigCommitted, invariant_name: str) -> Violation:
    members = "{" + ",".join(sorted(record.configuration)) + "}"
    return Violation(
        kind="dependency",
        time=record.time,
        detail=(
            f"configuration {members} (step {record.step_id}) "
            f"violates invariant {invariant_name!r}"
        ),
    )


def _ccs_violation(cid: int, sequence: Tuple[str, ...], time: float) -> Violation:
    return Violation(
        kind="ccs",
        time=time,
        detail=(
            f"segment CID={cid} interrupted: observed "
            f"{list(sequence)} is not in CCS"
        ),
    )


class StreamingSafetyChecker(Observer):
    """The §3 safety definition, checked one record at a time.

    Per published record the work is O(1)-ish: the dependency clause is
    evaluated against the PR-1 compiled-invariant mask closure when a
    *universe* is supplied (falling back to the AST evaluator for
    configurations containing unknown components, so verdict *details*
    are always produced by the semantic source of truth), the CCS clause
    advances an incremental :class:`~repro.ccs.CCSTracker`, and the
    discipline clause tracks the per-process blocked map in place.

    :meth:`finish` assembles a :class:`SafetyReport` that is
    **byte-identical** to the batch replay verdict over the same records
    — same violations, same counters, same ordering (dependency, then
    CCS in first-seen-CID order, then corruption, then discipline) — and
    is idempotent, so a live run can be inspected mid-flight.

    With ``enforce=True`` the checker is a tripwire: the first record
    that proves a violation raises :class:`SafetyViolationError`
    (carrying the structured :class:`Violation`) out of the emitting
    ``trace.append``, halting the adaptation at the violation instant.
    A CCS violation trips the moment a segment's action sequence leaves
    the CCS prefix set — from that record on, no continuation can make
    the segment complete, so the final verdict is already decided.
    """

    def __init__(
        self,
        invariants: InvariantSet,
        ccs: Optional[CCSSpec] = None,
        check_discipline: bool = True,
        universe: "Optional[ComponentUniverse]" = None,
        enforce: bool = False,
    ):
        self.invariants = invariants
        self.ccs = ccs
        self.check_discipline = check_discipline
        self.enforce = enforce
        self.universe = universe
        self._mask_ok: Optional[Callable[[int], bool]] = None
        if universe is not None:
            try:
                self._mask_ok = invariants.compile_mask(universe.atom_bits)
            except KeyError:
                # An invariant mentions atoms outside the universe: the
                # compiled fast path cannot represent it; use the AST.
                self._mask_ok = None
        self._tracker = CCSTracker(ccs) if ccs is not None else None
        self._dependency: List[Violation] = []
        self._corruption: List[Violation] = []
        self._discipline: List[Violation] = []
        self._blocked: Dict[str, bool] = {}
        self.configurations_checked = 0
        self.in_actions_checked = 0
        self.records_seen = 0
        #: The first violation observed, in record order (set even when
        #: ``enforce`` is off — time-to-first-violation measurements).
        self.first_violation: Optional[Violation] = None

    @property
    def name(self) -> str:
        return "safety"

    @property
    def tripped(self) -> bool:
        return self.first_violation is not None

    # -- per-record entry --------------------------------------------------------
    def feed(self, record: TraceRecord) -> None:
        self.records_seen += 1
        if isinstance(record, ConfigCommitted):
            self._on_commit(record)
        elif isinstance(record, CommRecord):
            self._on_comm(record)
        elif isinstance(record, CorruptionRecord):
            violation = Violation(
                kind="corruption",
                time=record.time,
                detail=f"[{record.process}] {record.detail}",
            )
            self._corruption.append(violation)
            self._trip(violation)
        elif isinstance(record, BlockRecord):
            self._blocked[record.process] = record.blocked
        elif isinstance(record, AdaptationApplied):
            if self.check_discipline:
                self.in_actions_checked += 1
                if not self._blocked.get(record.process, False):
                    violation = Violation(
                        kind="discipline",
                        time=record.time,
                        detail=(
                            f"in-action {record.action_id} executed on "
                            f"process {record.process!r} while it was not "
                            "held in a safe (blocked) state"
                        ),
                    )
                    self._discipline.append(violation)
                    self._trip(violation)

    # -- clause 1: dependency relationships ---------------------------------------
    def _on_commit(self, record: ConfigCommitted) -> None:
        self.configurations_checked += 1
        if self._mask_ok is not None:
            try:
                mask = self.universe.mask_of_names(record.configuration)
            except UnknownComponentError:
                mask = None
            if mask is not None and self._mask_ok(mask):
                return  # compiled fast path: configuration is safe
        # Slow path only for violating (or mask-unrepresentable) commits:
        # the AST evaluator names the broken invariants for the report.
        for invariant in self.invariants.violated(record.configuration):
            violation = _dependency_violation(record, invariant.name)
            self._dependency.append(violation)
            self._trip(violation)

    # -- clause 2: critical communication segments ---------------------------------
    def _on_comm(self, record: CommRecord) -> None:
        if self._tracker is None:
            return
        verdict = self._tracker.observe(record.cid, record.action, record.time)
        if verdict is not None:
            # The segment just became irrecoverably interrupted; the
            # batch-parity violation (final sequence, last comm time) is
            # assembled in finish() — this one is the online tripwire.
            self._trip(_ccs_violation(verdict.cid, verdict.sequence, record.time))

    def _trip(self, violation: Violation) -> None:
        if self.first_violation is None:
            self.first_violation = violation
        if self.enforce:
            raise SafetyViolationError(
                f"safety violation [{violation.kind} @ t={violation.time:g}] "
                f"{violation.detail}",
                violation=violation,
            )

    # -- report assembly ---------------------------------------------------------
    def finish(self) -> SafetyReport:
        """The report over everything fed so far (batch-ordered, idempotent)."""
        report = SafetyReport()
        report.configurations_checked = self.configurations_checked
        report.violations.extend(self._dependency)
        if self._tracker is not None:
            for verdict in self._tracker.verdicts():
                report.segments_checked += 1
                if verdict.complete:
                    report.segments_complete += 1
                elif verdict.interrupted:
                    report.violations.append(
                        _ccs_violation(
                            verdict.cid,
                            verdict.sequence,
                            self._tracker.last_time(verdict.cid),
                        )
                    )
                # else: in progress at the stream head — permitted.
        report.violations.extend(self._corruption)
        report.in_actions_checked = self.in_actions_checked
        report.violations.extend(self._discipline)
        return report


class SafetyChecker:
    """Judges traces against the paper's two-clause safety definition."""

    def __init__(
        self,
        invariants: InvariantSet,
        ccs: Optional[CCSSpec] = None,
        check_discipline: bool = True,
        universe: "Optional[ComponentUniverse]" = None,
    ):
        self.invariants = invariants
        self.ccs = ccs
        self.check_discipline = check_discipline
        self.universe = universe

    def streaming(self, enforce: bool = False) -> StreamingSafetyChecker:
        """A fresh incremental checker with this checker's parameters."""
        return StreamingSafetyChecker(
            self.invariants,
            ccs=self.ccs,
            check_discipline=self.check_discipline,
            universe=self.universe,
            enforce=enforce,
        )

    def check(self, trace: Trace) -> SafetyReport:
        """Batch verdict: stream the finished trace through the incremental
        checker (byte-identical to the pre-bus replay implementation)."""
        stream = self.streaming()
        for record in trace.snapshot():
            stream.feed(record)
        return stream.finish()

    # -- legacy replay implementation (reference oracle) ---------------------------
    def check_replay(self, trace: Trace) -> SafetyReport:
        """The original whole-trace replay checker.

        Kept verbatim as the independent reference implementation: the
        property suite pins ``check`` (streaming) against this, so any
        divergence in the incremental bookkeeping fails loudly.
        """
        report = SafetyReport()
        self._check_dependencies(trace, report)
        if self.ccs is not None:
            self._check_segments(trace, report)
        self._check_corruption(trace, report)
        if self.check_discipline:
            self._check_discipline(trace, report)
        return report

    # -- clause 1: dependency relationships -------------------------------------
    def _check_dependencies(self, trace: Trace, report: SafetyReport) -> None:
        for record in trace.of_type(ConfigCommitted):
            report.configurations_checked += 1
            broken = self.invariants.violated(record.configuration)
            for invariant in broken:
                report.violations.append(
                    _dependency_violation(record, invariant.name)
                )

    # -- clause 2: critical communication segments ---------------------------------
    def _check_segments(self, trace: Trace, report: SafetyReport) -> None:
        assert self.ccs is not None
        last_time: Dict[int, float] = {}
        for record in trace.of_type(CommRecord):
            last_time[record.cid] = record.time
        for verdict in self.ccs.judge_trace(trace):
            report.segments_checked += 1
            if verdict.complete:
                report.segments_complete += 1
            elif verdict.interrupted:
                report.violations.append(
                    _ccs_violation(
                        verdict.cid, verdict.sequence, last_time.get(verdict.cid, 0.0)
                    )
                )
            # else: in progress at end of trace — permitted.

    def _check_corruption(self, trace: Trace, report: SafetyReport) -> None:
        for record in trace.of_type(CorruptionRecord):
            report.violations.append(
                Violation(
                    kind="corruption",
                    time=record.time,
                    detail=f"[{record.process}] {record.detail}",
                )
            )

    # -- clause 3 (derived): in-actions only in held-safe processes ------------------
    def _check_discipline(self, trace: Trace, report: SafetyReport) -> None:
        blocked: Dict[str, bool] = {}
        for record in trace:
            if isinstance(record, BlockRecord):
                blocked[record.process] = record.blocked
            elif isinstance(record, AdaptationApplied):
                report.in_actions_checked += 1
                if not blocked.get(record.process, False):
                    report.violations.append(
                        Violation(
                            kind="discipline",
                            time=record.time,
                            detail=(
                                f"in-action {record.action_id} executed on "
                                f"process {record.process!r} while it was not "
                                "held in a safe (blocked) state"
                            ),
                        )
                    )


def check_safe(
    trace: Trace,
    invariants: InvariantSet,
    ccs: Optional[CCSSpec] = None,
    check_discipline: bool = True,
    universe: "Optional[ComponentUniverse]" = None,
) -> SafetyReport:
    """One-shot convenience wrapper around :class:`SafetyChecker`."""
    checker = SafetyChecker(
        invariants, ccs=ccs, check_discipline=check_discipline, universe=universe
    )
    return checker.check(trace)
