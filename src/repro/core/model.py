"""Components, processes, and configurations (paper §3, §5.1).

A component-based system is "a set of communicating components running on
one or more processes".  A *configuration* is the set of components
currently composed into the system.  Section 5.1 encodes configurations as
bit vectors over a fixed component ordering — e.g. ``(D5,D4,D3,D2,D1,E2,E1)``
with source ``0100101`` — and :class:`ComponentUniverse` reproduces that
encoding so the paper's tables can be regenerated verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    AbstractSet,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import ConfigurationError, ModelError, UnknownComponentError


@dataclass(frozen=True)
class Component:
    """A named adaptable component hosted on a process.

    Attributes:
        name: unique identifier, e.g. ``"D2"``.
        process: identifier of the hosting process, e.g. ``"handheld"``.
            Planning is location-aware so the realization phase knows which
            agents participate in each adaptive action.
        description: human-readable role, e.g. ``"DES 128/64 decoder"``.
    """

    name: str
    process: str = "local"
    description: str = ""

    def __post_init__(self):
        if not self.name:
            raise ModelError("component name must be non-empty")
        if not self.process:
            raise ModelError(f"component {self.name!r} needs a host process")


class Configuration:
    """An immutable set of component names — one vertex of the SAG.

    Thin wrapper over :class:`frozenset` adding the adaptation-specific
    operations (apply/undo deltas, bit-vector codec) while remaining
    hashable and cheap to copy.
    """

    __slots__ = ("_members", "_hash")

    def __init__(self, members: Iterable[str] = ()):
        object.__setattr__(self, "_members", frozenset(members))
        object.__setattr__(self, "_hash", None)
        for name in self._members:
            if not isinstance(name, str) or not name:
                raise ConfigurationError(
                    f"configuration members must be non-empty strings, got {name!r}"
                )

    def __setattr__(self, name, value):  # pragma: no cover - immutability
        raise AttributeError("Configuration is immutable")

    def __copy__(self) -> "Configuration":
        return self  # immutable: sharing is safe

    def __deepcopy__(self, memo) -> "Configuration":
        return self  # immutable: sharing is safe

    # -- set protocol ---------------------------------------------------------
    @property
    def members(self) -> FrozenSet[str]:
        return self._members

    def __contains__(self, name: str) -> bool:
        return name in self._members

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._members))

    def __len__(self) -> int:
        return len(self._members)

    def __eq__(self, other) -> bool:
        if isinstance(other, Configuration):
            return self._members == other._members
        if isinstance(other, frozenset):
            return self._members == other
        return NotImplemented

    def __hash__(self) -> int:
        # Configurations are dict keys on every hot path (graph adjacency,
        # distance maps, vertex lookup); hashing the frozenset once is a
        # measurable win during SAG construction and search.
        value = self._hash
        if value is None:
            value = hash(self._members)
            object.__setattr__(self, "_hash", value)
        return value

    def __le__(self, other: "Configuration") -> bool:
        return self._members <= _members_of(other)

    # -- adaptation deltas ------------------------------------------------------
    def with_components(self, names: Iterable[str]) -> "Configuration":
        return Configuration(self._members | frozenset(names))

    def without_components(self, names: Iterable[str]) -> "Configuration":
        return Configuration(self._members - frozenset(names))

    def apply_delta(
        self, removes: AbstractSet[str], adds: AbstractSet[str]
    ) -> "Configuration":
        """Apply an adaptive action's delta; validates applicability."""
        if not removes <= self._members:
            missing = sorted(removes - self._members)
            raise ConfigurationError(
                f"cannot remove absent components: {missing}"
            )
        overlap = sorted(adds & self._members)
        if overlap:
            raise ConfigurationError(f"cannot insert present components: {overlap}")
        return Configuration((self._members - removes) | adds)

    def symmetric_difference(self, other: "Configuration") -> FrozenSet[str]:
        return self._members ^ _members_of(other)

    def __repr__(self) -> str:
        inner = ",".join(sorted(self._members))
        return f"Configuration({{{inner}}})"

    def label(self) -> str:
        """Compact display form used in tables and traces: ``{D4,D1,E1}``."""
        return "{" + ",".join(sorted(self._members)) + "}"


def _members_of(value) -> FrozenSet[str]:
    if isinstance(value, Configuration):
        return value.members
    return frozenset(value)


class ComponentUniverse:
    """The ordered set of adaptable components under consideration.

    The ordering defines the bit-vector encoding: bit *i* (most significant
    first) corresponds to ``order[i]``.  The paper's video example declares
    the order ``(D5, D4, D3, D2, D1, E2, E1)`` so that the source
    configuration renders as ``0100101``.
    """

    def __init__(self, components: Sequence[Component]):
        if not components:
            raise ModelError("a universe needs at least one component")
        self._order: Tuple[str, ...] = tuple(c.name for c in components)
        self._by_name: Dict[str, Component] = {}
        for component in components:
            if component.name in self._by_name:
                raise ModelError(f"duplicate component {component.name!r}")
            self._by_name[component.name] = component
        # Bitmask codec: bit value of order[i] is 1 << (n-1-i), so the
        # integer mask of a configuration equals its bit-vector string
        # read as a binary number (MSB = order[0]).
        n = len(self._order)
        self._atom_bits: Dict[str, int] = {
            name: 1 << (n - 1 - i) for i, name in enumerate(self._order)
        }
        self._full_mask: int = (1 << n) - 1
        self._mask_cache: Dict[FrozenSet[str], int] = {}
        self._config_cache: Dict[int, Configuration] = {}

    @classmethod
    def from_names(
        cls,
        names: Sequence[str],
        processes: Optional[Mapping[str, str]] = None,
    ) -> "ComponentUniverse":
        """Build a universe from bare names, optionally mapping to processes."""
        processes = processes or {}
        return cls(
            [Component(name, processes.get(name, "local")) for name in names]
        )

    # -- lookups ---------------------------------------------------------------
    @property
    def order(self) -> Tuple[str, ...]:
        return self._order

    @property
    def names(self) -> FrozenSet[str]:
        return frozenset(self._order)

    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self) -> Iterator[Component]:
        for name in self._order:
            yield self._by_name[name]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def component(self, name: str) -> Component:
        try:
            return self._by_name[name]
        except KeyError:
            raise UnknownComponentError(f"unknown component {name!r}") from None

    def process_of(self, name: str) -> str:
        return self.component(name).process

    def processes(self) -> Tuple[str, ...]:
        """Distinct process ids in declaration order."""
        seen: List[str] = []
        for name in self._order:
            process = self._by_name[name].process
            if process not in seen:
                seen.append(process)
        return tuple(seen)

    def processes_of(self, names: Iterable[str]) -> FrozenSet[str]:
        """Processes hosting any of *names* — the participants of an action."""
        return frozenset(self.process_of(n) for n in names)

    def validate_members(self, names: Iterable[str]) -> None:
        unknown = sorted(set(names) - set(self._by_name))
        if unknown:
            raise UnknownComponentError(f"unknown components: {unknown}")

    # -- integer bitmask fast path ----------------------------------------------
    @property
    def atom_bits(self) -> Mapping[str, int]:
        """Bit value (power of two) of every component name.

        The mapping drives :mod:`repro.expr.compile`: a configuration's
        mask ANDed with ``atom_bits[name]`` is non-zero iff the component
        is present.
        """
        return self._atom_bits

    @property
    def full_mask(self) -> int:
        """Mask with every component present (``2^n - 1``)."""
        return self._full_mask

    def bit_of(self, name: str) -> int:
        """Bit value of *name*; raises on unknown components."""
        try:
            return self._atom_bits[name]
        except KeyError:
            raise UnknownComponentError(f"unknown component {name!r}") from None

    def mask_of_names(self, names: Iterable[str]) -> int:
        """Combined mask of *names* (each must belong to the universe)."""
        mask = 0
        bits = self._atom_bits
        try:
            for name in names:
                mask |= bits[name]
        except KeyError:
            raise UnknownComponentError(f"unknown component {name!r}") from None
        return mask

    def mask_of(self, config: Configuration) -> int:
        """Integer bit-vector of *config* (cached per configuration).

        Equal to ``int(self.to_bits(config), 2)`` but computed with pure
        dict lookups and OR — the hot-path representation the planning
        engine runs on.  Raises :class:`UnknownComponentError` if the
        configuration contains components outside the universe.
        """
        members = config.members
        cached = self._mask_cache.get(members)
        if cached is None:
            cached = self.mask_of_names(members)
            self._mask_cache[members] = cached
        return cached

    def from_mask(self, mask: int) -> Configuration:
        """Inverse of :meth:`mask_of`; decoded configurations are interned."""
        config = self._config_cache.get(mask)
        if config is None:
            if mask < 0 or mask > self._full_mask:
                raise ConfigurationError(
                    f"mask {mask:#x} out of range for universe size {len(self._order)}"
                )
            config = Configuration(
                name for name, bit in self._atom_bits.items() if mask & bit
            )
            self._config_cache[mask] = config
            self._mask_cache.setdefault(config.members, mask)
        return config

    # -- bit-vector codec --------------------------------------------------------
    def to_bits(self, config: Configuration) -> str:
        """Render *config* as the paper's bit-vector string (MSB = order[0])."""
        self.validate_members(config.members)
        return "".join("1" if name in config else "0" for name in self._order)

    def from_bits(self, bits: str) -> Configuration:
        """Parse a bit-vector string back into a :class:`Configuration`."""
        if len(bits) != len(self._order):
            raise ConfigurationError(
                f"bit vector length {len(bits)} != universe size {len(self._order)}"
            )
        members = []
        for bit, name in zip(bits, self._order):
            if bit == "1":
                members.append(name)
            elif bit != "0":
                raise ConfigurationError(f"invalid bit {bit!r} in {bits!r}")
        return Configuration(members)

    def configuration(self, *names: str) -> Configuration:
        """Validated configuration constructor."""
        self.validate_members(names)
        return Configuration(names)

    def all_configurations(self) -> Iterator[Configuration]:
        """Enumerate all 2^n configurations (n = universe size), MSB-first.

        Exponential by nature; intended for small universes and for
        brute-force cross-checking the restricted enumerations.
        """
        n = len(self._order)
        for mask in range(1 << n):
            members = [
                self._order[i] for i in range(n) if mask & (1 << (n - 1 - i))
            ]
            yield Configuration(members)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"ComponentUniverse(order={self._order!r})"
