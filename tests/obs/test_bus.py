"""The observation bus: publication, ordering, stats, trace integration."""

import io

import pytest

from repro.ltl import TemporalObserver, no_open_segments
from repro.obs import (
    CallbackObserver,
    MetricsObserver,
    ObservationBus,
    Observer,
    ObserverStats,
)
from repro.render import EventStreamSink, render_events
from repro.trace import (
    AdaptationApplied,
    BlockRecord,
    CommRecord,
    ConfigCommitted,
    CorruptionRecord,
    NoteRecord,
    RollbackRecord,
    Trace,
)


def sample_records():
    return [
        ConfigCommitted(time=0.0, configuration=frozenset({"A"})),
        BlockRecord(time=1.0, process="p1", blocked=True),
        AdaptationApplied(
            time=2.0, process="p1", action_id="a1",
            removes=frozenset({"A"}), adds=frozenset({"B"}),
        ),
        BlockRecord(time=3.0, process="p1", blocked=False),
        ConfigCommitted(time=4.0, configuration=frozenset({"B"}), step_id="s1"),
        CommRecord(time=5.0, cid=1, action="send"),
        RollbackRecord(time=6.0, process="p1", action_id="a1"),
        CorruptionRecord(time=7.0, process="p1", detail="bad frame"),
        NoteRecord(time=8.0, text="adaptation complete: target reached"),
    ]


class Collector(Observer):
    def __init__(self):
        self.records = []

    def feed(self, record):
        self.records.append(record)

    def finish(self):
        return len(self.records)


class TestObservationBus:
    def test_publish_fans_out_in_subscription_order(self):
        seen = []
        bus = ObservationBus(
            CallbackObserver(lambda r: seen.append(("first", r)), name="one"),
            CallbackObserver(lambda r: seen.append(("second", r)), name="two"),
        )
        record = NoteRecord(time=0.0, text="x")
        bus.publish(record)
        assert seen == [("first", record), ("second", record)]
        assert bus.records_published == 1

    def test_subscribe_rejects_plain_callables(self):
        bus = ObservationBus()
        with pytest.raises(TypeError):
            bus.subscribe(lambda record: None)

    def test_unsubscribe_stops_delivery(self):
        collector = Collector()
        bus = ObservationBus(collector)
        bus.publish(NoteRecord(time=0.0, text="a"))
        bus.unsubscribe(collector)
        bus.publish(NoteRecord(time=1.0, text="b"))
        assert len(collector.records) == 1

    def test_finish_collects_reports_by_name(self):
        collector = Collector()
        bus = ObservationBus(collector, MetricsObserver())
        bus.publish(NoteRecord(time=0.0, text="a"))
        reports = bus.finish()
        assert reports["Collector"] == 1
        assert reports["MetricsObserver"].records == 1

    def test_timed_stats_account_every_feed(self):
        bus = ObservationBus(Collector())
        for record in sample_records():
            bus.publish(record)
        stats = bus.stats()["Collector"]
        assert stats.records == len(sample_records())
        assert stats.seconds >= 0.0
        assert stats.mean_us >= 0.0

    def test_untimed_bus_skips_accounting(self):
        collector = Collector()
        bus = ObservationBus(collector, timed=False)
        bus.publish(NoteRecord(time=0.0, text="a"))
        assert len(collector.records) == 1
        assert bus.stats()["Collector"].records == 0

    def test_observer_exception_propagates_to_publisher(self):
        class Tripwire(Observer):
            def feed(self, record):
                raise RuntimeError("tripped")

        bus = ObservationBus(Tripwire())
        with pytest.raises(RuntimeError):
            bus.publish(NoteRecord(time=0.0, text="x"))

    def test_mean_us_handles_zero_records(self):
        assert ObserverStats().mean_us == 0.0


class TestTraceBusIntegration:
    def test_append_publishes(self):
        collector = Collector()
        trace = Trace(bus=ObservationBus(collector))
        records = sample_records()
        for record in records:
            trace.append(record)
        assert collector.records == records

    def test_extend_publishes_per_record(self):
        collector = Collector()
        trace = Trace(bus=ObservationBus(collector))
        trace.extend(sample_records())
        assert collector.records == sample_records()

    def test_seed_records_are_not_published(self):
        collector = Collector()
        Trace(sample_records(), bus=ObservationBus(collector))
        assert collector.records == []

    def test_attach_bus_replay_streams_history_first(self):
        trace = Trace(sample_records())
        live = NoteRecord(time=9.0, text="live")
        collector = Collector()
        trace.attach_bus(ObservationBus(collector), replay=True)
        trace.append(live)
        assert collector.records == sample_records() + [live]

    def test_detach_stops_publication(self):
        collector = Collector()
        trace = Trace(bus=ObservationBus(collector))
        trace.attach_bus(None)
        trace.append(NoteRecord(time=0.0, text="x"))
        assert collector.records == []

    def test_raising_observer_aborts_append_but_keeps_the_record(self):
        class Tripwire(Observer):
            def feed(self, record):
                if isinstance(record, CorruptionRecord):
                    raise RuntimeError("tripped")

        trace = Trace(bus=ObservationBus(Tripwire()))
        bad = CorruptionRecord(time=1.0, process="p1", detail="bad")
        with pytest.raises(RuntimeError):
            trace.append(bad)
        # The evidence survives: the record landed before publication.
        assert trace.snapshot()[-1] == bad


class TestMetricsObserver:
    def test_counters(self):
        metrics = MetricsObserver()
        for record in sample_records():
            metrics.feed(record)
        report = metrics.finish()
        assert report.records == 9
        assert report.commits == 2
        assert report.blocks == 1
        assert report.resumes == 1
        assert report.in_actions == 1
        assert report.rollbacks == 1
        assert report.corruption == 1
        assert report.comm_actions == 1
        assert report.notes == 1
        assert report.first_time == 0.0 and report.last_time == 8.0
        assert report.span == 8.0
        assert report.by_kind["ConfigCommitted"] == 2

    def test_finish_is_idempotent_and_json_round_trips(self):
        import json

        metrics = MetricsObserver()
        for record in sample_records():
            metrics.feed(record)
        assert metrics.finish() == metrics.finish()
        payload = metrics.finish().to_json()
        assert json.loads(json.dumps(payload)) == payload

    def test_empty_report(self):
        report = MetricsObserver().finish()
        assert report.records == 0
        assert report.span == 0.0
        assert "records: 0" in report.summary()


class TestEventStreamSink:
    def test_streamed_lines_match_batch_render(self):
        records = sample_records()
        sink = EventStreamSink()
        for record in records:
            sink.feed(record)
        assert sink.finish() == render_events(Trace(records))

    def test_writes_to_stream_as_records_arrive(self):
        out = io.StringIO()
        sink = EventStreamSink(stream=out)
        sink.feed(NoteRecord(time=1.0, text="hello"))
        assert "note: hello" in out.getvalue()

    def test_comm_records_are_not_rendered(self):
        sink = EventStreamSink()
        sink.feed(CommRecord(time=0.0, cid=1, action="send"))
        assert sink.lines == ()


class TestTemporalObserver:
    def test_balanced_pairs_from_comm_records(self):
        observer = TemporalObserver(
            no_open_segments(start="send", done="receive"),
            events=lambda r: (r.action,) if isinstance(r, CommRecord) else (),
        )
        observer.feed(CommRecord(time=0.0, cid=1, action="send"))
        assert observer.holds is False
        observer.feed(CommRecord(time=1.0, cid=1, action="receive"))
        assert observer.holds is True
        report = observer.finish()
        assert report.steps == 2
        assert report.unsafe_steps == 1
        assert report.first_unsafe_time == 0.0

    def test_process_filter(self):
        observer = TemporalObserver(
            no_open_segments(start="send", done="receive"),
            events=lambda r: (r.action,) if isinstance(r, CommRecord) else (),
            process="p1",
        )
        observer.feed(CommRecord(time=0.0, cid=1, action="send", process="p2"))
        assert observer.finish().steps == 0

    def test_default_record_events_skips_notes(self):
        from repro.ltl import record_events

        assert record_events(NoteRecord(time=0.0, text="x")) == ()
        assert record_events(CommRecord(time=0.0, cid=1, action="send")) == ("send",)
        assert record_events(BlockRecord(time=0.0, process="p", blocked=True)) == ("block",)
        assert record_events(BlockRecord(time=0.0, process="p", blocked=False)) == ("resume",)
