"""Experiment P1 — bitmask-compiled planning engine vs the AST/frozenset path.

The paper's §7 flags the detection & setup phase as the scalability
bottleneck: safe-space enumeration is worst-case 2^n and the SAG grows
exponentially with component count.  This PR compiles the entire phase to
integer bitmask operations (``repro.expr.compile``, ``MaskedAction``, the
shared safety memo in ``SafeConfigurationSpace``).

This benchmark keeps a faithful in-file copy of the pre-PR reference path
— AST three-valued pruning over frozensets for enumeration, set-algebra
action deltas for SAG construction — and races it against the shipped
compiled engine on the ``replicated_video_system`` sweep.  Required shape:

* ≥5× end-to-end speedup on monolithic SAG build + MAP search at
  ``groups=3`` (512 vertices);
* byte-identical outputs: Table 1's 8-row safe set, Table 2's action
  library semantics, and the Figure 4 MAP cost of 50.0 ms.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import report
from repro.apps.video.system import (
    paper_source,
    paper_target,
    video_actions,
    video_invariants,
    video_planner,
    video_universe,
)
from repro.bench import format_table, replicated_video_system
from repro.core.model import Configuration
from repro.core.planner import AdaptationPlanner
from repro.expr.partial import evaluate_partial
from repro.graphs import Digraph
from repro.graphs.dijkstra import shortest_path

TABLE1_BITS = {
    "0100101", "0101001", "1001010", "1010010",
    "1100101", "1101001", "1101010", "1110010",
}


# -- pre-PR reference implementation (AST + frozenset algebra) ------------------
#
# A verbatim re-statement of the seed algorithms, kept here so the speedup
# is measured in-bench against the real former hot path rather than a
# strawman.  Dijkstra is shared: both sides use repro.graphs.dijkstra.


def _ast_enumerate(universe, invariants):
    """Seed enumerate_backtracking: AST Kleene evaluation over name sets."""
    order = universe.order
    exprs = [inv.expr for inv in invariants]
    out = []
    present, absent = set(), set()

    def undecided_ok():
        for expr in exprs:
            if evaluate_partial(expr, present, absent) is False:
                return False
        return True

    def recurse(index):
        if index == len(order):
            out.append(Configuration(present))
            return
        name = order[index]
        absent.add(name)
        if undecided_ok():
            recurse(index + 1)
        absent.discard(name)
        present.add(name)
        if undecided_ok():
            recurse(index + 1)
        present.discard(name)

    recurse(0)
    return tuple(out)


def _ast_build_sag(vertices, actions):
    """Seed SafeAdaptationGraph.build: frozenset deltas + set membership."""
    vertex_set = set(vertices)
    graph = Digraph()
    for config in vertices:
        graph.add_node(config)
    for config in vertices:
        for action in actions:
            if not action.is_applicable(config):
                continue
            result = action.apply(config)
            if result in vertex_set:
                graph.add_edge(config, result, action.action_id, action.cost)
    return graph


def _ast_plan(system):
    vertices = _ast_enumerate(system.universe, system.invariants)
    graph = _ast_build_sag(vertices, system.actions)
    path = shortest_path(graph, system.source, system.target)
    return path, len(vertices), graph.edge_count


def _compiled_plan(system):
    planner = AdaptationPlanner(system.universe, system.invariants, system.actions)
    plan = planner.plan(system.source, system.target)
    return plan, planner.sag.node_count, planner.sag.edge_count


def _best_of(fn, repeats):
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


# -- the headline race ----------------------------------------------------------


def test_bitset_speedup_groups3(benchmark):
    """≥5× on monolithic SAG build + MAP at groups=3, identical answers."""
    system = replicated_video_system(3)
    ast_s, (ast_path, ast_nodes, ast_edges) = _best_of(lambda: _ast_plan(system), 3)
    compiled_s, (plan, nodes, edges) = _best_of(lambda: _compiled_plan(system), 5)
    benchmark.pedantic(lambda: _compiled_plan(system), rounds=1, iterations=1)

    # identical outputs before any speed claim
    assert nodes == ast_nodes == 8 ** 3
    assert edges == ast_edges
    assert plan.total_cost == ast_path.cost == 50.0 * 3

    speedup = ast_s / compiled_s
    rows = [
        ("AST + frozenset (seed)", f"{ast_s * 1e3:.1f}", "1.0x"),
        ("bitmask-compiled", f"{compiled_s * 1e3:.1f}", f"{speedup:.1f}x"),
    ]
    report(
        "P1 — monolithic SAG build + MAP, groups=3 (512 vertices)",
        format_table(["engine", "best (ms)", "speedup"], rows),
        data={
            "groups": 3,
            "sag_nodes": nodes,
            "sag_edges": edges,
            "ast_ms": round(ast_s * 1e3, 3),
            "compiled_ms": round(compiled_s * 1e3, 3),
            "speedup": round(speedup, 2),
        },
    )
    benchmark.extra_info["speedup"] = speedup
    assert speedup >= 5.0, f"compiled engine only {speedup:.1f}x faster"


@pytest.mark.parametrize("groups", [1, 2, 3])
def test_bitset_compiled_planning(benchmark, groups):
    """Trajectory of the compiled engine itself across the sweep."""
    system = replicated_video_system(groups)
    plan, nodes, _ = benchmark(lambda: _compiled_plan(system))
    assert nodes == 8 ** groups
    assert plan.total_cost == 50.0 * groups
    benchmark.extra_info["sag_nodes"] = nodes


def test_bitset_agreement_on_sweep():
    """Compiled enumeration/SAG equal the AST reference arc-for-arc."""
    for groups in (1, 2):
        system = replicated_video_system(groups)
        ast_vertices = _ast_enumerate(system.universe, system.invariants)
        planner = AdaptationPlanner(system.universe, system.invariants, system.actions)
        assert planner.space.enumerate() == ast_vertices
        ast_graph = _ast_build_sag(ast_vertices, system.actions)
        compiled_edges = {
            (e.source, e.label, e.target) for e in planner.sag.graph.edges()
        }
        reference_edges = {
            (e.source, e.label, e.target) for e in ast_graph.edges()
        }
        assert compiled_edges == reference_edges


# -- paper outputs must not move -------------------------------------------------


def test_table1_unchanged():
    planner = video_planner()
    bits = {planner.universe.to_bits(c) for c in planner.space.enumerate()}
    assert bits == TABLE1_BITS


def test_table2_masks_agree_with_sets():
    universe = video_universe()
    actions = video_actions()
    masked = actions.compiled_for(universe)
    assert len(masked) == 17 and all(m is not None for m in masked)
    for config in universe.all_configurations():
        mask = universe.mask_of(config)
        for action, m in zip(actions, masked):
            assert m.is_applicable_mask(mask) == action.is_applicable(config)
            if action.is_applicable(config):
                assert universe.from_mask(m.apply_mask(mask)) == action.apply(config)


def test_fig4_map_unchanged():
    planner = video_planner()
    plan = planner.plan(paper_source(), paper_target())
    assert plan.total_cost == 50.0
    assert sorted(plan.action_ids) == ["A1", "A16", "A17", "A2", "A4"]
    lazy = planner.plan_lazy(paper_source(), paper_target())
    assert lazy.total_cost == 50.0
