"""repro.serve: the adaptation control plane.

Layered sans-io design:

* :mod:`repro.serve.service` — the thread-safe, amortizing
  :class:`PlanningService` (warm planner caches keyed by spec digest);
* :mod:`repro.serve.api` — typed request/response dataclasses and
  :class:`ErrorEnvelope`, the wire vocabulary every transport shares;
* :mod:`repro.serve.registry` — the LRU-bounded multi-tenant
  :class:`SpecRegistry` (manifest uploads keyed by digest, shardable);
* :mod:`repro.serve.control` — :class:`ControlPlane.dispatch`, the one
  entry point the CLI and the network adapter both answer through;
* :mod:`repro.serve.http` — the asyncio HTTP/1.1 JSON adapter
  (stdlib-only) with admission control, deadlines, and worker sharding.

``from repro.serve import PlanningService, spec_digest`` keeps working
exactly as it did when this package was a single module.
"""

from repro.serve.api import (
    ERROR_CODES,
    ErrorEnvelope,
    EvictSpecRequest,
    EvictSpecResult,
    LintRequest,
    LintResult,
    PlanBatchItem,
    PlanBatchRequest,
    PlanBatchResult,
    PlanInfo,
    PlanRequest,
    PlanResult,
    PlanStepInfo,
    RegisterSpecRequest,
    RegisterSpecResult,
    Request,
    RequestDecodeError,
    Response,
    StatsRequest,
    StatsResult,
    TraceCheckRequest,
    TraceCheckResult,
    TracePropertyInfo,
    TraceViolationInfo,
    VerifyPathsRequest,
    VerifyPathsResult,
    envelope,
    to_json,
    to_wire,
)
from repro.serve.control import ControlPlane
from repro.serve.http import (
    STATUS_BY_CODE,
    ControlPlaneHTTPServer,
    ServerThread,
    create_listen_socket,
    response_status,
    run_server,
)
from repro.serve.registry import SpecRecord, SpecRegistry
from repro.serve.service import (
    PLAN_METHODS,
    PlanningService,
    ServiceStats,
    no_safe_path_message,
    spec_digest,
)

__all__ = [
    "ERROR_CODES",
    "PLAN_METHODS",
    "STATUS_BY_CODE",
    "ControlPlane",
    "ControlPlaneHTTPServer",
    "ErrorEnvelope",
    "EvictSpecRequest",
    "EvictSpecResult",
    "LintRequest",
    "LintResult",
    "PlanBatchItem",
    "PlanBatchRequest",
    "PlanBatchResult",
    "PlanInfo",
    "PlanRequest",
    "PlanResult",
    "PlanStepInfo",
    "PlanningService",
    "RegisterSpecRequest",
    "RegisterSpecResult",
    "Request",
    "RequestDecodeError",
    "Response",
    "ServerThread",
    "ServiceStats",
    "SpecRecord",
    "SpecRegistry",
    "StatsRequest",
    "StatsResult",
    "TraceCheckRequest",
    "TraceCheckResult",
    "TracePropertyInfo",
    "TraceViolationInfo",
    "VerifyPathsRequest",
    "VerifyPathsResult",
    "create_listen_socket",
    "envelope",
    "no_safe_path_message",
    "response_status",
    "run_server",
    "spec_digest",
    "to_json",
    "to_wire",
]
