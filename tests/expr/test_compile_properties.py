"""Property tests: compiled-mask evaluation ≡ AST evaluation.

The bitmask engine (``repro.expr.compile``) is a pure performance layer;
these tests pin it to the semantic source of truth on randomized
expressions and configurations:

* ``compile_expr`` agrees with ``Expr.evaluate`` on every configuration;
* ``compile_partial`` agrees with ``repro.expr.partial.evaluate_partial``
  on every partial decision, and collapses to ``evaluate`` once all atoms
  are decided;
* ``compile_conjunction`` agrees with ``InvariantSet.all_hold``.

Atoms are drawn from the universe under test: components outside the
universe are the one documented divergence (the compiler folds them to
constant False — the value they take in any universe configuration —
while three-valued set evaluation keeps them forever-unknown).
"""

from hypothesis import given, settings, strategies as st

from repro.core.invariants import Invariant, InvariantSet
from repro.core.model import ComponentUniverse
from repro.expr.ast import (
    FALSE,
    TRUE,
    And,
    Atom,
    Implies,
    Not,
    OneOf,
    Or,
    Xor,
)
from repro.expr.compile import (
    compile_conjunction,
    compile_expr,
    compile_partial,
)
from repro.expr.partial import evaluate_partial

NAMES = ("A", "B", "C", "D", "E", "F")
UNIVERSE = ComponentUniverse.from_names(NAMES)
BITS = UNIVERSE.atom_bits


def _nary(node):
    return st.lists(EXPRESSIONS, min_size=2, max_size=4).map(
        lambda ops: node(tuple(ops))
    )


ATOMS = st.sampled_from(NAMES).map(Atom)
EXPRESSIONS = st.recursive(
    st.one_of(ATOMS, st.sampled_from((TRUE, FALSE))),
    lambda children: st.one_of(
        children.map(Not),
        st.lists(children, min_size=2, max_size=4).map(lambda ops: And(tuple(ops))),
        st.lists(children, min_size=2, max_size=4).map(lambda ops: Or(tuple(ops))),
        st.lists(children, min_size=2, max_size=4).map(lambda ops: Xor(tuple(ops))),
        st.lists(children, min_size=2, max_size=4).map(lambda ops: OneOf(tuple(ops))),
        st.tuples(children, children).map(lambda ab: Implies(ab[0], ab[1])),
    ),
    max_leaves=16,
)
CONFIGS = st.frozensets(st.sampled_from(NAMES))


@given(expr=EXPRESSIONS, config=CONFIGS)
@settings(max_examples=300)
def test_compiled_agrees_with_evaluate(expr, config):
    mask = UNIVERSE.mask_of_names(config)
    assert compile_expr(expr, BITS)(mask) == expr.evaluate(config)


@given(expr=EXPRESSIONS, decided_in=CONFIGS, decided_out=CONFIGS)
@settings(max_examples=300)
def test_compiled_partial_agrees_with_evaluate_partial(
    expr, decided_in, decided_out
):
    present = decided_in
    absent = decided_out - decided_in
    present_mask = UNIVERSE.mask_of_names(present)
    decided_mask = present_mask | UNIVERSE.mask_of_names(absent)
    assert compile_partial(expr, BITS)(present_mask, decided_mask) == (
        evaluate_partial(expr, present, absent)
    )


@given(expr=EXPRESSIONS, config=CONFIGS)
@settings(max_examples=200)
def test_fully_decided_partial_collapses_to_evaluate(expr, config):
    present_mask = UNIVERSE.mask_of_names(config)
    value = compile_partial(expr, BITS)(present_mask, UNIVERSE.full_mask)
    assert value is not None
    assert value == expr.evaluate(config)


@given(exprs=st.lists(EXPRESSIONS, min_size=0, max_size=5), config=CONFIGS)
@settings(max_examples=200)
def test_conjunction_agrees_with_all_hold(exprs, config):
    invariants = InvariantSet([Invariant(e) for e in exprs])
    mask = UNIVERSE.mask_of_names(config)
    assert compile_conjunction(exprs, BITS)(mask) == invariants.all_hold(config)
    assert invariants.compile_mask(BITS)(mask) == invariants.all_hold(config)


@given(expr=EXPRESSIONS, config=CONFIGS)
@settings(max_examples=100)
def test_foreign_atoms_fold_to_false(expr, config):
    """An atom outside the bit mapping behaves like a never-present one."""
    wrapped = And((expr, Not(Atom("OUTSIDE"))))
    mask = UNIVERSE.mask_of_names(config)
    # !OUTSIDE is vacuously true, so the conjunction equals expr itself
    assert compile_expr(wrapped, BITS)(mask) == expr.evaluate(config)
    assert compile_expr(Atom("OUTSIDE"), BITS)(mask) is False
