"""Shared helpers for the benchmark harness.

Every benchmark regenerates a table or figure from the paper, asserts the
*shape* (who wins, by what rough factor, where crossovers fall), and
reports the regenerated rows both to stdout and into the pytest-benchmark
``extra_info`` so they land in machine-readable output.
"""

from __future__ import annotations

import sys

import pytest


def report(title: str, text: str) -> None:
    """Print a regenerated table so it is visible even under capture."""
    banner = f"\n=== {title} ===\n{text}\n"
    sys.stderr.write(banner)
    sys.stderr.flush()
