"""Encryption filters: the paper's E1/E2 encoders and D1–D5 decoders.

An :class:`EncoderFilter` encrypts data-packet payloads under one scheme
and tags the packet.  A :class:`DecoderFilter` knows one or more schemes
(the paper's D2 is "DES 128/64-bit compatible", i.e. knows both) and
implements the bypass rule: "when it receives a packet not encoded by the
corresponding encoder, it simply forwards the packet to the next filter
in the chain."  Marker and parity packets pass through untouched.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Mapping, Optional

from repro.codecs.packets import Packet
from repro.components.base import refraction
from repro.components.filters import Filter
from repro.crypto.schemes import cipher_for

# Optional observer invoked when a decoder actually decodes a packet —
# the video client uses it for CCS "decode" bookkeeping.
DecodeObserver = Callable[[Packet], None]


class EncoderFilter(Filter):
    """Encrypts plaintext data payloads under a fixed scheme."""

    def __init__(self, name: str, scheme_id: str):
        super().__init__(name)
        self.scheme_id = scheme_id
        self._cipher = cipher_for(scheme_id)
        self.packets_encoded = 0
        self.packets_skipped = 0

    def process(self, packet: Packet) -> List[Packet]:
        if not packet.is_data or packet.enc_scheme is not None:
            # Markers, parity, and already-encrypted payloads pass through.
            self.packets_skipped += 1
            return [packet]
        self.packets_encoded += 1
        ciphertext = self._cipher.encrypt(packet.payload, nonce=packet.seq)
        return [
            packet.with_payload(
                ciphertext, enc_scheme=self.scheme_id, enc_nonce=packet.seq
            )
        ]

    @refraction
    def encoder_status(self) -> Mapping[str, object]:
        return {
            "name": self.name,
            "scheme": self.scheme_id,
            "encoded": self.packets_encoded,
            "skipped": self.packets_skipped,
        }


class DecoderFilter(Filter):
    """Decrypts payloads of known schemes; bypasses everything else."""

    def __init__(
        self,
        name: str,
        scheme_ids: Iterable[str],
        on_decode: Optional[DecodeObserver] = None,
    ):
        super().__init__(name)
        self.scheme_ids = frozenset(scheme_ids)
        if not self.scheme_ids:
            raise ValueError(f"decoder {name!r} needs at least one scheme")
        self._ciphers = {sid: cipher_for(sid) for sid in self.scheme_ids}
        self.on_decode = on_decode
        self.packets_decoded = 0
        self.packets_bypassed = 0

    def process(self, packet: Packet) -> List[Packet]:
        if packet.enc_scheme not in self.scheme_ids:
            # The bypass rule — includes plaintext (enc_scheme None).
            if packet.is_data:
                self.packets_bypassed += 1
            return [packet]
        plaintext = self._ciphers[packet.enc_scheme].decrypt(
            packet.payload, nonce=packet.enc_nonce
        )
        self.packets_decoded += 1
        decoded = packet.with_payload(plaintext, enc_scheme=None)
        if self.on_decode is not None:
            self.on_decode(decoded)
        return [decoded]

    @refraction
    def decoder_status(self) -> Mapping[str, object]:
        return {
            "name": self.name,
            "schemes": tuple(sorted(self.scheme_ids)),
            "decoded": self.packets_decoded,
            "bypassed": self.packets_bypassed,
        }
