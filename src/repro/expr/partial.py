"""Three-valued (Kleene) evaluation of dependency expressions.

Used by the backtracking safe-configuration enumerator: while components
are being decided one at a time, an invariant may already be determined
(definitely true / definitely false) or still open.  ``evaluate_partial``
returns ``True``/``False`` when the expression's value no longer depends
on the undecided components, and ``None`` otherwise.

Kleene semantics: ``and`` is False if any operand is False, True if all
are True, else unknown; ``or`` dually; ``not`` flips; ``implies`` is
``or(not a, b)``; ``xor``/``one_of`` are unknown unless enough operands
are decided to fix the count/parity.
"""

from __future__ import annotations

from typing import AbstractSet, Optional

from repro.expr.ast import (
    And,
    Atom,
    Expr,
    Implies,
    Not,
    OneOf,
    Or,
    Xor,
    _Const,
)


def evaluate_partial(
    expr: Expr, present: AbstractSet[str], absent: AbstractSet[str]
) -> Optional[bool]:
    """Evaluate *expr* where only some atoms are decided.

    Args:
        expr: the expression.
        present: components decided to be in the configuration.
        absent: components decided to be out of the configuration.

    Returns:
        The truth value if determined by the decided atoms, else ``None``.
    """
    if isinstance(expr, _Const):
        return expr.value
    if isinstance(expr, Atom):
        if expr.name in present:
            return True
        if expr.name in absent:
            return False
        return None
    if isinstance(expr, Not):
        inner = evaluate_partial(expr.operand, present, absent)
        return None if inner is None else (not inner)
    if isinstance(expr, And):
        unknown = False
        for operand in expr.operands:
            value = evaluate_partial(operand, present, absent)
            if value is False:
                return False
            if value is None:
                unknown = True
        return None if unknown else True
    if isinstance(expr, Or):
        unknown = False
        for operand in expr.operands:
            value = evaluate_partial(operand, present, absent)
            if value is True:
                return True
            if value is None:
                unknown = True
        return None if unknown else False
    if isinstance(expr, Xor):
        parity = False
        for operand in expr.operands:
            value = evaluate_partial(operand, present, absent)
            if value is None:
                return None
            parity ^= value
        return parity
    if isinstance(expr, OneOf):
        true_count = 0
        unknown_count = 0
        for operand in expr.operands:
            value = evaluate_partial(operand, present, absent)
            if value is True:
                true_count += 1
                if true_count > 1:
                    return False  # determined regardless of the unknowns
            elif value is None:
                unknown_count += 1
        if true_count == 1 and unknown_count == 0:
            return True
        if true_count == 0 and unknown_count == 0:
            return False
        if true_count == 1 and unknown_count > 0:
            return None  # an unknown could become a second True
        # true_count == 0 with unknowns: could end up 0 or 1
        return None
    if isinstance(expr, Implies):
        antecedent = evaluate_partial(expr.antecedent, present, absent)
        consequent = evaluate_partial(expr.consequent, present, absent)
        if antecedent is False or consequent is True:
            return True
        if antecedent is True and consequent is False:
            return False
        return None
    raise TypeError(f"unknown Expr node {type(expr).__name__}")  # pragma: no cover
