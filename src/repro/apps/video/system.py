"""Static model of the video system: universe, invariants, Table 2 actions.

Everything here is lifted directly from §5.1:

* component order ``(D5, D4, D3, D2, D1, E2, E1)`` — the paper's bit-vector
  encoding, with source ``0100101`` and target ``1010010``;
* system invariants — resource constraint ``⊗(D1,D2,D3)`` (the handheld
  can host only one decoder) and security constraint ``⊗(E1,E2)`` (data
  must stay encoded during adaptation);
* dependency invariants — ``E1 → (D1 ∨ D2) ∧ D4`` and
  ``E2 → (D3 ∨ D2) ∧ D5``;
* Table 2's seventeen adaptive actions with their packet-delay costs.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Optional, Tuple

from repro.codecs.crypto_filters import DecoderFilter, EncoderFilter
from repro.core.actions import ActionLibrary, AdaptiveAction
from repro.core.invariants import DependencyInvariant, InvariantSet, StructuralInvariant
from repro.core.model import ComponentUniverse, Configuration
from repro.core.planner import AdaptationPlanner
from repro.expr import exactly_one

PAPER_SOURCE_BITS = "0100101"  # (D4, D1, E1)
PAPER_TARGET_BITS = "1010010"  # (D5, D3, E2)

COMPONENT_ORDER: Tuple[str, ...] = ("D5", "D4", "D3", "D2", "D1", "E2", "E1")

COMPONENT_PROCESSES: Dict[str, str] = {
    "E1": "server",
    "E2": "server",
    "D1": "handheld",
    "D2": "handheld",
    "D3": "handheld",
    "D4": "laptop",
    "D5": "laptop",
}

ENCODER_SCHEMES: Dict[str, str] = {"E1": "des64", "E2": "des128"}

DECODER_SCHEMES: Dict[str, FrozenSet[str]] = {
    "D1": frozenset({"des64"}),
    "D2": frozenset({"des64", "des128"}),  # the 128/64-compatible decoder
    "D3": frozenset({"des128"}),
    "D4": frozenset({"des64"}),
    "D5": frozenset({"des128"}),
}


def video_universe() -> ComponentUniverse:
    """The seven adaptable components in the paper's bit order."""
    return ComponentUniverse.from_names(COMPONENT_ORDER, COMPONENT_PROCESSES)


def video_invariants() -> InvariantSet:
    """System + dependency invariants of §5.1."""
    return InvariantSet(
        [
            StructuralInvariant(exactly_one("D1", "D2", "D3"), name="resource constraint"),
            StructuralInvariant(exactly_one("E1", "E2"), name="security constraint"),
            DependencyInvariant("E1 -> (D1 | D2) & D4"),
            DependencyInvariant("E2 -> (D3 | D2) & D5"),
        ]
    )


# (action id, removes, adds, cost-ms, description) — Table 2 verbatim.
_TABLE2 = (
    ("A1", ("E1",), ("E2",), 10, "replace E1 with E2"),
    ("A2", ("D1",), ("D2",), 10, "replace D1 with D2"),
    ("A3", ("D1",), ("D3",), 10, "replace D1 with D3"),
    ("A4", ("D2",), ("D3",), 10, "replace D2 with D3"),
    ("A5", ("D4",), ("D5",), 10, "replace D4 with D5"),
    ("A6", ("D1", "E1"), ("D2", "E2"), 100, "A1 and A2"),
    ("A7", ("D1", "E1"), ("D3", "E2"), 100, "A1 and A3"),
    ("A8", ("D2", "E1"), ("D3", "E2"), 100, "A1 and A4"),
    ("A9", ("D4", "E1"), ("D5", "E2"), 100, "A1 and A5"),
    ("A10", ("D1", "D4"), ("D2", "D5"), 50, "A2 and A5"),
    ("A11", ("D1", "D4"), ("D3", "D5"), 50, "A3 and A5"),
    ("A12", ("D2", "D4"), ("D3", "D5"), 50, "A4 and A5"),
    ("A13", ("D1", "D4", "E1"), ("D2", "D5", "E2"), 150, "A1 and A10"),
    ("A14", ("D1", "D4", "E1"), ("D3", "D5", "E2"), 150, "A1 and A11"),
    ("A15", ("D2", "D4", "E1"), ("D3", "D5", "E2"), 150, "A1 and A12"),
    ("A16", ("D4",), (), 10, "remove D4"),
    ("A17", (), ("D5",), 10, "insert D5"),
)


def video_actions() -> ActionLibrary:
    """Table 2's adaptive actions with their packet-delay costs (ms)."""
    return ActionLibrary(
        AdaptiveAction(
            action_id,
            frozenset(removes),
            frozenset(adds),
            float(cost),
            description,
        )
        for action_id, removes, adds, cost, description in _TABLE2
    )


def video_planner() -> AdaptationPlanner:
    """Planner preloaded with the full §5.1 model."""
    return AdaptationPlanner(video_universe(), video_invariants(), video_actions())


def paper_source(universe: Optional[ComponentUniverse] = None) -> Configuration:
    return (universe or video_universe()).from_bits(PAPER_SOURCE_BITS)


def paper_target(universe: Optional[ComponentUniverse] = None) -> Configuration:
    return (universe or video_universe()).from_bits(PAPER_TARGET_BITS)


def make_encoder(name: str) -> EncoderFilter:
    """Instantiate encoder component E1 or E2."""
    try:
        scheme = ENCODER_SCHEMES[name]
    except KeyError:
        raise KeyError(f"not an encoder component: {name!r}") from None
    return EncoderFilter(name, scheme)


def make_decoder(name: str, on_decode=None) -> DecoderFilter:
    """Instantiate decoder component D1..D5."""
    try:
        schemes = DECODER_SCHEMES[name]
    except KeyError:
        raise KeyError(f"not a decoder component: {name!r}") from None
    return DecoderFilter(name, schemes, on_decode=on_decode)
