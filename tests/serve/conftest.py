"""Shared fixtures for the control-plane test suite."""

from pathlib import Path

import pytest

from repro.manifest import video_manifest_text

PROPERTIES_SECTION = """
[properties]
encoder specified : historically({one_of(E1, E2)})
no_e2 : historically(!E2)
"""

#: two components, no actions: every pair of distinct safe configs is
#: unreachable — the golden no-safe-path workload
STUCK_MANIFEST = """\
[components]
A @ host
B @ host

[invariants]
: A | B

[configurations]
only_a = 10
only_b = 01
"""


@pytest.fixture
def video_text():
    return video_manifest_text()


@pytest.fixture
def property_text():
    return video_manifest_text() + PROPERTIES_SECTION


@pytest.fixture
def property_path(tmp_path, property_text):
    path = tmp_path / "props.manifest"
    path.write_text(property_text, encoding="utf-8")
    return str(path)


@pytest.fixture
def video_path(tmp_path, video_text):
    path = tmp_path / "video.manifest"
    path.write_text(video_text, encoding="utf-8")
    return str(path)


@pytest.fixture
def fleet_path():
    return str(
        Path(__file__).parent.parent.parent / "examples" / "fleet30.manifest"
    )


@pytest.fixture
def fleet_text(fleet_path):
    return Path(fleet_path).read_text(encoding="utf-8")
