"""ptLTL formula AST: operators, configuration-level atoms, text syntax.

The formula classes are shared by every property-evaluation surface:

* the incremental :class:`~repro.ltl.monitor.PTLTLMonitor` walks the AST
  directly (``_step`` per subformula — the semantic source of truth);
* the compiled core (:mod:`repro.ltl.compile`) lowers the same AST to a
  slot program over int bitmasks;
* manifests carry formulas as text in a ``[properties]`` section, parsed
  by :func:`parse_property` and rendered back by :func:`property_to_text`.

A step's observation is always a *set of names* — trace-event names for
online monitoring, configuration members for path checking — so one
formula serves both. Two kinds of atoms exist over that set:

* ``Prop(name)`` — the step's set contains *name* (an event fired; a
  component is present);
* ``StateProp(expr)`` — a full dependency expression from
  :mod:`repro.expr` holds over the step's set (``{one_of(D1, D2, D3)}``
  in the text syntax) — the configuration-level propositions that let
  properties reuse invariant clauses verbatim.

Text syntax (``parse_property``)::

    property := or ('->' property)?          # implies, right-assoc
    or       := and ('|' and)*
    and      := unary ('&' unary)*
    unary    := '!' unary | primary
    primary  := historically(p) | once(p) | previously(p) | since(p, q)
              | '(' property ')'
              | '{' expr '}'                 # repro.expr syntax
              | NAME                         # presence atom

``prev`` is accepted as an alias of ``previously``.  The temporal words
are keywords only when followed by ``(``, so components named ``once``
or ``since`` stay usable as presence atoms.
"""

from __future__ import annotations

import re
from typing import AbstractSet, Dict, FrozenSet, List, Set, Tuple

from repro.errors import ParseError
from repro.expr.ast import Expr, to_text
from repro.expr.parser import parse as parse_expr


class PFormula:
    """Base class for past-time LTL formulas (immutable)."""

    __slots__ = ()

    def subformulas(self) -> Tuple["PFormula", ...]:
        """Post-order listing (children before parents), with duplicates."""
        out: List[PFormula] = []
        self._collect(out)
        return tuple(out)

    def atoms(self) -> FrozenSet[str]:
        """Every name the formula observes: proposition names plus the
        component atoms of embedded :class:`StateProp` expressions."""
        names: Set[str] = set()
        for sub in self.subformulas():
            if isinstance(sub, Prop):
                names.add(sub.name)
            elif isinstance(sub, StateProp):
                names |= sub.expr.atoms()
        return frozenset(names)

    def _collect(self, out: List["PFormula"]) -> None:
        raise NotImplementedError

    def _step(self, events: AbstractSet[str], now: Dict[int, bool],
              prev: Dict[int, bool]) -> bool:
        raise NotImplementedError


class Prop(PFormula):
    """Atomic proposition: the current step carries this event name."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        object.__setattr__(self, "name", name)

    def __setattr__(self, *a):  # pragma: no cover
        raise AttributeError("immutable")

    def _collect(self, out):
        out.append(self)

    def _step(self, events, now, prev):
        return self.name in events

    def __repr__(self):
        return f"Prop({self.name!r})"


class StateProp(PFormula):
    """Configuration-level atom: a dependency expression over the step's set.

    Evaluates an arbitrary :class:`repro.expr.ast.Expr` against the
    step's name set, so temporal properties can quantify over the same
    clauses the invariants use (``historically({E1 -> D4})``).
    """

    __slots__ = ("expr",)

    def __init__(self, expr: Expr):
        object.__setattr__(self, "expr", expr)

    def __setattr__(self, *a):  # pragma: no cover
        raise AttributeError("immutable")

    def _collect(self, out):
        out.append(self)

    def _step(self, events, now, prev):
        return self.expr.evaluate(events)

    def __repr__(self):
        return f"StateProp({to_text(self.expr)})"


class _Unary(PFormula):
    __slots__ = ("operand",)

    def __init__(self, operand: PFormula):
        object.__setattr__(self, "operand", operand)

    def __setattr__(self, *a):  # pragma: no cover
        raise AttributeError("immutable")

    def _collect(self, out):
        self.operand._collect(out)
        out.append(self)

    def __repr__(self):
        return f"{type(self).__name__}({self.operand!r})"


class _Binary(PFormula):
    __slots__ = ("left", "right")

    def __init__(self, left: PFormula, right: PFormula):
        object.__setattr__(self, "left", left)
        object.__setattr__(self, "right", right)

    def __setattr__(self, *a):  # pragma: no cover
        raise AttributeError("immutable")

    def _collect(self, out):
        self.left._collect(out)
        self.right._collect(out)
        out.append(self)

    def __repr__(self):
        return f"{type(self).__name__}({self.left!r}, {self.right!r})"


class PNot(_Unary):
    def _step(self, events, now, prev):
        return not now[id(self.operand)]


class PAnd(_Binary):
    def _step(self, events, now, prev):
        return now[id(self.left)] and now[id(self.right)]


class POr(_Binary):
    def _step(self, events, now, prev):
        return now[id(self.left)] or now[id(self.right)]


class PImplies(_Binary):
    def _step(self, events, now, prev):
        return (not now[id(self.left)]) or now[id(self.right)]


class Previously(_Unary):
    """⊙f — f held at the previous step (false at the first step)."""

    def _step(self, events, now, prev):
        return prev.get(id(self.operand), False)


class Once(_Unary):
    """⧫f — f held at some step up to and including now."""

    def _step(self, events, now, prev):
        return now[id(self.operand)] or prev.get(id(self), False)


class Historically(_Unary):
    """⊡f — f held at every step up to and including now."""

    def _step(self, events, now, prev):
        return now[id(self.operand)] and prev.get(id(self), True)


class Since(_Binary):
    """f S g — g held at some past-or-present step, and f has held since
    (strictly after that step, through now)."""

    def _step(self, events, now, prev):
        return now[id(self.right)] or (
            now[id(self.left)] and prev.get(id(self), False)
        )


# -- text syntax ----------------------------------------------------------------

_TEMPORAL_UNARY = {
    "historically": Historically,
    "once": Once,
    "previously": Previously,
    "prev": Previously,
}

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<arrow>->)|(?P<punct>[(){},&|!])"
    r"|(?P<name>[A-Za-z_][A-Za-z0-9_.\-@]*))"
)


def _tokenize(text: str) -> List[Tuple[str, str, int]]:
    """``(kind, value, position)`` triples; braces swallow expr text raw."""
    tokens: List[Tuple[str, str, int]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None or match.end() == match.start():
            stripped = text[pos:].lstrip()
            if not stripped:
                break
            at = len(text) - len(stripped)
            raise ParseError(
                f"unexpected character {stripped[0]!r} in property",
                text=text,
                position=at,
            )
        if match.group("punct") == "{":
            close = text.find("}", match.end())
            if close < 0:
                raise ParseError(
                    "unterminated '{' expression atom in property",
                    text=text,
                    position=match.start("punct"),
                )
            tokens.append(("expr", text[match.end():close], match.start("punct")))
            pos = close + 1
            continue
        if match.group("punct") == "}":
            raise ParseError(
                "unmatched '}' in property",
                text=text,
                position=match.start("punct"),
            )
        if match.group("arrow"):
            tokens.append(("op", "->", match.start("arrow")))
        elif match.group("punct"):
            tokens.append(("op", match.group("punct"), match.start("punct")))
        else:
            tokens.append(("name", match.group("name"), match.start("name")))
        pos = match.end()
    return tokens


class _PropertyParser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0

    def peek(self) -> Tuple[str, str, int]:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return ("end", "", len(self.text))

    def take(self) -> Tuple[str, str, int]:
        token = self.peek()
        self.index += 1
        return token

    def expect(self, value: str) -> None:
        kind, got, pos = self.take()
        if kind == "end" or got != value:
            raise ParseError(
                f"expected {value!r}"
                + (f", got {got!r}" if kind != "end" else ", got end of input"),
                text=self.text,
                position=pos,
            )

    def parse(self) -> PFormula:
        formula = self.implies()
        kind, value, pos = self.peek()
        if kind != "end":
            raise ParseError(
                f"unexpected {value!r} after property",
                text=self.text,
                position=pos,
            )
        return formula

    def implies(self) -> PFormula:
        left = self.disjunction()
        kind, value, _ = self.peek()
        if kind == "op" and value == "->":
            self.take()
            return PImplies(left, self.implies())
        return left

    def disjunction(self) -> PFormula:
        left = self.conjunction()
        while self.peek()[:2] == ("op", "|"):
            self.take()
            left = POr(left, self.conjunction())
        return left

    def conjunction(self) -> PFormula:
        left = self.unary()
        while self.peek()[:2] == ("op", "&"):
            self.take()
            left = PAnd(left, self.unary())
        return left

    def unary(self) -> PFormula:
        if self.peek()[:2] == ("op", "!"):
            self.take()
            return PNot(self.unary())
        return self.primary()

    def primary(self) -> PFormula:
        kind, value, pos = self.take()
        if kind == "expr":
            try:
                return StateProp(parse_expr(value))
            except ParseError as exc:
                raise ParseError(
                    f"bad '{{...}}' expression atom: "
                    f"{exc.args[0] if exc.args else exc}",
                    text=self.text,
                    position=pos,
                ) from exc
        if kind == "op" and value == "(":
            inner = self.implies()
            self.expect(")")
            return inner
        if kind == "name":
            follows_call = self.peek()[:2] == ("op", "(")
            lowered = value.lower()
            if follows_call and lowered in _TEMPORAL_UNARY:
                self.take()
                inner = self.implies()
                self.expect(")")
                return _TEMPORAL_UNARY[lowered](inner)
            if follows_call and lowered == "since":
                self.take()
                left = self.implies()
                self.expect(",")
                right = self.implies()
                self.expect(")")
                return Since(left, right)
            return Prop(value)
        raise ParseError(
            f"expected a property term, got "
            + (f"{value!r}" if kind != "end" else "end of input"),
            text=self.text,
            position=pos,
        )


def parse_property(text: str) -> PFormula:
    """Parse the manifest ``[properties]`` text syntax into a formula.

    Raises :class:`repro.errors.ParseError` (with ``position``) on bad
    input, mirroring :func:`repro.expr.parser.parse`.
    """
    if not text.strip():
        raise ParseError("empty property", text=text, position=0)
    return _PropertyParser(text).parse()


#: precedence levels for rendering (higher binds tighter)
_PREC_IMPLIES = 1
_PREC_OR = 2
_PREC_AND = 3
_PREC_NOT = 4
_PREC_ATOM = 5


def property_to_text(formula: PFormula) -> str:
    """Render a formula in the manifest text syntax.

    ``parse_property(property_to_text(f))`` is structurally ``f`` —
    the round-trip :func:`repro.manifest.dumps` depends on.
    """
    return _render(formula, 0)


def _render(formula: PFormula, context: int) -> str:
    if isinstance(formula, Prop):
        return formula.name
    if isinstance(formula, StateProp):
        return "{" + to_text(formula.expr) + "}"
    if isinstance(formula, PNot):
        return "!" + _render(formula.operand, _PREC_NOT)
    if isinstance(formula, Historically):
        return f"historically({_render(formula.operand, 0)})"
    if isinstance(formula, Once):
        return f"once({_render(formula.operand, 0)})"
    if isinstance(formula, Previously):
        return f"previously({_render(formula.operand, 0)})"
    if isinstance(formula, Since):
        return (
            f"since({_render(formula.left, 0)}, {_render(formula.right, 0)})"
        )
    if isinstance(formula, PAnd):
        # left-associative: a right-nested conjunction needs parentheses
        # to reparse into the same shape
        text = (
            f"{_render(formula.left, _PREC_AND)} & "
            f"{_render(formula.right, _PREC_AND + 1)}"
        )
        level = _PREC_AND
    elif isinstance(formula, POr):
        text = (
            f"{_render(formula.left, _PREC_OR)} | "
            f"{_render(formula.right, _PREC_OR + 1)}"
        )
        level = _PREC_OR
    elif isinstance(formula, PImplies):
        # right-associative: the right child re-enters at the same level
        text = (
            f"{_render(formula.left, _PREC_OR)} -> "
            f"{_render(formula.right, _PREC_IMPLIES)}"
        )
        level = _PREC_IMPLIES
    else:  # pragma: no cover - new operators must extend the renderer
        raise TypeError(f"cannot render {type(formula).__name__}")
    return f"({text})" if level < context else text
