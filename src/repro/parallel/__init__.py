"""Shared-memory parallel infrastructure.

Three pieces, each usable on its own:

* :mod:`repro.parallel.pool` — the process-wide persistent worker pool
  and its digest-keyed worker caches (enumeration tasks run here).
* :mod:`repro.parallel.bitset` — the hybrid :class:`SafetyMemo` and the
  bitset result-plane helpers (one bit per mask, scanned by word).
* :mod:`repro.parallel.counters` — the :class:`CounterBlock` that lets
  forked serve workers aggregate ``/v1/stats`` fleet-wide.
"""

from repro.parallel.bitset import (
    MAX_BITSET_COMPONENTS,
    SafetyMemo,
    iter_plane_masks,
    plane_size,
)
from repro.parallel.counters import FIELDS, CounterBlock
from repro.parallel.pool import (
    acquire_pool,
    cached_plane,
    clear_result_caches,
    enumerate_chunk,
    pool_stats,
    shutdown_pools,
    spec_digest,
    store_plane,
)

__all__ = [
    "MAX_BITSET_COMPONENTS",
    "SafetyMemo",
    "iter_plane_masks",
    "plane_size",
    "FIELDS",
    "CounterBlock",
    "acquire_pool",
    "cached_plane",
    "clear_result_caches",
    "enumerate_chunk",
    "pool_stats",
    "shutdown_pools",
    "spec_digest",
    "store_plane",
]
