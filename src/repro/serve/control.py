"""ControlPlane: the sans-io dispatch core every transport shares.

One object, one method: :meth:`ControlPlane.dispatch` takes a typed
request (:mod:`repro.serve.api`) and returns a typed result or an
:class:`~repro.serve.api.ErrorEnvelope` — it **never raises**.  The CLI
calls it with requests built from argv; the asyncio HTTP adapter calls
it with requests decoded from JSON bodies; both therefore produce
byte-identical answers, which a test pins by diffing ``repro plan
--json`` output against a direct ``dispatch()`` call.

The dispatch guard converts the library's exception taxonomy into the
closed wire-error vocabulary (:data:`repro.serve.api.ERROR_CODES`):
manifest :class:`~repro.errors.ParseError` → ``bad-manifest``,
:class:`~repro.errors.NoSafePathError` → ``no-safe-path``, an unknown
digest → ``unknown-spec``, and so on down to a last-resort ``internal``
envelope carrying the exception type and message — never a traceback.

A warm-path **wire cache** (:meth:`plan_wire_fast`) lets the HTTP
adapter answer repeated ``/v1/plan`` requests with precomputed response
bytes while still counting the hit in the service's warm statistics —
this is what carries the single-core throughput target.  Lint has the
same fast lane (:meth:`lint_wire_fast`): repeated ``/v1/lint`` bodies
are answered from cached bytes, keyed by the canonical request body and
pinned to the spec digests of the (strictly loadable) sources so that
evicting a spec drops every cached lint answer that mentioned it.
"""

from __future__ import annotations

import io
import json
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.core.model import Configuration
from repro.core.planner import AdaptationPlan
from repro.errors import (
    NoSafePathError,
    ParseError,
    ReproError,
    UnsafeConfigurationError,
)
from repro.ltl.ast import parse_property, property_to_text
from repro.serve.api import (
    ErrorEnvelope,
    EvictSpecRequest,
    EvictSpecResult,
    LintRequest,
    LintResult,
    PlanBatchItem,
    PlanBatchRequest,
    PlanBatchResult,
    PlanInfo,
    PlanRequest,
    PlanResult,
    PlanStepInfo,
    RegisterSpecRequest,
    RegisterSpecResult,
    Request,
    Response,
    StatsRequest,
    StatsResult,
    TraceCheckRequest,
    TraceCheckResult,
    TracePropertyInfo,
    TraceViolationInfo,
    VerifyPathsRequest,
    VerifyPathsResult,
)
from repro.serve.registry import SpecRecord, SpecRegistry
from repro.serve.service import PLAN_METHODS, PlanningService


class _Fail(Exception):
    """Internal: aborts a handler with a specific error envelope."""

    def __init__(self, code: str, message: str, detail=None):
        super().__init__(message)
        self.envelope = ErrorEnvelope(code, message, detail)


def _fail(code: str, message: str) -> "_Fail":
    return _Fail(code, message)


def _plan_info(plan: AdaptationPlan) -> PlanInfo:
    """Render a live plan into its wire form (labels, not objects)."""
    return PlanInfo(
        source=plan.source.label(),
        target=plan.target.label(),
        cost=plan.total_cost,
        steps=tuple(
            PlanStepInfo(
                index=step.index,
                action=step.action.action_id,
                description=step.action.description,
                operation=step.action.operation_text(),
                cost=step.action.cost,
                source=step.source.label(),
                target=step.target.label(),
            )
            for step in plan.steps
        ),
    )


class _PropertyCheck:
    """Constant-memory ptLTL check over a trace's committed configurations.

    Feeds every ``ConfigCommitted`` record through the compiled property
    — state is one int, so streaming stays constant-memory — and
    remembers the first violating commit.  (Moved here from ``cli.py``;
    the CLI now renders the resulting :class:`TracePropertyInfo`.)
    """

    def __init__(self, name: str, compiled) -> None:
        self.name = name
        self.compiled = compiled
        self.state = compiled.initial_state
        self.commits = 0
        self.first_violation = None  # (commit index, record)

    def feed(self, record) -> None:
        from repro.trace import ConfigCommitted

        if not isinstance(record, ConfigCommitted):
            return
        value, self.state = self.compiled.step(
            self.compiled.mask_of(record.configuration), self.state
        )
        self.commits += 1
        if not value and self.first_violation is None:
            self.first_violation = (self.commits, record)

    def info(self) -> TracePropertyInfo:
        formula = property_to_text(self.compiled.formula)
        if self.first_violation is None:
            return TracePropertyInfo(
                name=self.name, formula=formula, holds=True,
                commits=self.commits,
            )
        index, record = self.first_violation
        return TracePropertyInfo(
            name=self.name,
            formula=formula,
            holds=False,
            commits=self.commits,
            violation_commit=index,
            violation_time=record.time,
            violation_after=record.action_id or record.step_id,
            violation_members=tuple(sorted(record.configuration)),
        )


#: the only /v1/plan body shape the wire cache may answer
_FAST_FIELDS = frozenset(("spec", "source", "target", "k", "method"))
#: every /v1/lint body field (the lint wire cache keys on all of them)
_LINT_FIELDS = frozenset((
    "manifest", "sources", "format", "fail_on", "verbose",
    "max_enum_components", "workers",
))
_FAST_CACHE_LIMIT = 4096


class ControlPlane:
    """Transport-agnostic dispatcher over a service + spec registry.

    Args:
        service: the shared :class:`PlanningService` (one is created
            when omitted; *workers* is forwarded to it).
        workers: safe-space enumeration workers for a created service.
        max_specs: LRU bound on the spec registry.
        shard: ``(index, total)`` worker identity for digest sharding.
    """

    def __init__(
        self,
        service: Optional[PlanningService] = None,
        *,
        workers: Optional[int] = None,
        max_specs: int = 64,
        shard: Optional[Tuple[int, int]] = None,
    ):
        self.service = service if service is not None else PlanningService(
            workers=workers
        )
        self.registry = SpecRegistry(
            self.service, max_specs=max_specs, shard=shard
        )
        #: (spec, source, target, method) → precomputed wire bytes
        self._fast_cache: Dict[Tuple[str, str, str, str], bytes] = {}
        #: canonical /v1/lint body → (wire bytes, spec digests it depends on)
        self._lint_cache: Dict[str, Tuple[bytes, Tuple[str, ...]]] = {}
        self._lint_hits = 0
        self._handlers: Dict[type, Callable[[Any], Response]] = {
            RegisterSpecRequest: self._handle_register,
            EvictSpecRequest: self._handle_evict,
            PlanRequest: self._handle_plan,
            PlanBatchRequest: self._handle_plan_batch,
            VerifyPathsRequest: self._handle_verify_paths,
            LintRequest: self._handle_lint,
            TraceCheckRequest: self._handle_trace_check,
            StatsRequest: self._handle_stats,
        }

    @property
    def lint_hits(self) -> int:
        """Lint wire-cache hits (published into the cluster counters)."""
        return self._lint_hits

    # -- dispatch ----------------------------------------------------------------
    def dispatch(self, request: Request) -> Response:
        """Answer any control-plane request; never raises.

        Domain failures come back as :class:`ErrorEnvelope`; anything
        unexpected becomes an ``internal`` envelope (type + message, no
        traceback) so transports can forward it verbatim.
        """
        handler = self._handlers.get(type(request))
        if handler is None:
            return ErrorEnvelope(
                "bad-request",
                f"unsupported request type {type(request).__name__}",
            )
        try:
            return handler(request)
        except Exception as exc:  # noqa: BLE001 — the envelope boundary
            return self._envelope_for(exc)

    @staticmethod
    def _envelope_for(exc: BaseException) -> ErrorEnvelope:
        """Map the library exception taxonomy onto wire error codes."""
        if isinstance(exc, _Fail):
            return exc.envelope
        if isinstance(exc, ParseError):
            return ErrorEnvelope("bad-manifest", str(exc))
        if isinstance(exc, NoSafePathError):
            return ErrorEnvelope("no-safe-path", str(exc))
        if isinstance(exc, UnsafeConfigurationError):
            return ErrorEnvelope("unsafe-configuration", str(exc))
        if isinstance(exc, ReproError):
            return ErrorEnvelope("bad-request", str(exc))
        if (
            isinstance(exc, KeyError)
            and exc.args
            and isinstance(exc.args[0], str)
            and "spec digest" in exc.args[0]
        ):
            return ErrorEnvelope("unknown-spec", exc.args[0])
        if isinstance(exc, FileNotFoundError):
            return ErrorEnvelope("not-found", str(exc))
        if isinstance(exc, (ValueError, KeyError, TypeError)):
            return ErrorEnvelope("bad-request", str(exc))
        return ErrorEnvelope("internal", f"{type(exc).__name__}: {exc}")

    # -- spec resolution ---------------------------------------------------------
    def _resolve_spec(
        self, spec: Optional[str], manifest: Optional[str]
    ) -> SpecRecord:
        if (spec is None) == (manifest is None):
            raise _fail(
                "bad-request",
                "exactly one of 'spec' (a digest) and 'manifest' "
                "(inline text) is required",
            )
        if spec is not None:
            return self.registry.get(spec)  # KeyError → unknown-spec
        record, _created = self.registry.register(manifest)
        return record

    @staticmethod
    def _resolve_config(record: SpecRecord, spec: str) -> Configuration:
        try:
            return record.manifest.resolve_configuration(spec)
        except ReproError as exc:
            raise _fail("unknown-configuration", str(exc)) from exc

    def _oversized(self, record: SpecRecord) -> Tuple[bool, Optional[int], int]:
        cap = self.service.lazy_components
        n = len(record.manifest.universe)
        return (cap is not None and n > cap), cap, n

    # -- handlers ----------------------------------------------------------------
    def _handle_register(self, request: RegisterSpecRequest) -> Response:
        record, created = self.registry.register(request.manifest)
        manifest = record.manifest
        return RegisterSpecResult(
            digest=record.digest,
            components=len(manifest.universe),
            processes=len(manifest.universe.processes()),
            invariants=len(manifest.invariants),
            actions=len(manifest.actions),
            configurations=tuple(sorted(manifest.configurations)),
            properties=tuple(sorted(manifest.properties)),
            created=created,
        )

    def _handle_evict(self, request: EvictSpecRequest) -> Response:
        return EvictSpecResult(
            digest=request.spec, evicted=self.registry.evict(request.spec)
        )

    def _handle_plan(self, request: PlanRequest) -> Response:
        if request.method not in PLAN_METHODS:
            raise _fail(
                "bad-request",
                f"method must be one of {PLAN_METHODS}, "
                f"got {request.method!r}",
            )
        if request.k < 1:
            raise _fail("bad-request", f"k must be positive, got {request.k}")
        record = self._resolve_spec(request.spec, request.manifest)
        source = self._resolve_config(record, request.source)
        target = self._resolve_config(record, request.target)
        oversized, cap, n = self._oversized(record)
        method = request.method
        if method == "auto":
            # above the cap the eager 2^n pipeline is off the table
            method = "lazy" if oversized else "dijkstra"
        if request.k > 1 and oversized:
            raise _fail(
                "bad-request",
                f"k-best alternates need the eager SAG, which is capped "
                f"at {cap} components (spec has {n})",
            )
        plan = self.service.plan_digest(
            record.digest, source, target, method=method
        )
        alternates: Tuple[Tuple[Tuple[str, ...], float], ...] = ()
        if request.k > 1:
            alternates = tuple(
                (alt.action_ids, alt.total_cost)
                for alt in self.service.plan_k_digest(
                    record.digest, source, target, request.k
                )
            )
        return PlanResult(
            digest=record.digest,
            plan=_plan_info(plan),
            method=method,
            alternates=alternates,
        )

    def _resolve_pairs(
        self, record: SpecRecord, pairs
    ) -> List[Tuple[Configuration, Configuration]]:
        return [
            (
                self._resolve_config(record, source),
                self._resolve_config(record, target),
            )
            for source, target in pairs
        ]

    @staticmethod
    def _batch_item(
        source: Configuration,
        target: Configuration,
        plan: Optional[AdaptationPlan],
    ) -> PlanBatchItem:
        if plan is None:
            return PlanBatchItem(source.label(), target.label(), False)
        return PlanBatchItem(
            source.label(),
            target.label(),
            True,
            actions=plan.action_ids,
            cost=plan.total_cost,
        )

    def _handle_plan_batch(self, request: PlanBatchRequest) -> Response:
        if not request.pairs:
            raise _fail("bad-request", "pairs must not be empty")
        record = self._resolve_spec(request.spec, request.manifest)
        pairs = self._resolve_pairs(record, request.pairs)
        plans = self.service.plan_many_digest(record.digest, pairs)
        return PlanBatchResult(
            digest=record.digest,
            results=tuple(
                self._batch_item(source, target, plan)
                for (source, target), plan in zip(pairs, plans)
            ),
        )

    def plan_batch_stream(
        self, request: PlanBatchRequest
    ) -> Iterator[Dict[str, Any]]:
        """NDJSON form of a batch: one wire dict per pair, then a summary.

        Unlike :meth:`dispatch` on a :class:`PlanBatchRequest` (which
        amortizes via ``plan_many``), this plans pair by pair so results
        stream out as they land.  A fatal failure yields one
        ``{"error": ...}`` line and ends the stream.
        """
        try:
            record = self._resolve_spec(request.spec, request.manifest)
            pairs = self._resolve_pairs(record, request.pairs)
        except Exception as exc:  # noqa: BLE001 — the envelope boundary
            yield {"error": self._envelope_for(exc).payload()}
            return
        reachable = 0
        for source, target in pairs:
            try:
                plan: Optional[AdaptationPlan] = self.service.plan_digest(
                    record.digest, source, target
                )
            except NoSafePathError:
                plan = None
            except Exception as exc:  # noqa: BLE001
                yield {"error": self._envelope_for(exc).payload()}
                return
            if plan is not None:
                reachable += 1
            yield self._batch_item(source, target, plan).payload()
        yield {
            "summary": {
                "digest": record.digest,
                "requested": len(pairs),
                "reachable": reachable,
            }
        }

    def _handle_verify_paths(self, request: VerifyPathsRequest) -> Response:
        if (request.property_name is None) == (request.formula is None):
            raise _fail(
                "bad-request",
                "exactly one of 'property' and 'formula' is required",
            )
        if request.quantifier not in ("all", "exists"):
            raise _fail(
                "bad-request",
                f"quantifier must be 'all' or 'exists', "
                f"got {request.quantifier!r}",
            )
        if request.k is not None and request.k <= 0:
            raise _fail("bad-request", f"k must be positive, got {request.k}")
        if request.max_expansions is not None and request.max_expansions <= 0:
            raise _fail(
                "bad-request",
                f"max_expansions must be positive, "
                f"got {request.max_expansions}",
            )
        record = self._resolve_spec(request.spec, request.manifest)
        if request.property_name is not None:
            try:
                phi = record.manifest.property_named(request.property_name)
            except ReproError as exc:
                raise _fail("unknown-property", str(exc)) from exc
        else:
            try:
                phi = parse_property(request.formula)
            except ParseError as exc:
                raise _fail("bad-property", str(exc)) from exc
        source = self._resolve_config(record, request.source)
        target = self._resolve_config(record, request.target)
        verdict = self.service.verify_paths_digest(
            record.digest,
            source,
            target,
            phi,
            quantifier=request.quantifier,
            k=request.k,
            max_expansions=request.max_expansions,
            lazy=request.lazy,
        )
        return VerifyPathsResult(
            digest=record.digest,
            property_name=request.property_name,
            formula=property_to_text(phi),
            quantifier=verdict.quantifier,
            k=verdict.k,
            mode=verdict.mode,
            paths_checked=verdict.paths_checked,
            complete=verdict.complete,
            holds=verdict.holds,
            reason=verdict.reason,
            violation_index=verdict.violation_index,
            counterexample=(
                None
                if verdict.counterexample is None
                else _plan_info(verdict.counterexample)
            ),
            witness=(
                None if verdict.witness is None else _plan_info(verdict.witness)
            ),
        )

    def _handle_lint(self, request: LintRequest) -> Response:
        from repro.lint import (
            LintReport,
            Severity,
            lint_text,
            render_json,
            render_sarif,
            render_text,
        )

        if request.format not in ("text", "json", "sarif"):
            raise _fail(
                "bad-request",
                f"format must be 'text', 'json', or 'sarif', "
                f"got {request.format!r}",
            )
        try:
            threshold = Severity.from_label(request.fail_on)
        except ValueError as exc:
            raise _fail("bad-request", str(exc)) from exc
        if not request.sources:
            raise _fail("bad-request", "lint needs at least one source")
        merged = LintReport()
        for path, text in request.sources:
            merged.extend(
                lint_text(
                    text,
                    path=path,
                    max_enum_components=request.max_enum_components,
                    workers=request.workers,
                )
            )
        merged.sort()
        if request.format == "json":
            rendered = render_json(merged)
        elif request.format == "sarif":
            rendered = render_sarif(merged)
        else:
            rendered = render_text(merged, verbose=request.verbose)
        return LintResult(
            failed=merged.fails(threshold),
            format=request.format,
            rendered=rendered,
            summary={
                "errors": len(merged.errors),
                "warnings": len(merged.warnings),
                "notes": len(merged.notes),
            },
            report=json.loads(render_json(merged)),
        )

    def _handle_trace_check(self, request: TraceCheckRequest) -> Response:
        from repro.obs import MetricsObserver
        from repro.safety import SafetyChecker
        from repro.trace import iter_jsonl

        if (request.trace is None) == (request.trace_path is None):
            raise _fail(
                "bad-request",
                "exactly one of 'trace' (JSONL text) and 'trace_path' "
                "is required",
            )
        record = self._resolve_spec(request.spec, request.manifest)
        manifest = record.manifest
        ltl: Optional[_PropertyCheck] = None
        if request.ltl is not None:
            try:
                phi = manifest.property_named(request.ltl)
            except ReproError as exc:
                raise _fail("unknown-property", str(exc)) from exc
            ltl = _PropertyCheck(
                request.ltl,
                self.service.compiled_property_digest(record.digest, phi),
            )
        checker = SafetyChecker(manifest.invariants, universe=manifest.universe)
        stream = checker.streaming()
        metrics = MetricsObserver() if request.metrics else None
        if request.trace_path is not None:
            handle = open(request.trace_path, encoding="utf-8")
        else:
            handle = io.StringIO(request.trace)
        # Constant memory either way: records flow source → decoder →
        # checker one at a time; the trace is never materialized.
        try:
            with handle:
                for rec in iter_jsonl(handle):
                    stream.feed(rec)
                    if metrics is not None:
                        metrics.feed(rec)
                    if ltl is not None:
                        ltl.feed(rec)
        except ValueError as exc:
            if request.trace_path is not None:
                message = f"malformed trace file {request.trace_path}: {exc}"
            else:
                message = f"malformed trace: {exc}"
            raise _fail("bad-trace", message) from exc
        report = stream.finish()
        return TraceCheckResult(
            digest=record.digest,
            records=stream.records_seen,
            commits=stream.configurations_checked,
            safety_ok=report.ok,
            safety_summary=report.summary(),
            violations=tuple(
                TraceViolationInfo(v.kind, v.time, v.detail)
                for v in report.violations
            ),
            property_check=None if ltl is None else ltl.info(),
            metrics_summary=(
                None if metrics is None else metrics.finish().summary()
            ),
        )

    def _handle_stats(self, request: StatsRequest) -> Response:
        stats = self.service.stats()
        return StatsResult(
            service={
                "specs": stats.specs,
                "warm_hits": stats.warm_hits,
                "cold_plans": stats.cold_plans,
                "lazy_plans": stats.lazy_plans,
                "verify_hits": stats.verify_hits,
                "lint_hits": self._lint_hits,
                "evictions": stats.evictions,
            },
            specs=tuple(self.registry.describe()),
        )

    # -- warm-path wire cache ----------------------------------------------------
    def plan_wire_fast(self, payload: Any) -> Optional[bytes]:
        """Precomputed response bytes for a warm ``/v1/plan`` body.

        Returns ``None`` whenever the answer is not already cached (or
        the body is anything but a plain digest-addressed single plan) —
        the caller then takes the full decode → dispatch path.  A hit is
        still counted in the spec's warm statistics, and a hit whose
        spec has been evicted invalidates itself and falls back, so the
        cache can never resurrect a dropped spec.
        """
        if not isinstance(payload, dict) or set(payload) - _FAST_FIELDS:
            return None
        spec = payload.get("spec")
        source = payload.get("source")
        target = payload.get("target")
        if (
            not isinstance(spec, str)
            or not isinstance(source, str)
            or not isinstance(target, str)
            or payload.get("k", 1) != 1
        ):
            return None
        key = (spec, source, target, payload.get("method", "auto"))
        wire = self._fast_cache.get(key)
        if wire is None:
            return None
        if not self.service.count_warm_hit(spec):
            self._fast_cache.pop(key, None)
            return None
        return wire

    def plan_wire_store(
        self, payload: Any, response: Response, wire: bytes
    ) -> None:
        """Cache a just-dispatched ``/v1/plan`` answer for the fast path.

        Only deterministic answers are eligible: a successful single
        plan, or the (equally cacheable) ``no-safe-path`` envelope.
        Transient failures — overload, deadline, unknown spec — never
        enter the cache.
        """
        if not isinstance(payload, dict) or set(payload) - _FAST_FIELDS:
            return
        spec = payload.get("spec")
        if not isinstance(spec, str) or payload.get("k", 1) != 1:
            return
        cacheable = isinstance(response, PlanResult) or (
            isinstance(response, ErrorEnvelope)
            and response.code == "no-safe-path"
        )
        if not cacheable:
            return
        if len(self._fast_cache) >= _FAST_CACHE_LIMIT:
            self._fast_cache.clear()
        key = (
            spec,
            payload["source"],
            payload["target"],
            payload.get("method", "auto"),
        )
        self._fast_cache[key] = wire

    # -- warm-path lint cache ----------------------------------------------------
    @staticmethod
    def _lint_key(payload: Any) -> Optional[str]:
        """Canonical cache key for a ``/v1/lint`` body (None: uncacheable)."""
        if not isinstance(payload, dict) or set(payload) - _LINT_FIELDS:
            return None
        try:
            return json.dumps(payload, sort_keys=True)
        except (TypeError, ValueError):
            return None

    @staticmethod
    def _lint_texts(payload: Dict[str, Any]) -> List[str]:
        """The manifest texts a ``/v1/lint`` body carries (shape-tolerant)."""
        texts: List[str] = []
        if isinstance(payload.get("manifest"), str):
            texts.append(payload["manifest"])
        sources = payload.get("sources")
        if isinstance(sources, list):
            for entry in sources:
                if isinstance(entry, str):
                    texts.append(entry)
                elif isinstance(entry, dict) and isinstance(
                    entry.get("text"), str
                ):
                    texts.append(entry["text"])
        return texts

    def lint_wire_fast(self, payload: Any) -> Optional[bytes]:
        """Precomputed response bytes for a warm ``/v1/lint`` body.

        Lint is deterministic, so identical bodies always produce
        identical reports — the cache answers them without re-running
        the analyzer.  Each entry is pinned to the spec digests of the
        sources that loaded strictly at store time; evicting any of
        those specs (``DELETE /v1/specs/<digest>`` or registry LRU
        pressure) invalidates the entry, so a dropped spec can never
        keep serving stale lint bytes.
        """
        key = self._lint_key(payload)
        if key is None:
            return None
        entry = self._lint_cache.get(key)
        if entry is None:
            return None
        wire, digests = entry
        if any(not self.service.has_spec(digest) for digest in digests):
            self._lint_cache.pop(key, None)
            return None
        self._lint_hits += 1
        return wire

    def lint_wire_store(
        self, payload: Any, response: Response, wire: bytes
    ) -> None:
        """Cache a just-dispatched ``/v1/lint`` answer for the fast path.

        Only successful reports are eligible; error envelopes (bad
        format, malformed body) are cheap to recompute and never enter
        the cache.  Sources that load strictly are registered so the
        entry's lifetime is tied to their spec digests; defective
        sources — lint's bread and butter — contribute no digest and the
        entry simply lives until the cache is cleared by size pressure.
        """
        key = self._lint_key(payload)
        if key is None or not isinstance(response, LintResult):
            return
        digests: List[str] = []
        for text in self._lint_texts(payload):
            try:
                record, _ = self.registry.register(text)
            except Exception:  # noqa: BLE001 — defective manifests are fine
                continue
            if record.digest not in digests:
                digests.append(record.digest)
        if len(self._lint_cache) >= _FAST_CACHE_LIMIT:
            self._lint_cache.clear()
        self._lint_cache[key] = (wire, tuple(digests))
