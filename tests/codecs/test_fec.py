"""Unit tests for the XOR-parity FEC filters."""

import pytest

from repro.codecs.fec import FecDecoderFilter, FecEncoderFilter, _xor_payloads
from repro.codecs.packets import data_packet, marker_packet


def packets(n, size=16):
    return [data_packet(i, 0, i, n, bytes([i]) * size) for i in range(n)]


class TestXor:
    def test_xor_identity(self):
        assert _xor_payloads([b"\x0f\x0f", b"\x0f\x0f"]) == b"\x00\x00"

    def test_xor_uneven_lengths(self):
        out = _xor_payloads([b"\xff", b"\x00\xaa"])
        assert out == b"\xff\xaa"


class TestEncoder:
    def test_parity_every_k_packets(self):
        encoder = FecEncoderFilter("fec", k=3)
        outputs = []
        for packet in packets(3):
            outputs.extend(encoder.process(packet))
        assert len(outputs) == 4  # 3 data + 1 parity
        parity = outputs[-1]
        assert parity.is_parity
        assert parity.members == (0, 1, 2)
        assert encoder.parity_emitted == 1

    def test_data_passes_through_unchanged(self):
        encoder = FecEncoderFilter("fec", k=4)
        p = packets(1)[0]
        assert encoder.process(p)[0] is p

    def test_markers_ignored(self):
        encoder = FecEncoderFilter("fec", k=2)
        marker = marker_packet(9, "k")
        assert encoder.process(marker) == [marker]

    def test_k_validated(self):
        with pytest.raises(ValueError):
            FecEncoderFilter("fec", k=1)


class TestDecoder:
    def encode_group(self, k=3):
        encoder = FecEncoderFilter("fec", k=k)
        out = []
        for packet in packets(k):
            out.extend(encoder.process(packet))
        return out  # k data + parity

    def test_no_loss_parity_absorbed(self):
        decoder = FecDecoderFilter("fecd")
        outputs = []
        for packet in self.encode_group():
            outputs.extend(decoder.process(packet))
        assert [p.seq for p in outputs] == [0, 1, 2]
        assert decoder.parity_consumed == 1
        assert decoder.recovered == 0

    def test_single_loss_recovered_exactly(self):
        stream = self.encode_group()
        lost = stream.pop(1)  # drop data packet seq=1
        decoder = FecDecoderFilter("fecd")
        outputs = []
        for packet in stream:
            outputs.extend(decoder.process(packet))
        recovered = [p for p in outputs if p.seq == lost.seq]
        assert len(recovered) == 1
        from dataclasses import replace
        assert replace(recovered[0], recovered=False) == lost  # byte-exact
        assert recovered[0].recovered
        assert recovered[0].verify()
        assert decoder.recovered == 1

    def test_recovery_with_uneven_payload_lengths(self):
        # The last chunk of a frame is shorter: recovery must not pad it.
        encoder = FecEncoderFilter("fec", k=3)
        originals = [
            data_packet(0, 0, 0, 3, b"A" * 16),
            data_packet(1, 0, 1, 3, b"B" * 16),
            data_packet(2, 0, 2, 3, b"C" * 5),
        ]
        stream = []
        for packet in originals:
            stream.extend(encoder.process(packet))
        lost = originals[2]
        stream = [p for p in stream if p.seq != lost.seq]
        decoder = FecDecoderFilter("fecd")
        outputs = []
        for packet in stream:
            outputs.extend(decoder.process(packet))
        (recovered,) = [p for p in outputs if p.seq == lost.seq]
        from dataclasses import replace
        assert replace(recovered, recovered=False) == lost
        assert recovered.verify()

    def test_recovered_encrypted_packet_decrypts(self):
        from repro.codecs.crypto_filters import DecoderFilter, EncoderFilter

        crypto = EncoderFilter("E1", "des64")
        fec_enc = FecEncoderFilter("fec", k=3)
        stream = []
        originals = packets(3, size=24)
        for packet in originals:
            (encrypted,) = crypto.process(packet)
            stream.extend(fec_enc.process(encrypted))
        # lose the middle encrypted packet
        lost_seq = originals[1].seq
        stream = [p for p in stream if p.seq != lost_seq]
        fec_dec = FecDecoderFilter("fecd")
        decryptor = DecoderFilter("D1", ["des64"])
        delivered = []
        for packet in stream:
            for out in fec_dec.process(packet):
                delivered.extend(decryptor.process(out))
        by_seq = {p.seq: p for p in delivered}
        assert by_seq[lost_seq].verify()
        assert by_seq[lost_seq].payload == originals[1].payload

    def test_double_loss_unrecoverable(self):
        stream = self.encode_group()
        del stream[1]
        del stream[0]
        decoder = FecDecoderFilter("fecd")
        outputs = []
        for packet in stream:
            outputs.extend(decoder.process(packet))
        assert decoder.recovered == 0
        assert [p.seq for p in outputs] == [2]

    def test_cache_eviction(self):
        decoder = FecDecoderFilter("fecd", cache_size=2)
        for packet in packets(5):
            decoder.process(packet)
        assert len(decoder._seen) == 2

    def test_status_refraction(self):
        decoder = FecDecoderFilter("fecd")
        status = decoder.refract("fec_status")
        assert status["recovered"] == 0
