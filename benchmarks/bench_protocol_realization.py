"""Experiment F1/F2 — realization-phase mechanics, measured per action type.

The paper's Figures 1–2 define the manager/agent coordination; Table 2's
cost model encodes its consequence — actions that must drain the channel
with the sender blocked (encoder/decoder composites) disrupt the stream an
order of magnitude more than single-component actions.  This bench runs
each action class through the live protocol and measures what Table 2
prices: blocking time and stream disruption.
"""

import pytest

from benchmarks.conftest import report
from repro.apps.video import VideoScenario, build_video_cluster
from repro.apps.video.system import paper_source, paper_target
from repro.bench import format_table
from repro.trace import BlockRecord

CASES = [
    # (label, plan action ids) — each executed from the paper source.
    ("MAP (5 singles)", None),         # planner's own MAP
    ("single composite A14", ("A14",)),
    ("A13 then A4 (composite+single)", ("A13", "A4")),
]


def run_with_plan(action_ids, seed=5):
    scenario = VideoScenario(seed=seed)
    cluster = scenario.cluster
    cluster.sim.run(until=50.0)
    if action_ids is None:
        plan = cluster.planner.plan(paper_source(), paper_target())
    else:
        plans = cluster.planner.plan_k(paper_source(), paper_target(), 30)
        plan = next(p for p in plans if p.action_ids == tuple(action_ids))
    outcome = cluster.run_plan(plan)
    cluster.sim.run(until=cluster.sim.now + 60.0)
    return scenario, outcome


def total_blocked(trace, process):
    total, start = 0.0, None
    for record in trace.of_type(BlockRecord):
        if record.process != process:
            continue
        if record.blocked and start is None:
            start = record.time
        elif not record.blocked and start is not None:
            total += record.time - start
            start = None
    return total


@pytest.mark.parametrize("label,action_ids", CASES, ids=[c[0] for c in CASES])
def test_realization_per_action_class(benchmark, label, action_ids):
    scenario, outcome = benchmark(lambda: run_with_plan(action_ids))
    assert outcome.succeeded
    scenario.safety_report().raise_if_unsafe()
    stats = scenario.stream_stats()
    assert stats["handheld_corrupt"] == 0 and stats["laptop_corrupt"] == 0
    server_blocked = total_blocked(scenario.cluster.trace, "server")
    benchmark.extra_info["adaptation_ms"] = outcome.duration
    benchmark.extra_info["server_blocked_ms"] = server_blocked
    report(
        f"realization: {label}",
        format_table(
            ["metric", "value"],
            [
                ("adaptation duration (ms)", round(outcome.duration, 1)),
                ("server blocked (ms)", round(server_blocked, 1)),
                ("steps", outcome.steps_committed),
            ],
        ),
    )


def test_composites_block_sender_singles_do_not(benchmark):
    """Table 2's cost rationale, measured: the composite drains with the
    server blocked; the all-singles MAP never stops the source."""
    map_scenario, map_outcome = benchmark.pedantic(
        run_with_plan, args=(None,), rounds=1, iterations=1
    )
    composite_scenario, composite_outcome = run_with_plan(("A14",))
    map_blocked = total_blocked(map_scenario.cluster.trace, "server")
    composite_blocked = total_blocked(composite_scenario.cluster.trace, "server")
    assert map_blocked == 0.0
    assert composite_blocked > 0.0
    report(
        "Table 2 cost rationale (measured server blocking)",
        format_table(
            ["plan", "server blocked (ms)"],
            [
                ("MAP (A2,A17,A1,A4,A16)", round(map_blocked, 1)),
                ("composite A14", round(composite_blocked, 1)),
            ],
        ),
    )


def test_message_complexity_of_map(benchmark):
    """Coordination overhead: control messages per five-step adaptation."""

    def run():
        scenario = VideoScenario(seed=9)
        before = scenario.cluster.network.messages_sent
        outcome = scenario.run(warmup=10.0, cooldown=10.0)
        # subtract data-plane traffic: count only manager/agent endpoints
        return scenario, outcome

    scenario, outcome = benchmark(run)
    assert outcome.succeeded
    # 5 steps × (reset + reset_done + adapt_done + resume + resume_done)
    # + 2 flush requests = 27 control messages minimum
    benchmark.extra_info["network_messages_total"] = (
        scenario.cluster.network.messages_sent
    )
