"""Property tests: streaming verdicts are pinned to the batch oracles.

``SafetyChecker.check`` is now a wrapper over the streaming core, so the
meaningful oracle is ``check_replay`` — the pre-bus whole-trace replay
implementation kept verbatim for exactly this differential test.  Any
divergence in the incremental bookkeeping (violations, counters,
ordering, CCS re-judgement of extended segments) fails here on a
shrunken counterexample.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ccs import CCSSpec, CCSTracker
from repro.core.invariants import InvariantSet
from repro.core.model import ComponentUniverse
from repro.safety import SafetyChecker
from repro.trace import (
    AdaptationApplied,
    BlockRecord,
    CommRecord,
    ConfigCommitted,
    CorruptionRecord,
    NoteRecord,
    RollbackRecord,
    Trace,
)

PROCESSES = ("p1", "p2")
# "Z" is deliberately outside the universe: commits containing it force
# the streaming checker off the compiled-mask fast path onto the AST.
COMPONENTS = ("A", "B", "C", "Z")
ACTIONS = ("a", "b", "c", "x", "y")

UNIVERSE = ComponentUniverse.from_names(
    ["A", "B", "C"], {"A": "p1", "B": "p1", "C": "p2"}
)
INVARIANTS = InvariantSet.of("A | B", "one_of(A, C)")
# Nested prefixes and a shared-prefix pair: exercises open → complete →
# longer-complete → dead transitions in the incremental tracker.
SPEC = CCSSpec([("a",), ("a", "b"), ("a", "b", "c"), ("x", "y")])

times = st.floats(min_value=0.0, max_value=100.0, allow_nan=False, width=32)
configurations = st.frozensets(st.sampled_from(COMPONENTS), max_size=4)

record_strategy = st.one_of(
    st.builds(
        ConfigCommitted,
        time=times,
        configuration=configurations,
        step_id=st.sampled_from(("initial", "s1", "s2")),
        action_id=st.sampled_from(("", "a1")),
    ),
    st.builds(
        CommRecord,
        time=times,
        cid=st.integers(min_value=0, max_value=3),
        action=st.sampled_from(ACTIONS),
    ),
    st.builds(
        BlockRecord,
        time=times,
        process=st.sampled_from(PROCESSES),
        blocked=st.booleans(),
    ),
    st.builds(
        AdaptationApplied,
        time=times,
        process=st.sampled_from(PROCESSES),
        action_id=st.sampled_from(("a1", "a2")),
        removes=configurations,
        adds=configurations,
    ),
    st.builds(
        CorruptionRecord,
        time=times,
        process=st.sampled_from(PROCESSES),
        detail=st.sampled_from(("bad frame", "checksum mismatch")),
    ),
    st.builds(
        RollbackRecord,
        time=times,
        process=st.sampled_from(PROCESSES),
        action_id=st.just("a1"),
    ),
    st.builds(NoteRecord, time=times, text=st.just("note")),
)

record_lists = st.lists(record_strategy, max_size=80)


@settings(max_examples=200, deadline=None)
@given(records=record_lists, with_universe=st.booleans())
def test_streaming_verdict_equals_batch_replay(records, with_universe):
    trace = Trace(records)
    checker = SafetyChecker(
        INVARIANTS, ccs=SPEC, universe=UNIVERSE if with_universe else None
    )
    streamed = checker.check(trace)
    replayed = checker.check_replay(trace)
    # Dataclass equality covers violations (content AND ordering) plus
    # every counter; spelled out for readable failure output.
    assert streamed.violations == replayed.violations
    assert streamed.configurations_checked == replayed.configurations_checked
    assert streamed.segments_checked == replayed.segments_checked
    assert streamed.segments_complete == replayed.segments_complete
    assert streamed.in_actions_checked == replayed.in_actions_checked
    assert streamed == replayed


@settings(max_examples=200, deadline=None)
@given(records=record_lists, check_discipline=st.booleans())
def test_streaming_matches_replay_without_discipline_clause(
    records, check_discipline
):
    trace = Trace(records)
    checker = SafetyChecker(
        INVARIANTS, ccs=SPEC, check_discipline=check_discipline
    )
    assert checker.check(trace) == checker.check_replay(trace)


comm_lists = st.lists(
    st.builds(
        CommRecord,
        time=times,
        cid=st.integers(min_value=0, max_value=4),
        action=st.sampled_from(ACTIONS),
    ),
    max_size=100,
)


@settings(max_examples=200, deadline=None)
@given(comms=comm_lists)
def test_incremental_ccs_tracker_equals_batch_extraction(comms):
    trace = Trace(comms)
    tracker = CCSTracker(SPEC)
    online_dead = []
    for record in comms:
        verdict = tracker.observe(record.cid, record.action, record.time)
        if verdict is not None:
            online_dead.append(verdict.cid)
    # Verdicts agree with the batch S_CID extraction + judgement.
    assert tracker.verdicts() == SPEC.judge_trace(trace)
    assert tracker.cids() == trace.cids()
    for cid in trace.cids():
        assert tracker.sequence(cid) == trace.comm_sequence(cid)
    # The online interruption hook fired exactly once per finally
    # interrupted segment (prefix-closure: dead is irrevocable).
    batch_dead = [v.cid for v in SPEC.judge_trace(trace) if v.interrupted]
    assert sorted(online_dead) == sorted(batch_dead)
    # Counters agree with the batch classification.
    verdicts = SPEC.judge_trace(trace)
    assert tracker.completed == sum(1 for v in verdicts if v.complete)
    assert tracker.interrupted == len(batch_dead)
    assert tracker.open_count == sum(1 for v in verdicts if v.in_progress)
    assert tracker.segments_seen == len(verdicts)
