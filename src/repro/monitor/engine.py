"""The decision engine: periodic rule evaluation → adaptation requests.

Bridges monitoring (sensors + rules) to process management (the
adaptation manager).  On each evaluation it fires at most one rule — the
highest-priority tripped one — and only when the manager is idle and the
target differs from the current committed configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.model import Configuration
from repro.errors import NoSafePathError, UnsafeConfigurationError
from repro.monitor.rules import AdaptationRule
from repro.protocol.manager import ManagerState
from repro.sim.cluster import AdaptationCluster


@dataclass
class Decision:
    """One fired rule, for audit logs and tests."""

    time: float
    rule: str
    target: Configuration
    accepted: bool
    detail: str = ""


class DecisionEngine:
    """Evaluates rules and issues adaptation requests."""

    def __init__(self, rules: Sequence[AdaptationRule]):
        self.rules: List[AdaptationRule] = list(rules)
        self.decisions: List[Decision] = []

    def evaluate(
        self,
        now: float,
        current: Configuration,
        request: Callable[[Configuration], None],
        busy: bool = False,
    ) -> Optional[Decision]:
        """One evaluation round.

        Args:
            now: current time (simulated or wall).
            current: the committed configuration.
            request: callback that starts the adaptation (manager entry).
            busy: True while an adaptation is already in flight — tripped
                rules are recorded but not fired.
        """
        tripped = [rule for rule in self.rules if rule.evaluate(now)]
        if not tripped:
            return None
        tripped.sort(key=lambda rule: (-rule.priority, rule.name))
        rule = tripped[0]
        if busy:
            decision = Decision(now, rule.name, rule.target, False, "manager busy")
        elif rule.target == current:
            decision = Decision(now, rule.name, rule.target, False, "already at target")
        else:
            try:
                request(rule.target)
            except (NoSafePathError, UnsafeConfigurationError) as exc:
                decision = Decision(now, rule.name, rule.target, False, str(exc))
            else:
                rule.mark_fired(now)
                decision = Decision(now, rule.name, rule.target, True)
        self.decisions.append(decision)
        return decision

    # -- simulator integration -------------------------------------------------------
    def attach_to(self, cluster: AdaptationCluster, period: float = 10.0) -> None:
        """Schedule periodic evaluation on a simulated cluster."""

        def tick() -> None:
            manager = cluster.manager
            busy = manager.machine.state != ManagerState.RUNNING or (
                manager.outcome is None and manager.machine.plan is not None
            )
            self.evaluate(
                cluster.sim.now,
                manager.committed,
                manager.request_adaptation,
                busy=busy,
            )
            cluster.sim.schedule(period, tick)

        cluster.sim.schedule(period, tick)
