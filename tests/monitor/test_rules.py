"""Unit tests for thresholds and adaptation rules."""

import pytest

from repro.core.model import Configuration
from repro.monitor.rules import AdaptationRule, Threshold
from repro.monitor.sensors import GaugeSensor


class TestThreshold:
    def test_trips_above(self):
        t = Threshold(trip=5.0, direction="above")
        assert not t.check(4.0)
        assert t.check(6.0)

    def test_trips_below(self):
        t = Threshold(trip=5.0, direction="below")
        assert not t.check(6.0)
        assert t.check(4.0)

    def test_fires_once_until_rearmed(self):
        t = Threshold(trip=5.0)
        assert t.check(6.0)
        assert not t.check(7.0)  # still tripped, not re-armed
        assert not t.check(6.5)
        t.check(4.0)  # re-arm
        assert t.check(6.0)

    def test_hysteresis_band(self):
        t = Threshold(trip=5.0, rearm=3.0)
        assert t.check(6.0)
        t.check(4.0)   # inside the band: not re-armed
        assert not t.check(6.0)
        t.check(2.0)   # below rearm: re-armed
        assert t.check(6.0)

    def test_direction_validated(self):
        with pytest.raises(ValueError):
            Threshold(trip=1.0, direction="sideways")


class TestAdaptationRule:
    def make_rule(self, **kwargs):
        sensor = GaugeSensor("threat")
        rule = AdaptationRule(
            name="harden",
            sensor=sensor,
            threshold=Threshold(trip=0.5),
            target=Configuration(["X"]),
            **kwargs,
        )
        return sensor, rule

    def test_fires_when_tripped(self):
        sensor, rule = self.make_rule()
        sensor.set(0.9)
        assert rule.evaluate(now=0.0)

    def test_silent_below(self):
        sensor, rule = self.make_rule()
        sensor.set(0.1)
        assert not rule.evaluate(now=0.0)

    def test_cooldown(self):
        sensor, rule = self.make_rule(cooldown=100.0)
        sensor.set(0.9)
        assert rule.evaluate(now=0.0)
        rule.mark_fired(0.0)
        sensor.set(0.1)  # re-arm
        rule.evaluate(now=10.0)
        sensor.set(0.9)
        assert not rule.evaluate(now=50.0)  # cooling down
        assert rule.evaluate(now=150.0)

    def test_mark_fired_counts(self):
        _, rule = self.make_rule()
        rule.mark_fired(1.0)
        rule.mark_fired(2.0)
        assert rule.fired_count == 2
        assert rule.last_fired == 2.0
