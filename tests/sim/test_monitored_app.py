"""Integration: temporal-monitor-derived safe states drive the protocol."""

import pytest

from repro.apps.video.system import (
    paper_source,
    paper_target,
    video_actions,
    video_invariants,
    video_universe,
)
from repro.ltl import no_open_segments
from repro.safety import check_safe
from repro.sim import AdaptationCluster, MonitoredApp


@pytest.fixture
def rig():
    universe = video_universe()
    apps = {
        process: MonitoredApp(no_open_segments("begin", "end"))
        for process in universe.processes()
    }
    cluster = AdaptationCluster(
        universe, video_invariants(), video_actions(), paper_source(universe),
        apps=apps,
    )
    return cluster, apps


class TestMonitoredApp:
    def test_idle_processes_adapt_immediately(self, rig):
        cluster, apps = rig
        outcome = cluster.adapt_to(paper_target())
        assert outcome.succeeded
        check_safe(cluster.trace, cluster.invariants).raise_if_unsafe()

    def test_open_obligation_delays_reset(self, rig):
        cluster, apps = rig
        # The handheld is mid-segment when the adaptation begins...
        apps["handheld"].observe("begin")

        # ...and finishes it 30 time units in.
        cluster.sim.schedule(30.0, lambda: apps["handheld"].observe("end"))
        outcome = cluster.adapt_to(paper_target())
        assert outcome.succeeded
        # the first step (A2, on the handheld) could not commit before the
        # segment closed at t=30
        from repro.trace import ConfigCommitted

        commits = cluster.trace.of_type(ConfigCommitted)
        assert commits[1].time >= 30.0
        check_safe(cluster.trace, cluster.invariants).raise_if_unsafe()

    def test_never_closing_obligation_behaves_like_fail_to_reset(self, rig):
        from repro.protocol.failures import FailurePolicy

        universe = video_universe()
        apps = {
            process: MonitoredApp(no_open_segments())
            for process in universe.processes()
        }
        cluster = AdaptationCluster(
            universe, video_invariants(), video_actions(), paper_source(universe),
            apps=apps,
            policy=FailurePolicy(reset_timeout=50.0, retransmit_interval=15.0),
        )
        apps["handheld"].observe("start")  # never ends
        outcome = cluster.adapt_to(paper_target())
        assert outcome.status == "await_user"
        assert cluster.planner.space.is_safe(cluster.manager.committed)

    def test_observations_between_steps_are_fine(self, rig):
        cluster, apps = rig
        # traffic keeps flowing while no reset is pending
        for _ in range(5):
            apps["laptop"].observe("begin")
            apps["laptop"].observe("end")
        outcome = cluster.adapt_to(paper_target())
        assert outcome.succeeded
