"""Immutable AST for dependency-relationship predicates (paper §3.1).

Expressions are evaluated against a *configuration*: a set of component
names.  A component name evaluates to true iff it is in the configuration —
exactly the paper's rule "associate true to all components in a
configuration, and associate false to all components not in the
configuration".
"""

from __future__ import annotations

from typing import AbstractSet, FrozenSet, Iterable, Tuple


class Expr:
    """Base class for dependency-expression nodes.

    Subclasses are immutable and hashable; equality is structural.  The
    python operators ``&``, ``|``, ``^``, ``~`` and ``>>`` build compound
    expressions, so invariants can be written either as parsed strings or
    directly in code::

        Atom("E1") >> ((Atom("D1") | Atom("D2")) & Atom("D4"))
    """

    __slots__ = ()

    def __copy__(self) -> "Expr":
        return self  # immutable: sharing is safe

    def __deepcopy__(self, memo) -> "Expr":
        return self  # immutable: sharing is safe

    def evaluate(self, config: AbstractSet[str]) -> bool:
        """Return the truth value of this expression under *config*."""
        raise NotImplementedError

    def atoms(self) -> FrozenSet[str]:
        """Return the set of component names mentioned in this expression."""
        raise NotImplementedError

    # -- operator sugar ----------------------------------------------------
    def __and__(self, other: "Expr") -> "And":
        return And((self, other))

    def __or__(self, other: "Expr") -> "Or":
        return Or((self, other))

    def __xor__(self, other: "Expr") -> "Xor":
        return Xor((self, other))

    def __invert__(self) -> "Not":
        return Not(self)

    def __rshift__(self, other: "Expr") -> "Implies":
        return Implies(self, other)

    # Subclasses with operands implement __eq__/__hash__/__repr__.


class _Const(Expr):
    """Boolean constant (singletons :data:`TRUE` and :data:`FALSE`)."""

    __slots__ = ("value",)

    def __init__(self, value: bool):
        object.__setattr__(self, "value", value)

    def __setattr__(self, name, value):  # pragma: no cover - immutability
        raise AttributeError("Expr nodes are immutable")

    def evaluate(self, config: AbstractSet[str]) -> bool:
        return self.value

    def atoms(self) -> FrozenSet[str]:
        return frozenset()

    def __eq__(self, other) -> bool:
        return isinstance(other, _Const) and self.value == other.value

    def __hash__(self) -> int:
        return hash(("const", self.value))

    def __repr__(self) -> str:
        return "TRUE" if self.value else "FALSE"


TRUE = _Const(True)
FALSE = _Const(False)


class Atom(Expr):
    """Reference to a single component; true iff the component is present."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        if not name or not isinstance(name, str):
            raise ValueError(f"component name must be a non-empty string, got {name!r}")
        object.__setattr__(self, "name", name)

    def __setattr__(self, name, value):  # pragma: no cover - immutability
        raise AttributeError("Expr nodes are immutable")

    def evaluate(self, config: AbstractSet[str]) -> bool:
        return self.name in config

    def atoms(self) -> FrozenSet[str]:
        return frozenset((self.name,))

    def __eq__(self, other) -> bool:
        return isinstance(other, Atom) and self.name == other.name

    def __hash__(self) -> int:
        return hash(("atom", self.name))

    def __repr__(self) -> str:
        return f"Atom({self.name!r})"


class Not(Expr):
    """Logical negation."""

    __slots__ = ("operand",)

    def __init__(self, operand: Expr):
        _require_expr(operand)
        object.__setattr__(self, "operand", operand)

    def __setattr__(self, name, value):  # pragma: no cover - immutability
        raise AttributeError("Expr nodes are immutable")

    def evaluate(self, config: AbstractSet[str]) -> bool:
        return not self.operand.evaluate(config)

    def atoms(self) -> FrozenSet[str]:
        return self.operand.atoms()

    def __eq__(self, other) -> bool:
        return isinstance(other, Not) and self.operand == other.operand

    def __hash__(self) -> int:
        return hash(("not", self.operand))

    def __repr__(self) -> str:
        return f"Not({self.operand!r})"


class _Nary(Expr):
    """Shared implementation for n-ary connectives."""

    __slots__ = ("operands",)
    _tag = ""

    def __init__(self, operands: Iterable[Expr]):
        ops: Tuple[Expr, ...] = tuple(operands)
        if len(ops) < 2:
            raise ValueError(f"{type(self).__name__} needs at least two operands")
        for op in ops:
            _require_expr(op)
        object.__setattr__(self, "operands", ops)

    def __setattr__(self, name, value):  # pragma: no cover - immutability
        raise AttributeError("Expr nodes are immutable")

    def atoms(self) -> FrozenSet[str]:
        out: FrozenSet[str] = frozenset()
        for op in self.operands:
            out |= op.atoms()
        return out

    def __eq__(self, other) -> bool:
        return type(self) is type(other) and self.operands == other.operands

    def __hash__(self) -> int:
        return hash((self._tag, self.operands))

    def __repr__(self) -> str:
        inner = ", ".join(repr(op) for op in self.operands)
        return f"{type(self).__name__}(({inner}))"


class And(_Nary):
    """N-ary conjunction — the paper's "·" operator."""

    __slots__ = ()
    _tag = "and"

    def evaluate(self, config: AbstractSet[str]) -> bool:
        return all(op.evaluate(config) for op in self.operands)


class Or(_Nary):
    """N-ary (inclusive) disjunction — the paper's "∨" operator."""

    __slots__ = ()
    _tag = "or"

    def evaluate(self, config: AbstractSet[str]) -> bool:
        return any(op.evaluate(config) for op in self.operands)


class Xor(_Nary):
    """N-ary exclusive or — the paper's "⊕" operator.

    With more than two operands this is *parity* xor (true iff an odd
    number of operands are true), matching the algebraic reading of chained
    ⊕.  For "exactly one of these components", use :class:`OneOf`, which is
    what the paper's resource/security constraints mean.
    """

    __slots__ = ()
    _tag = "xor"

    def evaluate(self, config: AbstractSet[str]) -> bool:
        value = False
        for op in self.operands:
            value ^= op.evaluate(config)
        return value


class OneOf(_Nary):
    """Exactly one operand true — the paper's "exclusively select one" (⊗).

    Used for Table 1's resource constraint ``one_of(D1, D2, D3)`` and
    security constraint ``one_of(E1, E2)``.
    """

    __slots__ = ()
    _tag = "one_of"

    def evaluate(self, config: AbstractSet[str]) -> bool:
        count = 0
        for op in self.operands:
            if op.evaluate(config):
                count += 1
                if count > 1:
                    return False
        return count == 1


class Implies(Expr):
    """Dependency arrow ``A -> Cond`` (paper §3.1).

    "The correct functionality of A requires Cond": materially,
    ``(not A) or Cond``.  A dependency is trivially satisfied when the
    depending side is absent from the configuration.
    """

    __slots__ = ("antecedent", "consequent")

    def __init__(self, antecedent: Expr, consequent: Expr):
        _require_expr(antecedent)
        _require_expr(consequent)
        object.__setattr__(self, "antecedent", antecedent)
        object.__setattr__(self, "consequent", consequent)

    def __setattr__(self, name, value):  # pragma: no cover - immutability
        raise AttributeError("Expr nodes are immutable")

    def evaluate(self, config: AbstractSet[str]) -> bool:
        return (not self.antecedent.evaluate(config)) or self.consequent.evaluate(config)

    def atoms(self) -> FrozenSet[str]:
        return self.antecedent.atoms() | self.consequent.atoms()

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Implies)
            and self.antecedent == other.antecedent
            and self.consequent == other.consequent
        )

    def __hash__(self) -> int:
        return hash(("implies", self.antecedent, self.consequent))

    def __repr__(self) -> str:
        return f"Implies({self.antecedent!r}, {self.consequent!r})"


def _require_expr(value) -> None:
    if not isinstance(value, Expr):
        raise TypeError(f"expected Expr, got {type(value).__name__}: {value!r}")


# -- convenience constructors ----------------------------------------------

def all_of(*names: str) -> Expr:
    """Conjunction of component atoms; a structural invariant like ``A · B``."""
    exprs = [Atom(n) for n in names]
    if not exprs:
        return TRUE
    if len(exprs) == 1:
        return exprs[0]
    return And(exprs)


def any_of(*names: str) -> Expr:
    """Disjunction of component atoms."""
    exprs = [Atom(n) for n in names]
    if not exprs:
        return FALSE
    if len(exprs) == 1:
        return exprs[0]
    return Or(exprs)


def exactly_one(*names: str) -> Expr:
    """Exactly one of *names* present — the paper's ⊗ constraint."""
    exprs = [Atom(n) for n in names]
    if not exprs:
        return FALSE
    if len(exprs) == 1:
        return exprs[0]
    return OneOf(exprs)


def to_text(expr: Expr) -> str:
    """Render *expr* in the parser's surface syntax (parse/print round-trips).

    The output re-parses to a structurally equal expression, which the
    property tests rely on.
    """
    return _render(expr, 0)


# precedence levels: -> is 1, | is 2, ^ is 3, & is 4, ! is 5, atoms 6
def _render(expr: Expr, parent_level: int) -> str:
    if isinstance(expr, _Const):
        text, level = ("true" if expr.value else "false"), 6
    elif isinstance(expr, Atom):
        text, level = expr.name, 6
    elif isinstance(expr, Not):
        text, level = "!" + _render(expr.operand, 5), 5
    elif isinstance(expr, And):
        text, level = " & ".join(_render(op, 5) for op in expr.operands), 4
    elif isinstance(expr, Xor):
        text, level = " ^ ".join(_render(op, 4) for op in expr.operands), 3
    elif isinstance(expr, Or):
        text, level = " | ".join(_render(op, 3) for op in expr.operands), 2
    elif isinstance(expr, OneOf):
        inner = ", ".join(_render(op, 0) for op in expr.operands)
        text, level = f"one_of({inner})", 6
    elif isinstance(expr, Implies):
        # right-associative: render antecedent at a tighter level
        text = f"{_render(expr.antecedent, 2)} -> {_render(expr.consequent, 1)}"
        level = 1
    else:  # pragma: no cover - defensive
        raise TypeError(f"unknown Expr node {type(expr).__name__}")
    if level < parent_level:
        return f"({text})"
    return text
