"""Experiment S1 — the HTTP/JSON adaptation service under load.

PR 8 puts the sans-io control plane behind an asyncio HTTP front end;
this benchmark drives that server exactly the way a fleet manager would
— persistent connections, JSON bodies, repeated MAP requests — and
records the service-level numbers the ROADMAP cares about:

* **warm** throughput and latency at 1 / 64 / 512 concurrent
  connections: the same ``(source, target)`` request answered from the
  control plane's wire cache (one dict probe per request, straight off
  the event loop);
* **cold** throughput at 64 connections: every request a distinct
  never-planned pair, so each one pays request decoding, dispatch on the
  executor, a planner run, and wire-cache population.

Rows land in ``BENCH_http_service.json``.  Required shape: warm
throughput at 64 connections sustains ≥ 5,000 plans/sec on one core,
and the p99 warm latency at 64 connections stays under 100 ms.
"""

from __future__ import annotations

import asyncio
import json
import time
from pathlib import Path

from benchmarks.conftest import report
from repro.manifest import loads, video_manifest_text
from repro.serve import (
    ControlPlane,
    RegisterSpecRequest,
    ServerThread,
)

HTTP_JSON = Path(__file__).with_name("BENCH_http_service.json")

CONCURRENCY_LEVELS = (1, 64, 512)
WARM_REQUESTS = {1: 3000, 64: 8000, 512: 8000}
COLD_CONCURRENCY = 64
WARM_TARGET_PLANS_PER_SEC = 5000.0
WARM_TARGET_P99_MS = 100.0


def _request_bytes(payload: dict) -> bytes:
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    return (
        b"POST /v1/plan HTTP/1.1\r\n"
        b"Host: bench\r\n"
        b"Content-Type: application/json\r\n"
        b"Content-Length: " + str(len(body)).encode("ascii") + b"\r\n"
        b"\r\n" + body
    )


async def _worker(host, port, requests, latencies):
    reader, writer = await asyncio.open_connection(host, port)
    try:
        for wire in requests:
            start = time.perf_counter()
            writer.write(wire)
            await writer.drain()
            head = await reader.readuntil(b"\r\n\r\n")
            length = 0
            for line in head.split(b"\r\n"):
                if line.lower().startswith(b"content-length:"):
                    length = int(line.split(b":", 1)[1])
            body = await reader.readexactly(length)
            latencies.append(time.perf_counter() - start)
            assert body.startswith(b'{"')
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


async def _drive(address, request_list, concurrency):
    """Closed-loop load: *concurrency* connections splitting the list."""
    host, port = address
    shares = [request_list[i::concurrency] for i in range(concurrency)]
    latencies: list = []
    start = time.perf_counter()
    await asyncio.gather(
        *(_worker(host, port, share, latencies) for share in shares if share)
    )
    elapsed = time.perf_counter() - start
    return elapsed, latencies


def _percentile(values, fraction):
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


def _row(count, elapsed, latencies):
    return {
        "requests": count,
        "seconds": round(elapsed, 3),
        "plans_per_sec": round(count / elapsed, 1),
        "p50_ms": round(_percentile(latencies, 0.50) * 1000, 3),
        "p99_ms": round(_percentile(latencies, 0.99) * 1000, 3),
    }


def _cold_manifest(groups: int) -> str:
    """*groups* independent A/B component pairs: 3^groups safe configs.

    Per group the invariant is ``A | B`` and four unit-cost actions move
    between {A}, {B}, and {A, B}, so every ordered pair of safe configs
    is a distinct reachable planning problem — a dense cold workload.
    """
    components, invariants, actions = [], [], []
    for g in range(groups):
        components += [f"A{g} @ host{g}", f"B{g} @ host{g}"]
        invariants.append(f": A{g} | B{g}")
        actions += [
            f"INA{g} : +A{g} @ 1",
            f"OUTA{g} : -A{g} @ 1",
            f"INB{g} : +B{g} @ 1",
            f"OUTB{g} : -B{g} @ 1",
        ]
    return (
        "[components]\n" + "\n".join(components)
        + "\n\n[invariants]\n" + "\n".join(invariants)
        + "\n\n[actions]\n" + "\n".join(actions) + "\n"
    )


def _cold_pairs(manifest, total):
    """*total* distinct ordered safe-config pairs as bit-vector strings."""
    from repro.core.planner import AdaptationPlanner

    space = AdaptationPlanner(
        manifest.universe, manifest.invariants, manifest.actions
    ).space
    bits = [manifest.universe.to_bits(c) for c in space.enumerate()]
    pairs = []
    for i, source in enumerate(bits):
        for j, target in enumerate(bits):
            if i != j:
                pairs.append((source, target))
    # every pair beyond the first appearance would be warm, so cap at
    # the distinct count
    return pairs[: min(total, len(pairs))]


def test_http_service_throughput_and_latency():
    text = video_manifest_text()
    control = ControlPlane()
    digest = control.dispatch(RegisterSpecRequest(manifest=text)).digest

    warm_wire = _request_bytes(
        {"spec": digest, "source": "source", "target": "target"}
    )
    results: dict = {"warm": {}, "cold": {}}
    with ServerThread(
        control,
        host="127.0.0.1",
        port=0,
        max_inflight=64,
        queue_limit=4096,
    ) as server:
        # prime the wire cache so every measured warm request is a hit
        asyncio.run(_drive(server.address, [warm_wire], 1))

        for concurrency in CONCURRENCY_LEVELS:
            count = WARM_REQUESTS[concurrency]
            elapsed, latencies = asyncio.run(
                _drive(server.address, [warm_wire] * count, concurrency)
            )
            results["warm"][str(concurrency)] = _row(
                count, elapsed, latencies
            )

        cold_text = _cold_manifest(groups=4)
        cold_digest = control.dispatch(
            RegisterSpecRequest(manifest=cold_text)
        ).digest
        pairs = _cold_pairs(loads(cold_text), 4000)
        cold_wires = [
            _request_bytes({"spec": cold_digest, "source": a, "target": b})
            for a, b in pairs
        ]
        elapsed, latencies = asyncio.run(
            _drive(server.address, cold_wires, COLD_CONCURRENCY)
        )
        results["cold"][str(COLD_CONCURRENCY)] = _row(
            len(cold_wires), elapsed, latencies
        )
        results["server"] = server._server.server_stats()  # noqa: SLF001

    rows = ["mode  conns  plans/sec      p50 ms   p99 ms"]
    for mode in ("warm", "cold"):
        for conns, row in sorted(
            results[mode].items(), key=lambda kv: int(kv[0])
        ):
            rows.append(
                f"{mode:<5} {conns:>5}  {row['plans_per_sec']:>10,.0f}  "
                f"{row['p50_ms']:>8.3f} {row['p99_ms']:>8.3f}"
            )
    warm64 = results["warm"]["64"]
    report(
        "http_service",
        "\n".join(rows),
        data=results,
        json_path=HTTP_JSON,
        throughput=(warm64["requests"], warm64["seconds"]),
    )

    assert warm64["plans_per_sec"] >= WARM_TARGET_PLANS_PER_SEC, (
        f"warm HTTP throughput at 64 connections fell to "
        f"{warm64['plans_per_sec']:,.0f} plans/sec "
        f"(target {WARM_TARGET_PLANS_PER_SEC:,.0f})"
    )
    assert warm64["p99_ms"] <= WARM_TARGET_P99_MS
    assert results["server"]["rejected_overload"] == 0
