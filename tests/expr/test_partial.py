"""Tests for three-valued partial evaluation (backtracking's pruning oracle)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.expr import Atom, parse
from repro.expr.partial import evaluate_partial
from tests.expr.test_expr_properties import NAMES, exprs


class TestDeterminedCases:
    def test_atom(self):
        a = Atom("A")
        assert evaluate_partial(a, {"A"}, set()) is True
        assert evaluate_partial(a, set(), {"A"}) is False
        assert evaluate_partial(a, set(), set()) is None

    def test_and_short_circuit_on_false(self):
        expr = parse("A & B")
        assert evaluate_partial(expr, set(), {"A"}) is False  # B undecided

    def test_and_unknown_until_all_true(self):
        expr = parse("A & B")
        assert evaluate_partial(expr, {"A"}, set()) is None
        assert evaluate_partial(expr, {"A", "B"}, set()) is True

    def test_or_short_circuit_on_true(self):
        expr = parse("A | B")
        assert evaluate_partial(expr, {"B"}, set()) is True

    def test_not(self):
        expr = parse("!A")
        assert evaluate_partial(expr, set(), {"A"}) is True
        assert evaluate_partial(expr, set(), set()) is None

    def test_implies_vacuous_early(self):
        expr = parse("A -> B & C")
        assert evaluate_partial(expr, set(), {"A"}) is True  # B, C undecided
        # (B & C) is already False once B is false, so A→False with A true:
        assert evaluate_partial(expr, {"A"}, {"B"}) is False
        assert evaluate_partial(parse("A -> B"), {"A"}, {"B"}) is False

    def test_one_of_two_trues_is_false_early(self):
        expr = parse("one_of(A, B, C)")
        assert evaluate_partial(expr, {"A", "B"}, set()) is False  # C undecided

    def test_one_of_single_true_needs_rest_decided(self):
        expr = parse("one_of(A, B, C)")
        assert evaluate_partial(expr, {"A"}, {"B"}) is None
        assert evaluate_partial(expr, {"A"}, {"B", "C"}) is True

    def test_one_of_all_false(self):
        expr = parse("one_of(A, B)")
        assert evaluate_partial(expr, set(), {"A", "B"}) is False

    def test_xor_needs_all_operands(self):
        expr = parse("A ^ B")
        assert evaluate_partial(expr, {"A"}, set()) is None
        assert evaluate_partial(expr, {"A"}, {"B"}) is True


@given(exprs(), st.sets(st.sampled_from(NAMES)), st.sets(st.sampled_from(NAMES)))
@settings(max_examples=150, deadline=None)
def test_partial_is_sound(expr, present, absent):
    """If partial evaluation returns a value, every completion agrees."""
    absent = absent - present
    verdict = evaluate_partial(expr, present, absent)
    if verdict is None:
        return
    undecided = sorted(expr.atoms() - present - absent)
    for mask in range(1 << len(undecided)):
        extra = {undecided[i] for i in range(len(undecided)) if mask & (1 << i)}
        assert expr.evaluate(set(present) | extra) == verdict


@given(exprs(), st.sets(st.sampled_from(NAMES)))
@settings(max_examples=100, deadline=None)
def test_partial_is_complete_on_full_assignments(expr, config):
    """With every atom decided, partial evaluation equals evaluation."""
    atoms = expr.atoms()
    verdict = evaluate_partial(expr, config & atoms, atoms - config)
    assert verdict == expr.evaluate(config)
