"""Packet model for the video data plane.

Packets are immutable: filters produce transformed copies via
:func:`dataclasses.replace`, which keeps fan-out filters (FEC) and
buffering (blocked MetaSockets) free of aliasing bugs.

Besides ordinary data chunks there are two special kinds:

* ``marker`` — the in-band FLUSH marker a sender injects when its agent
  blocks; receivers use it to detect the global-safe drain condition
  (paper §3.2: "the receiver has received all the datagram packets that
  the sender has sent");
* ``parity`` — FEC parity packets carrying the XOR of a member group.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field, replace
from typing import Optional, Tuple


@dataclass(frozen=True)
class Packet:
    """One unit of the video stream.

    Attributes:
        seq: globally unique sequence number (the critical-communication
            identifier base for CCS bookkeeping).
        frame_id / chunk_index / chunk_count: reassembly coordinates.
        payload: current bytes (possibly encrypted and/or compressed).
        checksum: CRC-32 of the *plaintext, uncompressed* chunk — computed
            once at the source, verified at the sink.
        enc_scheme: identifier of the scheme the payload is currently
            encrypted under, or ``None`` for plaintext.
        enc_nonce: CBC nonce used at encryption time (the packet seq).
        compressed: whether the payload is currently compressed.
        kind: ``"data"``, ``"marker"``, or ``"parity"``.
        marker_key: the adaptation step key a marker announces.
        group / members: FEC group id and member sequence numbers.
    """

    seq: int
    frame_id: int = 0
    chunk_index: int = 0
    chunk_count: int = 1
    payload: bytes = b""
    checksum: int = 0
    enc_scheme: Optional[str] = None
    enc_nonce: int = 0
    compressed: bool = False
    kind: str = "data"
    marker_key: str = ""
    group: int = -1
    members: Tuple[int, ...] = ()
    # parity packets replicate each member's header fields so a lost
    # member can be reconstructed exactly (see repro.codecs.fec)
    member_headers: Tuple[tuple, ...] = ()
    # set on packets rebuilt by an FEC decoder (they were never received
    # over the wire; CCS bookkeeping needs to know)
    recovered: bool = False

    @property
    def is_data(self) -> bool:
        return self.kind == "data"

    @property
    def is_marker(self) -> bool:
        return self.kind == "marker"

    @property
    def is_parity(self) -> bool:
        return self.kind == "parity"

    def verify(self) -> bool:
        """True iff the payload matches the source checksum (data packets).

        Fails for payloads still encrypted/compressed — exactly the
        observable symptom of an interrupted critical communication
        segment.
        """
        if not self.is_data:
            return True
        if self.enc_scheme is not None or self.compressed:
            return False
        return zlib.crc32(self.payload) & 0xFFFFFFFF == self.checksum

    def with_payload(self, payload: bytes, **changes) -> "Packet":
        """Copy with a transformed payload (and any other field changes)."""
        return replace(self, payload=payload, **changes)


def data_packet(
    seq: int, frame_id: int, chunk_index: int, chunk_count: int, payload: bytes
) -> Packet:
    """Build a source data packet with its plaintext checksum."""
    return Packet(
        seq=seq,
        frame_id=frame_id,
        chunk_index=chunk_index,
        chunk_count=chunk_count,
        payload=payload,
        checksum=zlib.crc32(payload) & 0xFFFFFFFF,
    )


def marker_packet(seq: int, marker_key: str) -> Packet:
    """Build an in-band FLUSH marker for adaptation step *marker_key*."""
    return Packet(seq=seq, kind="marker", marker_key=marker_key)
