"""Machine-applicable fixes: span-anchored edits attached to diagnostics.

A :class:`Fix` is a described repair made of :class:`Edit` steps, each
anchored to a :class:`~repro.span.Span` in the manifest text.  The
analyzer attaches fixes to the diagnostics whose repair is mechanical
and safe — deleting a dead or dominated action, dropping an unused
component (including splicing its bit out of every bit-vector
configuration), removing duplicate declarations, and serializing a
racing action pair by appending a generated ``[conflicts]`` entry.

:func:`apply_edits` is the applier; :func:`fix_text` drives lint →
apply → re-lint to a fixed point, which is what makes ``repro lint
--fix`` idempotent: once the fixed point is reached, a second run finds
no applicable fixes and changes nothing.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass
from typing import Iterable, List, Optional, Set, Tuple

from repro.span import Span

#: bound on lint → fix → re-lint rounds in :func:`fix_text`; each round
#: strictly shrinks the set of fixable findings, so this is a backstop
MAX_FIX_PASSES = 8


@dataclass(frozen=True)
class Edit:
    """One span-anchored text edit.

    Applied by :func:`apply_edits` with three modes:

    * ``span.line`` beyond the last line — *insertion*: the replacement
      is appended as new lines at end of file;
    * empty replacement starting at column 1 — *line deletion*: physical
      lines ``span.line .. span.end_line`` are removed entirely;
    * otherwise — *splice*: columns ``[span.column, span.end_column)``
      of ``span.line`` are replaced (single-line edits).
    """

    span: Span
    replacement: str = ""


@dataclass(frozen=True)
class Fix:
    """A machine-applicable repair: what it does plus its edits."""

    description: str
    edits: Tuple[Edit, ...]


def delete_line_fix(
    description: str, span: Span, extra: Iterable[Edit] = ()
) -> Fix:
    """A fix deleting the whole physical line(s) under *span*."""
    lines = Edit(Span(span.line, 1, max(span.end_line, span.line), 1), "")
    return Fix(description, (lines,) + tuple(extra))


def append_fix(description: str, line_count: int, block: str) -> Fix:
    """A fix appending *block* after the last line of the manifest."""
    return Fix(description, (Edit(Span(line_count + 1, 1), block),))


def apply_edits(text: str, edits: Iterable[Edit]) -> str:
    """Apply *edits* to *text* (descending document order, dedup'd).

    Edits are applied bottom-up so earlier spans stay valid; a line
    already removed by a line-deletion edit absorbs any further edit
    targeting it.  Identical edits (the same span and replacement
    reported via two diagnostics) apply once.
    """
    had_newline = text.endswith("\n")
    lines = text.split("\n")
    if had_newline:
        lines = lines[:-1]
    total = len(lines)
    ordered = sorted(
        set(edits),
        key=lambda e: (e.span.line, e.span.column),
        reverse=True,
    )
    deleted: Set[int] = set()
    for edit in ordered:
        span = edit.span
        if span.line > total:
            block = edit.replacement.split("\n")
            while block and block[-1] == "":
                block.pop()
            lines.extend(block)
            continue
        if span.line in deleted:
            continue
        if edit.replacement == "" and span.column == 1:
            end = min(max(span.end_line, span.line), len(lines))
            deleted.update(range(span.line, end + 1))
            del lines[span.line - 1 : end]
            continue
        line = lines[span.line - 1]
        start = min(span.column - 1, len(line))
        if span.end_line == span.line and span.end_column >= span.column:
            stop = min(span.end_column - 1, len(line))
        else:
            stop = start
        lines[span.line - 1] = line[:start] + edit.replacement + line[stop:]
    out = "\n".join(lines)
    if had_newline and lines:
        out += "\n"
    return out


def apply_fixes(text: str, report) -> Tuple[str, int]:
    """Apply every fix attached to *report*'s diagnostics (one pass).

    Returns ``(new_text, fixes_applied)``; the count is the number of
    diagnostics that carried at least one fix.
    """
    fixes: List[Fix] = [
        fix for diagnostic in report for fix in diagnostic.fixes
    ]
    if not fixes:
        return text, 0
    edits = [edit for fix in fixes for edit in fix.edits]
    return apply_edits(text, edits), len(fixes)


def fix_text(
    text: str,
    path: Optional[str] = None,
    max_enum_components: Optional[int] = None,
    workers: Optional[int] = None,
) -> Tuple[str, int]:
    """Lint → fix → re-lint to a fixed point.

    Returns ``(fixed_text, total_fixes_applied)``.  Because the loop
    only stops when a lint pass yields no applicable fixes, running
    :func:`fix_text` on its own output is always a no-op — the
    idempotency guarantee behind ``repro lint --fix``.
    """
    from repro.lint import lint_text

    applied = 0
    for _ in range(MAX_FIX_PASSES):
        report = lint_text(
            text,
            path=path,
            max_enum_components=max_enum_components,
            workers=workers,
        )
        new_text, count = apply_fixes(text, report)
        if count == 0 or new_text == text:
            break
        applied += count
        text = new_text
    return text, applied


def unified_diff(before: str, after: str, path: Optional[str] = None) -> str:
    """A unified diff of a fix application (what ``--diff`` prints)."""
    label = path or "<manifest>"
    return "".join(
        difflib.unified_diff(
            before.splitlines(keepends=True),
            after.splitlines(keepends=True),
            fromfile=label,
            tofile=f"{label} (fixed)",
        )
    )
