"""Unit tests for the dependency-expression parser."""

import pytest

from repro.errors import ParseError
from repro.expr import And, Atom, Implies, Not, OneOf, Or, TRUE, FALSE, Xor, parse


class TestBasics:
    def test_single_atom(self):
        assert parse("E1") == Atom("E1")

    def test_atom_with_digits_dots_dashes(self):
        assert parse("mod.sub-1_x") == Atom("mod.sub-1_x")

    def test_constants(self):
        assert parse("true") == TRUE
        assert parse("false") == FALSE

    def test_whitespace_tolerated(self):
        assert parse("  A   &   B ") == And((Atom("A"), Atom("B")))


class TestOperators:
    def test_and_symbol_and_word(self):
        expected = And((Atom("A"), Atom("B")))
        assert parse("A & B") == expected
        assert parse("A and B") == expected

    def test_or_symbol_and_word(self):
        expected = Or((Atom("A"), Atom("B")))
        assert parse("A | B") == expected
        assert parse("A or B") == expected

    def test_xor_symbol_and_infix_word(self):
        expected = Xor((Atom("A"), Atom("B")))
        assert parse("A ^ B") == expected
        assert parse("A xor B") == expected

    def test_not(self):
        assert parse("!A") == Not(Atom("A"))
        assert parse("not A") == Not(Atom("A"))
        assert parse("!!A") == Not(Not(Atom("A")))

    def test_implies_both_arrows(self):
        expected = Implies(Atom("A"), Atom("B"))
        assert parse("A -> B") == expected
        assert parse("A => B") == expected
        assert parse("A implies B") == expected

    def test_chains_flatten(self):
        assert parse("A & B & C") == And((Atom("A"), Atom("B"), Atom("C")))
        assert parse("A | B | C") == Or((Atom("A"), Atom("B"), Atom("C")))

    def test_parenthesized_subexpression_not_flattened(self):
        assert parse("(A & B) & C") == And((And((Atom("A"), Atom("B"))), Atom("C")))


class TestPrecedence:
    def test_and_binds_tighter_than_or(self):
        assert parse("A | B & C") == Or((Atom("A"), And((Atom("B"), Atom("C")))))

    def test_xor_between_and_and_or(self):
        assert parse("A | B ^ C") == Or((Atom("A"), Xor((Atom("B"), Atom("C")))))
        assert parse("A ^ B & C") == Xor((Atom("A"), And((Atom("B"), Atom("C")))))

    def test_implies_loosest_and_right_associative(self):
        assert parse("A | B -> C") == Implies(Or((Atom("A"), Atom("B"))), Atom("C"))
        assert parse("A -> B -> C") == Implies(
            Atom("A"), Implies(Atom("B"), Atom("C"))
        )

    def test_not_binds_tightest(self):
        assert parse("!A & B") == And((Not(Atom("A")), Atom("B")))

    def test_parens_override(self):
        assert parse("(A | B) & C") == And((Or((Atom("A"), Atom("B"))), Atom("C")))


class TestFunctions:
    def test_one_of(self):
        assert parse("one_of(D1, D2, D3)") == OneOf(
            (Atom("D1"), Atom("D2"), Atom("D3"))
        )

    def test_xor_function(self):
        assert parse("xor(E1, E2)") == Xor((Atom("E1"), Atom("E2")))

    def test_single_argument_collapses(self):
        assert parse("one_of(A)") == Atom("A")

    def test_nested_expressions_as_arguments(self):
        expr = parse("one_of(A & B, C)")
        assert expr == OneOf((And((Atom("A"), Atom("B"))), Atom("C")))

    def test_paper_invariant_strings(self):
        expr = parse("E1 -> (D1 | D2) & D4")
        assert expr == Implies(
            Atom("E1"), And((Or((Atom("D1"), Atom("D2"))), Atom("D4")))
        )


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        ["", "   ", "A &", "& A", "A B", "(A", "A)", "one_of(", "A -> ", "A @ B",
         "one_of()", "A ,B"],
    )
    def test_malformed_inputs_raise(self, text):
        with pytest.raises(ParseError):
            parse(text)

    def test_error_carries_position(self):
        with pytest.raises(ParseError) as excinfo:
            parse("A @ B")
        assert excinfo.value.position is not None

    def test_non_string_rejected(self):
        with pytest.raises(TypeError):
            parse(42)  # type: ignore[arg-type]
