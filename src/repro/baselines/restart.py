"""Stop-the-world restart baseline.

The bluntest safe-ish strategy: block *every* process (participants or
not), swap the entire delta, hold for a restart period, then resume.
Dependency safety is trivial (one commit, straight to the target safe
configuration) and no in-action fires unblocked — but the entire stream
halts, and packets in flight when the world stopped are discarded, the
way a real restart tears down connections.  The benchmarks use it to
quantify what the safe-adaptation protocol's surgical blocking saves.
"""

from __future__ import annotations

from repro.baselines.common import (
    BaselineResult,
    apply_slice,
    commit,
    delta_action,
    record_block,
)
from repro.core.model import Configuration
from repro.sim.cluster import AdaptationCluster


class RestartSwap:
    """Block everything, swap everything, resume everything."""

    def __init__(
        self,
        cluster: AdaptationCluster,
        target: Configuration,
        at_time: float,
        restart_duration: float = 10.0,
    ):
        self.cluster = cluster
        self.target = target
        self.at_time = at_time
        self.restart_duration = restart_duration
        self.result = BaselineResult(strategy="restart")
        self.packets_discarded = 0

    def schedule(self) -> BaselineResult:
        source = self.cluster.live_configuration
        action = delta_action(source, self.target, action_id="restart-swap")
        hosts = [self.cluster.hosts[p] for p in sorted(self.cluster.hosts)]
        self.result.started_at = self.at_time

        def stop_world() -> None:
            for host in hosts:
                record_block(host, True)
                # Restarting tears down transport state: discard anything
                # buffered rather than replaying it through the new chains.
                app = host.app
                socket = getattr(app, "socket", None)
                if socket is not None and hasattr(socket, "_buffer"):
                    self.packets_discarded += len(socket._buffer)
                    socket._buffer.clear()
                setattr(app, "_restart_dropping", True)
            for host in hosts:
                apply_slice(host, action)
            self.result.swaps = len(hosts)
            commit(self.cluster, self.target, step_id="restart", action_id=action.action_id)

        def start_world() -> None:
            for host in hosts:
                app = host.app
                socket = getattr(app, "socket", None)
                # Anything that arrived during the blackout is part of the
                # torn-down session: discard before resuming.
                if socket is not None and hasattr(socket, "_buffer"):
                    self.packets_discarded += len(socket._buffer)
                    socket._buffer.clear()
                setattr(app, "_restart_dropping", False)
                record_block(host, False)
            self.result.finished_at = self.cluster.sim.now
            self.result.done = True

        self.cluster.sim.schedule(self.at_time, stop_world)
        self.cluster.sim.schedule(self.at_time + self.restart_duration, start_world)
        return self.result
