"""Discrete-event backend of the execution substrate.

This module wires the shared runtimes (:mod:`repro.exec.runtime`) to the
simulated network and clock: :class:`SimClock` and
:class:`SimTimerService` adapt the :class:`~repro.sim.kernel.Simulator`
to the substrate's :class:`~repro.exec.substrate.Clock` /
:class:`~repro.exec.substrate.TimerService` contracts, and the
:class:`~repro.sim.net.Network` *is* the substrate's transport.  All
effect interpretation and trace emission live in
:class:`~repro.exec.runtime.AgentRuntime` /
:class:`~repro.exec.runtime.ManagerRuntime`; the classes here only add
simulator wiring and keep their historical names.

:class:`AdaptationCluster` assembles a full system from
``(universe, invariants, actions)`` and runs adaptation requests end to
end, returning an :class:`AdaptationOutcome` and a checkable
:class:`~repro.trace.Trace`.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Mapping, Optional, Set

from repro.core.actions import ActionLibrary
from repro.core.invariants import InvariantSet
from repro.core.model import ComponentUniverse, Configuration
from repro.core.planner import AdaptationPlan, AdaptationPlanner
from repro.errors import SimulationError
from repro.exec.app import AppAdapter
from repro.exec.runtime import AdaptationOutcome, AgentRuntime, ManagerRuntime
from repro.protocol.failures import FailurePolicy
from repro.protocol.manager import FlushProvider, no_flush
from repro.sim.kernel import Simulator, TimerHandle
from repro.sim.net import DelayModel, LossModel, Network
from repro.trace import Trace

__all__ = [
    "AdaptationCluster",
    "AdaptationOutcome",
    "ManagerHost",
    "ProcessApp",
    "ProcessHost",
    "SimClock",
    "SimTimerService",
]


class SimClock:
    """Substrate clock over the simulator's virtual time."""

    def __init__(self, sim: Simulator):
        self._sim = sim

    def now(self) -> float:
        return self._sim.now


class SimTimerService:
    """Substrate timers over the simulator's event heap."""

    def __init__(self, sim: Simulator):
        self._sim = sim
        self._handles: Dict[str, TimerHandle] = {}

    def set_timer(self, name: str, delay: float, callback: Callable[[], None]) -> None:
        self.cancel_timer(name)

        def fire() -> None:
            self._handles.pop(name, None)
            callback()

        self._handles[name] = self._sim.schedule(delay, fire)

    def cancel_timer(self, name: str) -> None:
        handle = self._handles.pop(name, None)
        if handle is not None:
            handle.cancel()

    def cancel_all(self) -> None:
        handles, self._handles = list(self._handles.values()), {}
        for handle in handles:
            handle.cancel()


class ProcessApp(AppAdapter):
    """Application adapter for the simulated backend.

    Compatibility alias of :class:`repro.exec.app.AppAdapter`; simulator
    apps may additionally use ``self.host.sim`` (the event loop) and
    ``self.host.network`` (the simulated network).
    """

    host: "ProcessHost"


class ProcessHost(AgentRuntime):
    """One simulated process: agent machine + local components + app."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        trace: Trace,
        universe: ComponentUniverse,
        process_id: str,
        components: Iterable[str],
        app: Optional[AppAdapter] = None,
        manager_id: str = "manager",
    ):
        self.sim = sim
        self.network = network
        super().__init__(
            process_id,
            universe,
            components,
            clock=SimClock(sim),
            transport=network,
            timers=SimTimerService(sim),
            trace=trace,
            app=app or ProcessApp(),
            manager_id=manager_id,
            error=SimulationError,
        )
        network.register(process_id, self.on_envelope)


class ManagerHost(ManagerRuntime):
    """The adaptation manager process on the simulator."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        trace: Trace,
        planner: AdaptationPlanner,
        initial_config: Configuration,
        policy: Optional[FailurePolicy] = None,
        flush_provider: FlushProvider = no_flush,
        manager_id: str = "manager",
        replan_k: int = 8,
    ):
        self.sim = sim
        self.network = network
        super().__init__(
            planner,
            initial_config,
            clock=SimClock(sim),
            transport=network,
            timers=SimTimerService(sim),
            trace=trace,
            policy=policy,
            flush_provider=flush_provider,
            manager_id=manager_id,
            replan_k=replan_k,
            error=SimulationError,
        )
        network.register(manager_id, self.on_envelope)


class AdaptationCluster:
    """A complete simulated adaptive system: manager + per-process agents.

    Builds one :class:`ProcessHost` per distinct process in the universe,
    assigns each the local slice of ``initial_config``, and exposes
    :meth:`adapt_to` for end-to-end runs.
    """

    def __init__(
        self,
        universe: ComponentUniverse,
        invariants: InvariantSet,
        actions: ActionLibrary,
        initial_config: Configuration,
        *,
        seed: int = 0,
        apps: Optional[Mapping[str, AppAdapter]] = None,
        policy: Optional[FailurePolicy] = None,
        flush_provider: FlushProvider = no_flush,
        default_delay: Optional[DelayModel] = None,
        default_loss: Optional[LossModel] = None,
        replan_k: int = 8,
        bus=None,
        planner: Optional[AdaptationPlanner] = None,
    ):
        self.universe = universe
        self.invariants = invariants
        self.actions = actions
        self.sim = Simulator(seed=seed)
        self.network = Network(self.sim, default_delay=default_delay, default_loss=default_loss)
        # With an observation bus, every record any host appends is
        # published at emission time (streaming checking/enforcement).
        self.trace = Trace(bus=bus)
        # An injected planner (e.g. a PlanningService-shared one) brings
        # its warm space/SAG/SPT caches; by default each cluster owns a
        # private planner, as before.
        self.planner = planner or AdaptationPlanner(universe, invariants, actions)
        self.planner.space.require_safe(initial_config, role="initial configuration")
        apps = dict(apps or {})
        self.hosts: Dict[str, ProcessHost] = {}
        for process_id in universe.processes():
            local = {
                name for name in initial_config.members
                if universe.process_of(name) == process_id
            }
            self.hosts[process_id] = ProcessHost(
                sim=self.sim,
                network=self.network,
                trace=self.trace,
                universe=universe,
                process_id=process_id,
                components=local,
                app=apps.pop(process_id, None),
            )
        if apps:
            raise SimulationError(f"apps supplied for unknown processes: {sorted(apps)}")
        self.manager = ManagerHost(
            sim=self.sim,
            network=self.network,
            trace=self.trace,
            planner=self.planner,
            initial_config=initial_config,
            policy=policy,
            flush_provider=flush_provider,
            replan_k=replan_k,
        )

    def start_apps(self) -> None:
        for host in self.hosts.values():
            host.app.start()

    @property
    def live_configuration(self) -> Configuration:
        """Union of every host's local component slice (the ground truth)."""
        members: Set[str] = set()
        for host in self.hosts.values():
            members |= host.components
        return Configuration(members)

    def adapt_to(
        self,
        target: Configuration,
        until: float = 1_000_000.0,
        max_events: int = 2_000_000,
    ) -> AdaptationOutcome:
        """Run one adaptation request to a terminal outcome."""
        self.manager.request_adaptation(target)
        self.sim.run(until=until, max_events=max_events, stop_when=lambda: self.manager.done)
        if self.manager.outcome is None:
            raise SimulationError(
                f"adaptation did not terminate by t={until} "
                f"(manager state {self.manager.machine.state.value})"
            )
        return self.manager.outcome

    def run_plan(
        self,
        plan: AdaptationPlan,
        until: float = 1_000_000.0,
        max_events: int = 2_000_000,
    ) -> AdaptationOutcome:
        """Execute a specific pre-computed plan (e.g. a deliberate alternate)."""
        self.manager.start_plan(plan)
        self.sim.run(until=until, max_events=max_events, stop_when=lambda: self.manager.done)
        if self.manager.outcome is None:
            raise SimulationError("plan execution did not terminate")
        return self.manager.outcome
