"""Backend-agnostic agent/manager runtimes: the one effect interpreter.

The sans-io protocol machines (:mod:`repro.protocol`) return effects;
*somebody* has to carry them out.  This module is that somebody — the
single place in the library where protocol :class:`~repro.protocol.effects.Effect`
objects are interpreted and :class:`~repro.trace.Trace` records emitted.
Deployment backends (discrete-event simulator, threaded runtime,
asyncio) only supply the :class:`~repro.exec.substrate.Clock`,
:class:`~repro.exec.substrate.Transport`, and
:class:`~repro.exec.substrate.TimerService` services plus their own
receive-loop wiring; they never touch an effect directly.

* :class:`AgentRuntime` — one adaptive process: agent machine, local
  component slice, application adapter, blocking gate.
* :class:`ManagerRuntime` — the adaptation manager: manager machine,
  planner, committed configuration, terminal outcome.
* :func:`resolve_replan` — the shared §4.4 failure-handling cascade
  (retry → alternate path → rollback → user), used by every backend.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Iterable, List, Optional, Set, Type

from repro.core.actions import AdaptiveAction
from repro.core.model import ComponentUniverse, Configuration
from repro.core.planner import AdaptationPlan, AdaptationPlanner
from repro.errors import (
    ExecutionError,
    NoSafePathError,
    ReproError,
    UnsafeConfigurationError,
)
from repro.exec.app import AppAdapter
from repro.exec.substrate import Clock, NullLock, TimerService, Transport
from repro.protocol.agent import AgentMachine
from repro.protocol.effects import (
    AbortReset,
    AdaptationAborted,
    AdaptationComplete,
    AwaitUser,
    BlockProcess,
    CancelTimer,
    Effect,
    ExecuteInAction,
    ExecutePostAction,
    RequestReplan,
    ResumeProcess,
    Send,
    SetTimer,
    StartReset,
    StepCommitted,
    StepRolledBack,
    UndoInAction,
)
from repro.protocol.failures import FailurePolicy, ReplanKind
from repro.protocol.manager import FlushProvider, ManagerMachine, no_flush
from repro.protocol.messages import Envelope, FlushRequest
from repro.trace import (
    AdaptationApplied,
    BlockRecord,
    ConfigCommitted,
    NoteRecord,
    RollbackRecord,
    Trace,
)


@dataclass
class AdaptationOutcome:
    """Terminal result of one adaptation request."""

    status: str  # "complete" | "aborted" | "await_user"
    configuration: Configuration
    reason: str = ""
    steps_committed: int = 0
    steps_rolled_back: int = 0
    started_at: float = 0.0
    finished_at: float = 0.0

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at

    @property
    def succeeded(self) -> bool:
        return self.status == "complete"


class AgentRuntime:
    """One adaptive process: agent machine + local components + app.

    The runtime interprets every agent-side effect (reset initiation,
    blocking, in-action execution, rollback, post-action, resume) and
    emits the corresponding trace records.  Backends deliver inbound
    envelopes via :meth:`on_envelope`; the application reports its local
    safe state via :meth:`local_safe` (from any thread — effect
    execution is serialized by *lock*).
    """

    def __init__(
        self,
        process_id: str,
        universe: ComponentUniverse,
        components: Iterable[str],
        *,
        clock: Clock,
        transport: Transport,
        timers: TimerService,
        trace: Trace,
        app: Optional[AppAdapter] = None,
        manager_id: str = "manager",
        lock=None,
        error: Type[ReproError] = ExecutionError,
    ):
        self.process_id = process_id
        self.universe = universe
        self.components: Set[str] = set(components)
        self.clock = clock
        self.transport = transport
        self.timers = timers
        self.trace = trace
        self._error = error
        self._lock = lock if lock is not None else NullLock()
        # set == full operation; apps' worker threads may wait on this.
        self.running_event = threading.Event()
        self.running_event.set()
        self.app = app or AppAdapter()
        self.app.attach(self)
        self.agent = AgentMachine(process_id, manager_id)

    def emit(self, record) -> None:
        """Publish one trace record (single agent-side emission point).

        Appending publishes to the trace's observation bus, so a raising
        enforcement observer aborts the effect being interpreted — with
        the violating record already recorded as evidence.
        """
        self.trace.append(record)

    # -- blocking gate -----------------------------------------------------------
    @property
    def blocked(self) -> bool:
        return not self.running_event.is_set()

    @blocked.setter
    def blocked(self, value: bool) -> None:
        if value:
            self.running_event.clear()
        else:
            self.running_event.set()

    # -- inbound ---------------------------------------------------------------
    def on_envelope(self, envelope: Envelope) -> None:
        """Backend callback: a coordination envelope arrived."""
        if isinstance(envelope.message, FlushRequest):
            # Out-of-band drain request: handled by the app, not the agent.
            self.app.inject_marker(envelope.message.step_key)
            return
        with self._lock:
            self.dispatch(self.agent.on_message(envelope.message))

    def local_safe(self, step_key: str) -> None:
        """App callback (any thread): local safe state reached."""
        with self._lock:
            self.dispatch(self.agent.on_local_safe(step_key))

    # -- local component slice ----------------------------------------------------
    def local_slice(self, names: Iterable[str]) -> Set[str]:
        return {
            name for name in names
            if self.universe.process_of(name) == self.process_id
        }

    def _apply_local(self, action: AdaptiveAction, inverse: bool) -> None:
        removes = self.local_slice(action.adds if inverse else action.removes)
        adds = self.local_slice(action.removes if inverse else action.adds)
        if not inverse:
            missing = removes - self.components
            if missing:
                raise self._error(
                    f"{self.process_id}: in-action {action.action_id} removes "
                    f"components not present locally: {sorted(missing)}"
                )
        self.components -= removes
        self.components |= adds

    # -- effect interpreter ---------------------------------------------------------
    def dispatch(self, effects: Iterable[Effect]) -> None:
        """Interpret agent effects (caller must hold the runtime's lock)."""
        queue: Deque[Effect] = deque(effects)
        while queue:
            effect = queue.popleft()
            if isinstance(effect, Send):
                self.transport.send(
                    Envelope(self.process_id, effect.destination, effect.message)
                )
            elif isinstance(effect, StartReset):
                self.app.begin_reset(
                    effect.step_key,
                    effect.action,
                    effect.inject_flush,
                    effect.await_flush,
                )
            elif isinstance(effect, AbortReset):
                self.app.abort_reset(effect.step_key)
            elif isinstance(effect, BlockProcess):
                self.running_event.clear()
                self.emit(
                    BlockRecord(
                        time=self.clock.now(), process=self.process_id, blocked=True
                    )
                )
                self.app.on_blocked()
            elif isinstance(effect, ResumeProcess):
                queue.extend(self._resume(effect.step_key))
            elif isinstance(effect, ExecuteInAction):
                self._apply_local(effect.action, inverse=False)
                self.app.apply_action(effect.action)
                self.emit(
                    AdaptationApplied(
                        time=self.clock.now(),
                        process=self.process_id,
                        action_id=effect.action.action_id,
                        removes=frozenset(self.local_slice(effect.action.removes)),
                        adds=frozenset(self.local_slice(effect.action.adds)),
                    )
                )
                queue.extend(self.agent.on_in_action_applied(effect.step_key))
            elif isinstance(effect, UndoInAction):
                self._apply_local(effect.action, inverse=True)
                self.app.undo_action(effect.action)
                self.emit(
                    RollbackRecord(
                        time=self.clock.now(),
                        process=self.process_id,
                        action_id=effect.action.action_id,
                    )
                )
                queue.extend(self.agent.on_undone(effect.step_key))
            elif isinstance(effect, ExecutePostAction):
                self.app.post_action(effect.action)
            else:  # pragma: no cover - defensive
                raise self._error(
                    f"{self.process_id}: unhandled agent effect {effect!r}"
                )

    def _resume(self, step_key: str) -> List[Effect]:
        latency = self.app.resume_latency()
        if latency > 0:
            self.timers.set_timer(
                f"resume:{step_key}", latency, lambda: self._finish_resume(step_key)
            )
            return []
        return self._resume_now(step_key)

    def _resume_now(self, step_key: str) -> List[Effect]:
        self.running_event.set()
        self.emit(
            BlockRecord(time=self.clock.now(), process=self.process_id, blocked=False)
        )
        self.app.on_resumed()
        return self.agent.on_resumed(step_key)

    def _finish_resume(self, step_key: str) -> None:
        with self._lock:
            self.dispatch(self._resume_now(step_key))


def resolve_replan(
    machine: ManagerMachine,
    planner: AdaptationPlanner,
    request: RequestReplan,
    replan_k: int = 8,
) -> List[Effect]:
    """The §4.4 re-planning cascade, shared by every backend.

    Picks the cheapest of the *replan_k* best plans to the requested
    destination (target for ``ALTERNATE_TO_TARGET``, original source for
    rollback) that avoids every already-failed ``(configuration, action)``
    edge; falls through to ``on_no_plan`` when planning fails or every
    candidate would retrace a failed edge.
    """
    if request.kind == ReplanKind.ALTERNATE_TO_TARGET:
        destination = machine.target
    else:
        destination = machine.original_source
    assert destination is not None
    if request.current == destination:
        empty = AdaptationPlan(request.current, destination, (), 0.0)
        return machine.on_new_plan(empty)
    failed = set(request.failed_edges)
    # Warm fast path: the MAP equals plan_k[0], so when the single best
    # plan avoids every failed edge the full Yen sweep is unnecessary —
    # and with a PlanningService-shared planner, plan() is usually a
    # cache/SPT hit while plan_k pays k spur searches.
    try:
        best = planner.plan(request.current, destination)
    except (NoSafePathError, UnsafeConfigurationError):
        return machine.on_no_plan()
    if all(
        (step.source, step.action.action_id) not in failed for step in best.steps
    ):
        return machine.on_new_plan(best)
    try:
        candidates = planner.plan_k(request.current, destination, replan_k)
    except (NoSafePathError, UnsafeConfigurationError):
        return machine.on_no_plan()
    for plan in candidates:
        if all(
            (step.source, step.action.action_id) not in failed
            for step in plan.steps
        ):
            return machine.on_new_plan(plan)
    return machine.on_no_plan()


class ManagerRuntime:
    """The adaptation manager on any backend.

    Owns the manager machine, the committed configuration, manager-side
    trace emission, timer bookkeeping, the §4.4 replan cascade, and the
    terminal :class:`AdaptationOutcome`.  Backends deliver envelopes via
    :meth:`on_envelope`; the timer service invokes :meth:`on_timeout`.
    *on_terminal* (if given) is called with the outcome when a run
    reaches a terminal state — e.g. to wake a blocked caller.
    """

    def __init__(
        self,
        planner: AdaptationPlanner,
        initial_config: Configuration,
        *,
        clock: Clock,
        transport: Transport,
        timers: TimerService,
        trace: Trace,
        policy: Optional[FailurePolicy] = None,
        flush_provider: FlushProvider = no_flush,
        manager_id: str = "manager",
        replan_k: int = 8,
        lock=None,
        error: Type[ReproError] = ExecutionError,
        on_terminal: Optional[Callable[[AdaptationOutcome], None]] = None,
    ):
        self.planner = planner
        self.clock = clock
        self.transport = transport
        self.timers = timers
        self.trace = trace
        self.manager_id = manager_id
        self.replan_k = replan_k
        self._error = error
        self._lock = lock if lock is not None else NullLock()
        self._on_terminal = on_terminal
        self.machine = ManagerMachine(
            planner.universe,
            policy=policy,
            flush_provider=flush_provider,
            manager_id=manager_id,
        )
        self.committed = initial_config
        self.outcome: Optional[AdaptationOutcome] = None
        self._started_at = 0.0
        self.emit(
            ConfigCommitted(
                time=clock.now(), configuration=initial_config.members, step_id="initial"
            )
        )

    def emit(self, record) -> None:
        """Publish one trace record (single manager-side emission point)."""
        self.trace.append(record)

    # -- entry point -----------------------------------------------------------
    def request_adaptation(self, target: Configuration) -> None:
        """Plan current→target and start executing (detection & setup + realization)."""
        plan = self.planner.plan(self.committed, target)
        self.start_plan(plan)

    def start_plan(self, plan: AdaptationPlan) -> None:
        """Execute a pre-computed plan (must start at the committed config)."""
        if plan.source != self.committed:
            raise self._error(
                f"plan starts at {plan.source.label()} but system is at "
                f"{self.committed.label()}"
            )
        with self._lock:
            self.outcome = None
            self._started_at = self.clock.now()
            self.dispatch(self.machine.start(plan))

    @property
    def done(self) -> bool:
        return self.outcome is not None

    # -- inbound ---------------------------------------------------------------
    def on_envelope(self, envelope: Envelope) -> None:
        """Backend callback: a coordination envelope arrived."""
        with self._lock:
            self.dispatch(self.machine.on_message(envelope.message))

    def on_timeout(self, name: str) -> None:
        """Timer-service callback: the named timer fired."""
        with self._lock:
            self.dispatch(self.machine.on_timeout(name))

    # -- effect interpreter -----------------------------------------------------
    def dispatch(self, effects: Iterable[Effect]) -> None:
        """Interpret manager effects (caller must hold the runtime's lock)."""
        queue: Deque[Effect] = deque(effects)
        while queue:
            effect = queue.popleft()
            if isinstance(effect, Send):
                self.transport.send(
                    Envelope(self.manager_id, effect.destination, effect.message)
                )
            elif isinstance(effect, SetTimer):
                self.timers.set_timer(
                    effect.name,
                    effect.delay,
                    lambda name=effect.name: self.on_timeout(name),
                )
            elif isinstance(effect, CancelTimer):
                self.timers.cancel_timer(effect.name)
            elif isinstance(effect, StepCommitted):
                self.committed = effect.step.target
                self.emit(
                    ConfigCommitted(
                        time=self.clock.now(),
                        configuration=effect.step.target.members,
                        step_id=effect.step_key,
                        action_id=effect.step.action.action_id,
                    )
                )
            elif isinstance(effect, StepRolledBack):
                self.emit(
                    NoteRecord(
                        time=self.clock.now(),
                        text=(
                            f"step {effect.step_key} "
                            f"({effect.step.action.action_id}) rolled back: "
                            f"{effect.reason}"
                        ),
                    )
                )
            elif isinstance(effect, RequestReplan):
                queue.extend(
                    resolve_replan(self.machine, self.planner, effect, self.replan_k)
                )
            elif isinstance(effect, AdaptationComplete):
                self._finish("complete", effect.configuration, "target reached")
            elif isinstance(effect, AdaptationAborted):
                self._finish("aborted", effect.configuration, effect.reason)
            elif isinstance(effect, AwaitUser):
                self._finish("await_user", effect.configuration, effect.reason)
            else:  # pragma: no cover - defensive
                raise self._error(f"manager: unhandled effect {effect!r}")

    def _finish(self, status: str, configuration: Configuration, reason: str) -> None:
        self.outcome = AdaptationOutcome(
            status=status,
            configuration=configuration,
            reason=reason,
            steps_committed=self.machine.steps_committed,
            steps_rolled_back=self.machine.steps_rolled_back,
            started_at=self._started_at,
            finished_at=self.clock.now(),
        )
        self.emit(
            NoteRecord(time=self.clock.now(), text=f"adaptation {status}: {reason}")
        )
        if self._on_terminal is not None:
            self._on_terminal(self.outcome)
