"""Exception hierarchy for the safe-adaptation library.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
applications embedding the library can catch one base class.  Sub-hierarchies
mirror the package layout: expression parsing, planning, protocol execution,
and simulation each have their own branch.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ExpressionError(ReproError):
    """Base class for dependency-expression errors."""


class ParseError(ExpressionError):
    """A dependency-expression string could not be parsed.

    Attributes:
        text: the offending source text.
        position: character offset of the failure, or ``None``.
        span: source location (:class:`repro.span.Span`) when the failure
            came from a manifest file, or ``None``.
    """

    def __init__(
        self,
        message: str,
        text: str = "",
        position: "int | None" = None,
        span=None,
    ):
        super().__init__(message)
        self.text = text
        self.position = position
        self.span = span

    def __str__(self) -> str:  # pragma: no cover - formatting helper
        base = super().__str__()
        if self.position is None:
            return base
        return f"{base} (at position {self.position} in {self.text!r})"


class UnknownComponentError(ReproError):
    """A component name was referenced that is not in the universe."""


class ModelError(ReproError):
    """Inconsistent model construction (duplicate components, bad hosts...)."""


class ConfigurationError(ReproError):
    """An operation received an invalid configuration."""


class ActionError(ReproError):
    """Base class for adaptive-action errors."""


class ActionNotApplicableError(ActionError):
    """An adaptive action was applied to a configuration it does not fit."""


class DuplicateActionError(ActionError):
    """Two actions with the same identifier were registered."""


class PlanningError(ReproError):
    """Base class for detection-and-setup phase failures."""


class NoSafePathError(PlanningError):
    """No safe adaptation path exists between source and target."""


class UnsafeConfigurationError(PlanningError):
    """A requested source/target configuration violates the invariants."""


class ProtocolError(ReproError):
    """Base class for realization-phase errors."""


class IllegalTransitionError(ProtocolError):
    """A state machine received an event not allowed in its current state."""


class AdaptationAbortedError(ProtocolError):
    """The adaptation was aborted and rolled back to a safe configuration."""


class UserInterventionRequired(ProtocolError):
    """All automatic failure-handling options were exhausted (paper §4.4).

    The manager retried the step, tried alternate paths to the target, and
    tried returning to the source configuration; all failed.  The system is
    parked at the last reached safe configuration and a human must decide.
    """

    def __init__(self, message: str, configuration=None):
        super().__init__(message)
        self.configuration = configuration


class SafetyViolationError(ReproError):
    """A trace failed the paper's safety definition (checker found evidence).

    When raised by the streaming checker (batch ``raise_if_unsafe`` or the
    online enforcement tripwire), ``violation`` carries the structured
    :class:`repro.safety.Violation` (kind, time, detail) that tripped it.
    """

    def __init__(self, message: str, violation=None):
        super().__init__(message)
        self.violation = violation


class ExecutionError(ReproError):
    """Execution-substrate failure (backend misuse, unhandled effect...).

    Backends narrow this to their own branch (:class:`SimulationError`
    for the discrete-event simulator, :class:`RuntimeHostError` for the
    threaded runtime) by passing ``error=`` to the shared runtimes in
    :mod:`repro.exec`.
    """


class SimulationError(ReproError):
    """Discrete-event simulator misuse (time travel, dead process...)."""


class RuntimeHostError(ReproError):
    """Threaded live-runtime failure (host died, queue closed...)."""
