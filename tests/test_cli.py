"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import main
from repro.manifest import video_manifest_text


@pytest.fixture
def manifest_path(tmp_path):
    path = tmp_path / "video.manifest"
    path.write_text(video_manifest_text(), encoding="utf-8")
    return str(path)


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestCheck:
    def test_valid_manifest(self, manifest_path):
        code, output = run_cli("check", manifest_path)
        assert code == 0
        assert "components: 7" in output
        assert "safe configurations: 8" in output
        assert "configuration source = {D1,D4,E1}: safe" in output

    def test_missing_file(self):
        code, _ = run_cli("check", "/nonexistent/x.manifest")
        assert code == 2

    def test_malformed_manifest(self, tmp_path):
        bad = tmp_path / "bad.manifest"
        bad.write_text("[components]\n", encoding="utf-8")
        code, _ = run_cli("check", str(bad))
        assert code == 2


class TestSafeConfigs:
    def test_prints_table1(self, manifest_path):
        code, output = run_cli("safe-configs", manifest_path)
        assert code == 0
        assert "0100101" in output and "1010010" in output
        assert output.count("\n") >= 9  # header + rule + 8 rows


class TestPlan:
    def test_map(self, manifest_path):
        code, output = run_cli(
            "plan", manifest_path, "--from", "source", "--to", "target"
        )
        assert code == 0
        assert "cost 50" in output

    def test_bits_and_members_accepted(self, manifest_path):
        code, output = run_cli(
            "plan", manifest_path, "--from", "0100101", "--to", "D3, D5, E2"
        )
        assert code == 0
        assert "cost 50" in output

    @pytest.mark.parametrize("method", ["lazy", "collaborative"])
    def test_alternate_methods(self, manifest_path, method):
        code, output = run_cli(
            "plan", manifest_path, "--from", "source", "--to", "target",
            "--method", method,
        )
        assert code == 0
        assert "cost 50" in output

    def test_k_best(self, manifest_path):
        code, output = run_cli(
            "plan", manifest_path, "--from", "source", "--to", "target", "--k", "3"
        )
        assert code == 0
        assert "3 best plans" in output

    def test_unsafe_endpoint_is_an_error(self, manifest_path):
        code, _ = run_cli(
            "plan", manifest_path, "--from", "E1", "--to", "target"
        )
        assert code == 2


class TestSag:
    def test_dot_output(self, manifest_path):
        code, output = run_cli("sag", manifest_path)
        assert code == 0
        assert output.startswith("digraph SAG")
        assert "n0100101" in output
        assert 'label="A17 (10)"' in output

    def test_highlighted_map(self, manifest_path):
        code, output = run_cli(
            "sag", manifest_path, "--highlight-map",
            "--from", "source", "--to", "target",
        )
        assert code == 0
        assert "color=red" in output

    def test_highlight_requires_endpoints(self, manifest_path):
        code, _ = run_cli("sag", manifest_path, "--highlight-map")
        assert code == 2


class TestSimulate:
    def test_clean_run(self, manifest_path):
        code, output = run_cli(
            "simulate", manifest_path, "--from", "source", "--to", "target"
        )
        assert code == 0
        assert "outcome: complete" in output
        assert "SAFE" in output

    def test_lossy_run_still_safe(self, manifest_path):
        code, output = run_cli(
            "simulate", manifest_path, "--from", "source", "--to", "target",
            "--loss", "0.15", "--seed", "3",
        )
        assert "SAFE" in output

    @pytest.mark.parametrize("backend", ("live", "aio"))
    def test_alternate_backends(self, manifest_path, backend):
        code, output = run_cli(
            "simulate", manifest_path, "--from", "source", "--to", "target",
            "--backend", backend, "--time-scale", "0.0005",
        )
        assert code == 0
        assert f"backend: {backend}" in output
        assert "outcome: complete" in output
        assert "SAFE" in output

    def test_loss_requires_sim_backend(self, manifest_path):
        code, _ = run_cli(
            "simulate", manifest_path, "--from", "source", "--to", "target",
            "--backend", "aio", "--loss", "0.1",
        )
        assert code == 2

    def test_save_trace_then_offline_check(self, manifest_path, tmp_path):
        trace_file = tmp_path / "run.jsonl"
        code, output = run_cli(
            "simulate", manifest_path, "--from", "source", "--to", "target",
            "--save-trace", str(trace_file),
        )
        assert code == 0
        assert trace_file.exists()
        code, output = run_cli(
            "trace", "check", str(trace_file), "--manifest", manifest_path
        )
        assert code == 0
        assert "SAFE" in output
        assert "committed configurations: 6" in output

    def test_timeline_rendering(self, manifest_path):
        code, output = run_cli(
            "simulate", manifest_path, "--from", "source", "--to", "target",
            "--timeline",
        )
        assert code == 0
        assert "commits" in output
        assert "in-action A2" in output
        assert "handheld" in output


class TestTraceCheck:
    def test_malformed_trace_is_an_error(self, manifest_path, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"type": "Martian", "time": 0.0}\n', encoding="utf-8")
        code, _ = run_cli("trace", "check", str(bad), "--manifest", manifest_path)
        assert code == 2

    def test_unsafe_trace_fails(self, manifest_path, tmp_path):
        unsafe = tmp_path / "unsafe.jsonl"
        # A committed configuration with no decoder for encoder E1.
        unsafe.write_text(
            '{"type": "ConfigCommitted", "time": 0.0, "configuration": ["E1"]}\n',
            encoding="utf-8",
        )
        code, output = run_cli(
            "trace", "check", str(unsafe), "--manifest", manifest_path
        )
        assert code == 1
        assert "UNSAFE" in output


class TestLint:
    FIXTURE = "tests/lint/fixtures/defective.manifest"

    def test_defective_fixture_fails_gate(self):
        code, output = run_cli("lint", self.FIXTURE, "--fail-on", "error")
        assert code == 1
        assert "SA105" in output and "SA403" in output

    def test_examples_pass_error_gate(self):
        code, output = run_cli(
            "lint", "examples/video.manifest", "examples/pipeline.manifest",
            "--fail-on", "error",
        )
        assert code == 0
        assert "0 error(s)" in output

    def test_fail_on_note_tightens_gate(self):
        code, _ = run_cli(
            "lint", "examples/pipeline.manifest", "--fail-on", "note"
        )
        assert code == 1

    def test_json_format(self):
        import json

        code, output = run_cli("lint", self.FIXTURE, "--format", "json")
        assert code == 1
        payload = json.loads(output)
        assert payload["summary"]["errors"] > 0

    def test_sarif_format(self):
        import json

        code, output = run_cli("lint", self.FIXTURE, "--format", "sarif")
        assert code == 1
        assert json.loads(output)["version"] == "2.1.0"

    def test_missing_file(self):
        code, _ = run_cli("lint", "/nonexistent/x.manifest")
        assert code == 2

    def test_multiple_files_merge(self):
        code, output = run_cli(
            "lint", self.FIXTURE, "examples/pipeline.manifest"
        )
        assert code == 1
        assert "defective.manifest" in output
        assert "pipeline.manifest" in output

    # examples/racing.manifest has warnings (SA601/SA603) and notes
    # (SA403) but no errors — each --fail-on level flips the gate
    # exactly where the documented exit-code contract says it should.
    @pytest.mark.parametrize(
        "fail_on, expected",
        [("error", 0), ("warning", 1), ("note", 1)],
    )
    def test_fail_on_matrix_racing(self, fail_on, expected):
        code, output = run_cli(
            "lint", "examples/racing.manifest", "--fail-on", fail_on
        )
        assert code == expected
        assert "SA601" in output and "SA603" in output
        assert "0 error(s), 3 warning(s), 5 note(s)" in output

    @pytest.mark.parametrize("fail_on", ["error", "warning", "note"])
    def test_fail_on_matrix_defective(self, fail_on):
        # errors trip the gate at every threshold
        code, output = run_cli(
            "lint", self.FIXTURE, "--fail-on", fail_on
        )
        assert code == 1
        assert "error:" in output

    @pytest.mark.parametrize("fail_on", ["error", "warning", "note"])
    def test_fail_on_matrix_clean(self, tmp_path, fail_on):
        clean = tmp_path / "clean.manifest"
        clean.write_text(
            "[components]\nB1 @ p1\nB2 @ p1\n"
            "[invariants]\nexclusive : one_of(B1, B2)\n"
            "[actions]\nswap : B1 -> B2 @ 1\nunswap : B2 -> B1 @ 1\n"
            "[configurations]\nstart = B1\ngoal = B2\n",
            encoding="utf-8",
        )
        code, output = run_cli(
            "lint", str(clean), "--fail-on", fail_on
        )
        assert code == 0
        assert "clean: 0 diagnostics" in output

    def test_check_reports_all_shape_errors_at_once(self, tmp_path, capsys):
        bad = tmp_path / "bad.manifest"
        bad.write_text(
            "[components]\nA\nA\n\n[invariants]\nghost : B\n",
            encoding="utf-8",
        )
        code, _ = run_cli("check", str(bad))
        assert code == 2
        stderr = capsys.readouterr().err
        assert "SA105" in stderr and "SA101" in stderr


class TestLintFix:
    RACY = (
        "[components]\nFW @ edge\nCA @ core\n"
        "[invariants]\nguarded : CA -> FW\n"
        "[actions]\ndrop_fw : -FW @ 5\ndrop_cache : -CA @ 5\n"
        "[configurations]\nbaseline = FW, CA\n"
    )

    @pytest.fixture
    def racy_path(self, tmp_path):
        path = tmp_path / "racy.manifest"
        path.write_text(self.RACY, encoding="utf-8")
        return str(path)

    def test_fix_rewrites_the_file_and_clears_the_gate(self, racy_path):
        code, _ = run_cli("lint", racy_path, "--fail-on", "warning")
        assert code == 1
        code, output = run_cli(
            "lint", racy_path, "--fix", "--fail-on", "warning"
        )
        assert code == 0
        assert "1 fix(es) applied" in output
        text = open(racy_path, encoding="utf-8").read()
        assert "[conflicts]" in text

    def test_fix_is_idempotent(self, racy_path):
        run_cli("lint", racy_path, "--fix")
        after_first = open(racy_path, encoding="utf-8").read()
        code, output = run_cli("lint", racy_path, "--fix")
        assert "0 fix(es) applied" in output
        assert open(racy_path, encoding="utf-8").read() == after_first

    def test_diff_prints_the_rewrite(self, racy_path):
        code, output = run_cli("lint", racy_path, "--fix", "--diff")
        assert f"--- {racy_path}" in output
        assert "+[conflicts]" in output
        assert "+drop_cache_drop_fw : drop_cache drop_fw" in output

    def test_diff_requires_fix(self, racy_path):
        code, _ = run_cli("lint", racy_path, "--diff")
        assert code == 2

    def test_clean_files_are_left_untouched(self, tmp_path):
        path = tmp_path / "clean.manifest"
        original = (
            "[components]\nA @ p1\nB @ p1\n"
            "[actions]\nswap : A -> B @ 1\nunswap : B -> A @ 1\n"
            "[configurations]\nstart = A\n"
        )
        path.write_text(original, encoding="utf-8")
        code, output = run_cli("lint", str(path), "--fix", "--diff")
        assert code == 0
        assert "0 fix(es) applied" in output
        assert open(path, encoding="utf-8").read() == original


class TestExampleManifest:
    def test_round_trips_through_check(self, tmp_path):
        code, text = run_cli("example-manifest")
        assert code == 0
        path = tmp_path / "emitted.manifest"
        path.write_text(text, encoding="utf-8")
        code, output = run_cli("check", str(path))
        assert code == 0
        assert "safe configurations: 8" in output


class TestLazyPlanCLI:
    """--lazy / --method and the automatic routing above the lazy cap."""

    @pytest.fixture
    def fleet_path(self):
        from pathlib import Path

        return str(Path(__file__).parent.parent / "examples" / "fleet30.manifest")

    def test_lazy_flag_matches_dijkstra(self, manifest_path):
        code, lazy_out = run_cli(
            "plan", manifest_path, "--from", "source", "--to", "target", "--lazy"
        )
        assert code == 0
        _, eager_out = run_cli(
            "plan", manifest_path, "--from", "source", "--to", "target",
            "--method", "dijkstra",
        )
        assert lazy_out == eager_out  # identical plan, identical rendering
        assert "cost 50" in lazy_out

    def test_method_lazy_spelling(self, manifest_path):
        code, output = run_cli(
            "plan", manifest_path, "--from", "source", "--to", "target",
            "--method", "lazy",
        )
        assert code == 0
        assert "cost 50" in output

    def test_oversized_manifest_routes_to_lazy_automatically(self, fleet_path):
        code, output = run_cli(
            "plan", fleet_path, "--from", "baseline", "--to", "canary"
        )
        assert code == 0
        assert "cost 25, 2 steps" in output

    def test_oversized_rejects_k_best(self, fleet_path):
        code, _ = run_cli(
            "plan", fleet_path, "--from", "baseline", "--to", "canary", "--k", "2"
        )
        assert code == 2

    def test_lazy_reports_unreachable(self, manifest_path, capsys):
        # the one-way video SAG: target cannot reach source
        code, _ = run_cli(
            "plan", manifest_path, "--from", "target", "--to", "source", "--lazy"
        )
        assert code == 2
        assert "no safe adaptation path" in capsys.readouterr().err

    def test_oversized_manifest_lints_clean(self, fleet_path):
        code, output = run_cli("lint", fleet_path, "--fail-on", "error")
        assert code == 0
        assert "SA307" in output


PROPERTIES_SECTION = """
[properties]
encoder specified : historically({one_of(E1, E2)})
no_e2 : historically(!E2)
"""


@pytest.fixture
def property_manifest(tmp_path):
    path = tmp_path / "props.manifest"
    path.write_text(video_manifest_text() + PROPERTIES_SECTION, encoding="utf-8")
    return str(path)


class TestVerifyPaths:
    def test_holding_property_exits_zero(self, property_manifest):
        code, output = run_cli(
            "verify-paths", property_manifest, "--from", "source", "--to", "target",
            "--property", "encoder specified",
        )
        assert code == 0
        assert "HOLDS" in output
        assert "eager enumeration" in output

    def test_violated_property_exits_one_with_counterexample(
        self, property_manifest
    ):
        code, output = run_cli(
            "verify-paths", property_manifest, "--from", "source", "--to", "target",
            "--property", "no_e2",
        )
        assert code == 1
        assert "VIOLATED" in output
        assert "counterexample (minimized to the first violating prefix)" in output

    def test_exists_quantifier(self, property_manifest):
        code, output = run_cli(
            "verify-paths", property_manifest, "--from", "source", "--to", "target",
            "--property", "encoder specified", "--quantifier", "exists",
        )
        assert code == 0
        assert "HOLDS" in output

    def test_lazy_budget_exhaustion_exits_three(self, property_manifest):
        code, output = run_cli(
            "verify-paths", property_manifest, "--from", "source", "--to", "target",
            "--property", "encoder specified", "--lazy", "--max-expansions", "1",
        )
        assert code == 3
        assert "INCONCLUSIVE" in output

    def test_unknown_property_is_an_error(self, property_manifest):
        code, _ = run_cli(
            "verify-paths", property_manifest, "--from", "source", "--to", "target",
            "--property", "nope",
        )
        assert code == 2

    def test_bad_k_is_an_error(self, property_manifest):
        code, _ = run_cli(
            "verify-paths", property_manifest, "--from", "source", "--to", "target",
            "--property", "no_e2", "--k", "0",
        )
        assert code == 2


class TestTraceCheckLtl:
    @pytest.fixture
    def trace_file(self, property_manifest, tmp_path):
        path = tmp_path / "run.jsonl"
        code, _ = run_cli(
            "simulate", property_manifest, "--from", "source", "--to", "target",
            "--save-trace", str(path),
        )
        assert code == 0
        return str(path)

    def test_holding_property(self, property_manifest, trace_file):
        code, output = run_cli(
            "trace", "check", trace_file, "--manifest", property_manifest,
            "--ltl", "encoder specified",
        )
        assert code == 0
        assert "property verdict: HOLDS" in output

    def test_violated_property_names_the_commit(
        self, property_manifest, trace_file
    ):
        code, output = run_cli(
            "trace", "check", trace_file, "--manifest", property_manifest,
            "--ltl", "no_e2",
        )
        assert code == 1
        assert "property verdict: VIOLATED at commit" in output

    def test_streaming_agrees_with_eager(self, property_manifest, trace_file):
        eager = run_cli(
            "trace", "check", trace_file, "--manifest", property_manifest,
            "--ltl", "no_e2",
        )
        streamed = run_cli(
            "trace", "check", trace_file, "--manifest", property_manifest,
            "--ltl", "no_e2", "--stream",
        )
        assert streamed == eager

    def test_unknown_property_is_an_error(self, property_manifest, trace_file):
        code, _ = run_cli(
            "trace", "check", trace_file, "--manifest", property_manifest,
            "--ltl", "nope",
        )
        assert code == 2
