"""Unit tests for collaborative-set decomposition (§7)."""

import pytest

from repro.bench.workloads import replicated_video_system
from repro.core.collaborative import UnionFind, collaborative_sets, project_invariants
from repro.core.planner import AdaptationPlanner


class TestUnionFind:
    def test_singletons(self):
        uf = UnionFind(["a", "b"])
        assert uf.find("a") != uf.find("b")

    def test_union(self):
        uf = UnionFind(["a", "b", "c"])
        uf.union("a", "b")
        assert uf.find("a") == uf.find("b")
        assert uf.find("c") != uf.find("a")

    def test_groups(self):
        uf = UnionFind(["a", "b", "c", "d"])
        uf.union("a", "b")
        uf.union("c", "d")
        groups = {frozenset(g) for g in uf.groups()}
        assert groups == {frozenset({"a", "b"}), frozenset({"c", "d"})}

    def test_transitive(self):
        uf = UnionFind(["a", "b", "c"])
        uf.union("a", "b")
        uf.union("b", "c")
        assert uf.find("a") == uf.find("c")


class TestCollaborativeSets:
    def test_video_system_is_one_set(self, universe, invariants, actions):
        groups = collaborative_sets(universe, invariants, actions)
        assert len(groups) == 1
        assert groups[0] == universe.names

    def test_replicated_groups_recovered(self):
        system = replicated_video_system(3)
        groups = collaborative_sets(system.universe, system.invariants, system.actions)
        assert len(groups) == 3
        for group in groups:
            suffixes = {name.split("@")[1] for name in group}
            assert len(suffixes) == 1  # no cross-group mixing
            assert len(group) == 7

    def test_untouched_components_are_singletons(self, invariants, actions):
        from repro.core.model import Component, ComponentUniverse

        extended = ComponentUniverse(
            [Component(n) for n in
             ("D5", "D4", "D3", "D2", "D1", "E2", "E1", "LONER")]
        )
        groups = collaborative_sets(extended, invariants, actions)
        assert frozenset({"LONER"}) in groups

    def test_projection_keeps_only_contained_invariants(self, universe, invariants, actions):
        system = replicated_video_system(2)
        groups = collaborative_sets(system.universe, system.invariants, system.actions)
        for group in groups:
            projected = project_invariants(system.invariants, group)
            assert len(projected) == 4  # each group keeps its own 4 invariants
            for inv in projected:
                assert inv.atoms() <= group


class TestCollaborativePlanning:
    def test_matches_monolithic_cost_on_paper_instance(self, planner, source, target):
        collab = planner.plan_collaborative(source, target)
        assert collab.total_cost == planner.plan(source, target).total_cost

    def test_replicated_system_planned_per_group(self):
        system = replicated_video_system(3)
        planner = AdaptationPlanner(system.universe, system.invariants, system.actions)
        plan = planner.plan_collaborative(system.source, system.target)
        # each group needs its own 5-step, 50-cost MAP
        assert plan.total_cost == 150.0
        assert len(plan) == 15
        # steps chain and end at the global target
        config = system.source
        for step in plan.steps:
            config = step.action.apply(config)
            assert system.invariants.all_hold(config)
        assert config == system.target

    def test_collaborative_faster_than_full_sag(self):
        # With two groups, the monolithic safe space already has 64
        # configurations; collaborative planning should never enumerate it.
        system = replicated_video_system(2)
        planner = AdaptationPlanner(system.universe, system.invariants, system.actions)
        plan = planner.plan_collaborative(system.source, system.target)
        assert plan.total_cost == 100.0
        assert planner._sag is None  # full SAG never built
