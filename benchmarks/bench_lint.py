"""Analyzer benchmark: full-pipeline lint latency on real manifests.

A development-time linter earns its keep only if it is fast enough to
run on every save and in every CI job.  This benchmark times the full
SA1xx–SA6xx pipeline (tolerant scan → well-formedness → compiled-mask
satisfiability → safe-space/SAG analysis → interference pair sweep →
contract checks) on:

* the paper's §5 video manifest (7 components, 17 actions);
* the seeded-defect fixture (every enumerable diagnostic code fires);
* a synthetic wide spec at the SA3xx enumeration cap boundary.

It also isolates the SA6xx interference stage's share of the wide run,
and measures the control plane's warm lint cache against a cold
dispatch — the one gated number (warm ≥ 10x cold): the warm path is a
dict probe returning precomputed bytes, so a miss of that factor means
the fast lane is broken, not that the runner is slow.  Headline numbers
land in ``benchmarks/BENCH_lint.json``.
"""

import time
from pathlib import Path

from benchmarks.conftest import report
from repro.lint import CODES, lint_text
from repro.manifest import video_manifest_text

LINT_JSON = Path(__file__).with_name("BENCH_lint.json")
FIXTURE = Path(__file__).resolve().parent.parent / (
    "tests/lint/fixtures/defective.manifest"
)


def wide_manifest(components: int = 18) -> str:
    """A chain-invariant spec near the SA3xx enumeration cap."""
    lines = ["[components]"]
    names = [f"C{i}" for i in range(components)]
    for index, name in enumerate(names):
        lines.append(f"{name} @ p{index % 3}")
    lines.append("[invariants]")
    lines.append(f"root : {names[0]}")
    for left, right in zip(names, names[1:]):
        lines.append(f"chain_{right} : {right} -> {left}")
    lines.append("[actions]")
    for index, name in enumerate(names[1:], start=1):
        lines.append(f"grow{index} : +{name} @ 1")
        lines.append(f"shrink{index} : -{name} @ 1")
    lines.append("[configurations]")
    lines.append(f"seed = {names[0]}")
    lines.append(f"full = {', '.join(names)}")
    return "\n".join(lines) + "\n"


def test_lint_video_manifest(benchmark):
    text = video_manifest_text()
    result = benchmark.pedantic(
        lambda: lint_text(text, path="video.manifest"), rounds=20, iterations=1
    )
    assert not result.errors
    stats = benchmark.stats.stats
    report(
        "lint latency: video manifest",
        f"mean {stats.mean * 1e3:.2f} ms over {len(result)} diagnostics",
        data={
            "mean_ms": round(stats.mean * 1e3, 3),
            "diagnostics": len(result),
        },
        json_path=LINT_JSON,
    )


def test_lint_defective_fixture(benchmark):
    text = FIXTURE.read_text(encoding="utf-8")
    result = benchmark.pedantic(
        lambda: lint_text(text, path="defective.manifest"),
        rounds=20,
        iterations=1,
    )
    # SA307/SA504/SA605 need the cap or an exhausted budget; SA601/SA603
    # need racing pairs that share a safe source, which the fixture's
    # invariant web forbids — examples/racing.manifest covers those.
    assert set(result.codes()) == set(CODES) - {
        "SA307", "SA504", "SA601", "SA603", "SA605"
    }
    stats = benchmark.stats.stats
    report(
        "lint latency: defective fixture (every enumerable code)",
        f"mean {stats.mean * 1e3:.2f} ms over {len(result)} diagnostics",
        data={
            "mean_ms": round(stats.mean * 1e3, 3),
            "diagnostics": len(result),
        },
        json_path=LINT_JSON,
    )


def test_lint_wide_manifest(benchmark):
    text = wide_manifest()
    result = benchmark.pedantic(
        lambda: lint_text(text, path="wide.manifest"), rounds=5, iterations=1
    )
    assert not result.errors
    stats = benchmark.stats.stats
    report(
        "lint latency: 18-component chain (2^18 safe-space sweep)",
        f"mean {stats.mean * 1e3:.2f} ms over {len(result)} diagnostics",
        data={
            "mean_ms": round(stats.mean * 1e3, 3),
            "diagnostics": len(result),
        },
        json_path=LINT_JSON,
    )


def _mean_seconds(fn, rounds: int = 5) -> float:
    fn()  # warm caches and imports outside the timed window
    start = time.perf_counter()
    for _ in range(rounds):
        fn()
    return (time.perf_counter() - start) / rounds


def test_interference_stage_share():
    """SA6xx pair-sweep time, isolated by differencing the pipeline.

    The wide chain has 34 actions (561 unordered pairs) over 19 safe
    configurations — a dense pair×source workload.  Stage time is the
    full pipeline minus the same pipeline with the interference stage
    stubbed out; recorded for trajectory, not gated.
    """
    import repro.lint.checks as checks_mod

    text = wide_manifest()
    full_s = _mean_seconds(lambda: lint_text(text, path="wide.manifest"))
    original = checks_mod.check_interference
    checks_mod.check_interference = lambda *args, **kwargs: None
    try:
        rest_s = _mean_seconds(lambda: lint_text(text, path="wide.manifest"))
    finally:
        checks_mod.check_interference = original
    stage_ms = max(0.0, (full_s - rest_s) * 1e3)
    share = stage_ms / (full_s * 1e3) if full_s else 0.0
    report(
        "lint SA6xx interference stage: 34 actions x 19 safe sources",
        f"stage {stage_ms:.2f} ms of {full_s * 1e3:.2f} ms total "
        f"({share:.0%})",
        data={
            "stage_ms": round(stage_ms, 3),
            "pipeline_ms": round(full_s * 1e3, 3),
            "share": round(share, 3),
        },
        json_path=LINT_JSON,
    )


def test_warm_lint_cache_speedup():
    """Warm ``/v1/lint`` wire bytes vs a cold dispatch — gated ≥ 10x.

    The warm path is a canonical-key dict probe over precomputed bytes;
    the cold path re-runs the analyzer and re-renders.  The 10x floor is
    intentionally far below the real gap (typically 100x+) so the gate
    only trips when the fast lane stops being hit at all.
    """
    from repro.serve import ControlPlane, to_wire
    from repro.serve.api import lint_request_from_json

    control = ControlPlane()
    payload = {"manifest": video_manifest_text()}

    cold_s = _mean_seconds(
        lambda: control.dispatch(lint_request_from_json(payload)), rounds=10
    )
    response = control.dispatch(lint_request_from_json(payload))
    wire = to_wire(response)
    control.lint_wire_store(payload, response, wire)

    assert control.lint_wire_fast(payload) == wire
    warm_s = _mean_seconds(
        lambda: control.lint_wire_fast(payload), rounds=200
    )
    speedup = cold_s / warm_s if warm_s else float("inf")
    report(
        "warm lint cache: /v1/lint wire bytes vs cold dispatch",
        f"cold {cold_s * 1e3:.2f} ms, warm {warm_s * 1e6:.1f} us = "
        f"{speedup:,.0f}x",
        data={
            "cold_ms": round(cold_s * 1e3, 3),
            "warm_us": round(warm_s * 1e6, 2),
            "speedup": round(speedup, 1),
        },
        json_path=LINT_JSON,
    )
    assert speedup >= 10.0, (
        f"warm lint cache only {speedup:.1f}x over cold dispatch"
    )
