"""The video system extended with adaptable FEC (a paper-style extension).

MetaSockets' filters include forward error correction (§2).  This module
extends the §5 system with an FEC triple — ``FE`` (parity encoder on the
server), ``FH``/``FL`` (reconstructors on the clients) — governed by its
own dependency invariants:

* ``FE → FH ∧ FL`` — parity is only useful if every client can
  reconstruct;
* ``FH ∨ FL → FE`` — reconstructors are pointless without the encoder.

Together they make FEC all-or-nothing, so the extended safe space is the
paper's eight configurations × {no-FEC, FEC} = 16, connected by insert/
remove triples.  The decision-engine example (`examples/adaptive_fec.py`)
closes the loop: a loss spike trips a monitor rule, the manager safely
inserts the FEC triple mid-stream, and the delivered-frame rate recovers.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.apps.video.system import (
    COMPONENT_ORDER,
    COMPONENT_PROCESSES,
    PAPER_SOURCE_BITS,
    PAPER_TARGET_BITS,
    video_actions,
    video_invariants,
)
from repro.core.actions import ActionLibrary, AdaptiveAction
from repro.core.invariants import DependencyInvariant, InvariantSet
from repro.core.model import ComponentUniverse, Configuration
from repro.core.planner import AdaptationPlanner

FEC_ENCODERS: Dict[str, str] = {"FE": "server"}
FEC_DECODERS: Dict[str, str] = {"FH": "handheld", "FL": "laptop"}
FEC_COMPONENTS: Tuple[str, ...] = ("FE", "FH", "FL")

EXTENDED_ORDER: Tuple[str, ...] = COMPONENT_ORDER + FEC_COMPONENTS

DEFAULT_FEC_K = 4


def extended_universe() -> ComponentUniverse:
    processes = dict(COMPONENT_PROCESSES)
    processes.update(FEC_ENCODERS)
    processes.update(FEC_DECODERS)
    return ComponentUniverse.from_names(EXTENDED_ORDER, processes)


def extended_invariants() -> InvariantSet:
    return video_invariants().extended(
        DependencyInvariant("FE -> FH & FL"),
        DependencyInvariant("FH | FL -> FE"),
    )


def extended_actions() -> ActionLibrary:
    actions = ActionLibrary(video_actions())
    actions.add(
        AdaptiveAction(
            "AF+",
            removes=frozenset(),
            adds=frozenset(FEC_COMPONENTS),
            cost=30.0,
            description="insert the FEC triple (FE, FH, FL)",
        )
    )
    actions.add(
        AdaptiveAction(
            "AF-",
            removes=frozenset(FEC_COMPONENTS),
            adds=frozenset(),
            cost=30.0,
            description="remove the FEC triple (FE, FH, FL)",
        )
    )
    return actions


def extended_planner() -> AdaptationPlanner:
    return AdaptationPlanner(extended_universe(), extended_invariants(), extended_actions())


def extended_source(with_fec: bool = False) -> Configuration:
    universe = extended_universe()
    members = set(universe.from_bits(PAPER_SOURCE_BITS + "000").members)
    if with_fec:
        members |= set(FEC_COMPONENTS)
    return Configuration(members)


def extended_target(with_fec: bool = False) -> Configuration:
    universe = extended_universe()
    members = set(universe.from_bits(PAPER_TARGET_BITS + "000").members)
    if with_fec:
        members |= set(FEC_COMPONENTS)
    return Configuration(members)
