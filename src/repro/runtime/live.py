"""The live adaptation system: threaded manager + hosts + demo pipeline app.

The threaded backend's system assembly.  :class:`LiveAdaptationSystem`
builds one shared :class:`~repro.exec.runtime.ManagerRuntime` (which owns
all manager-side effect interpretation) plus one
:class:`~repro.runtime.host.LiveAgentHost` per process; ``adapt_to``
blocks the calling thread until the adaptation reaches a terminal
outcome.  :class:`PipelineApp` is a ready-made application for examples
and tests: a worker thread pumps items through a live
:class:`~repro.components.FilterChain`, pausing while its host is blocked
and rebuilding the chain from the host's component set after in-actions.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Mapping, Optional

from repro.components.filters import Filter, FilterChain
from repro.core.actions import ActionLibrary, AdaptiveAction
from repro.core.invariants import InvariantSet
from repro.core.model import ComponentUniverse, Configuration
from repro.core.planner import AdaptationPlanner
from repro.errors import RuntimeHostError
from repro.exec.app import AppAdapter
from repro.exec.runtime import AdaptationOutcome, ManagerRuntime
from repro.exec.substrate import STOP, ThreadTimerService, WallClock
from repro.protocol.failures import FailurePolicy
from repro.protocol.manager import FlushProvider, ManagerMachine, no_flush
from repro.protocol.messages import Envelope
from repro.runtime.host import LiveAgentHost, LiveApp
from repro.runtime.transport import InMemoryTransport
from repro.trace import Trace


class LiveAdaptationSystem:
    """Threaded deployment of the safe-adaptation protocol.

    Args:
        time_scale: wall seconds per protocol time unit.  Policies speak
            the simulator's units (≈ milliseconds); the default maps one
            unit to 1 ms of real time.
    """

    def __init__(
        self,
        universe: ComponentUniverse,
        invariants: InvariantSet,
        actions: ActionLibrary,
        initial_config: Configuration,
        apps: Optional[Mapping[str, AppAdapter]] = None,
        policy: Optional[FailurePolicy] = None,
        flush_provider: FlushProvider = no_flush,
        time_scale: float = 0.001,
        replan_k: int = 8,
        manager_id: str = "manager",
        bus=None,
        planner: Optional[AdaptationPlanner] = None,
    ):
        self.universe = universe
        # An injected planner (e.g. a PlanningService-shared one) brings
        # its warm space/SAG/SPT caches with it.
        self.planner = planner or AdaptationPlanner(universe, invariants, actions)
        self.planner.space.require_safe(initial_config, role="initial configuration")
        self.transport = InMemoryTransport()
        # Bus publication happens under the trace lock, so observers see
        # one serialized record stream even across runtime threads.
        self.trace = Trace(bus=bus)
        self.time_scale = time_scale
        self.manager_id = manager_id
        self._clock = WallClock(time_scale)
        self._outcome_ready = threading.Event()
        self._lock = threading.RLock()
        self._queue = self.transport.register(manager_id)
        self._thread = threading.Thread(
            target=self._receive_loop, name="adaptation-manager", daemon=True
        )
        apps = dict(apps or {})
        self.hosts: Dict[str, LiveAgentHost] = {}
        for process_id in universe.processes():
            local = {
                name for name in initial_config.members
                if universe.process_of(name) == process_id
            }
            self.hosts[process_id] = LiveAgentHost(
                process_id,
                self.transport,
                universe,
                local,
                app=apps.pop(process_id, None),
                trace=self.trace,
                clock=self._clock,
                manager_id=manager_id,
                time_scale=time_scale,
            )
        if apps:
            raise RuntimeHostError(f"apps for unknown processes: {sorted(apps)}")
        self.manager = ManagerRuntime(
            self.planner,
            initial_config,
            clock=self._clock,
            transport=self.transport,
            timers=ThreadTimerService(time_scale),
            trace=self.trace,
            policy=policy,
            flush_provider=flush_provider,
            manager_id=manager_id,
            replan_k=replan_k,
            lock=self._lock,
            error=RuntimeHostError,
            on_terminal=lambda outcome: self._outcome_ready.set(),
        )

    # -- compatibility accessors ---------------------------------------------------
    @property
    def machine(self) -> ManagerMachine:
        return self.manager.machine

    @property
    def committed(self) -> Configuration:
        return self.manager.committed

    @property
    def outcome(self) -> Optional[AdaptationOutcome]:
        return self.manager.outcome

    def now(self) -> float:
        """Elapsed protocol time units since construction."""
        return self._clock.now()

    # -- lifecycle ----------------------------------------------------------------
    def start(self) -> None:
        self._thread.start()
        for host in self.hosts.values():
            host.start()

    def shutdown(self, timeout: float = 5.0) -> None:
        self.manager.timers.cancel_all()
        for host in self.hosts.values():
            host.stop(timeout=timeout)
        self.transport.stop_endpoint(self.manager_id)
        self._thread.join(timeout=timeout)
        if self._thread.is_alive():  # pragma: no cover - shutdown hygiene
            raise RuntimeHostError("manager thread did not stop")

    def __enter__(self) -> "LiveAdaptationSystem":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    # -- adaptation entry ------------------------------------------------------------
    def adapt_to(self, target: Configuration, timeout: float = 30.0) -> AdaptationOutcome:
        """Plan and execute current→target; blocks until terminal outcome."""
        with self._lock:
            plan = self.planner.plan(self.manager.committed, target)
            self._outcome_ready.clear()
            self.manager.start_plan(plan)
        if not self._outcome_ready.wait(timeout=timeout):
            raise RuntimeHostError(
                f"adaptation did not finish within {timeout}s "
                f"(manager state {self.manager.machine.state.value})"
            )
        assert self.manager.outcome is not None
        return self.manager.outcome

    # -- manager receive loop ----------------------------------------------------
    def _receive_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is STOP:
                return
            assert isinstance(item, Envelope)
            self.manager.on_envelope(item)


class PipelineApp(LiveApp):
    """A live pipeline: worker thread pushing items through a FilterChain.

    Args:
        filter_factory: maps a component name to a :class:`Filter`; the
            chain is rebuilt from the host's component set after every
            structural change.
        source: produces the next input item (defaults to a counter).
        sink: consumes chain outputs.
        interval: worker period in wall seconds.
    """

    def __init__(
        self,
        filter_factory: Callable[[str], Filter],
        sink: Callable[[object], None],
        source: Optional[Callable[[], object]] = None,
        interval: float = 0.002,
    ):
        self.filter_factory = filter_factory
        self.sink = sink
        self._counter = 0
        self.source = source or self._default_source
        self.interval = interval
        self.chain: Optional[FilterChain] = None
        self.items_processed = 0
        self._stop = threading.Event()
        self._worker: Optional[threading.Thread] = None
        self._chain_lock = threading.Lock()

    def _default_source(self) -> object:
        self._counter += 1
        return self._counter

    # -- lifecycle ----------------------------------------------------------------
    def start(self) -> None:
        self._rebuild_chain()
        self._worker = threading.Thread(
            target=self._run, name=f"pipeline-{self.host.process_id}", daemon=True
        )
        self._worker.start()

    def stop(self) -> None:
        self._stop.set()
        self.host.running_event.set()  # unblock a paused worker so it can exit
        if self._worker is not None:
            self._worker.join(timeout=5.0)

    def _run(self) -> None:
        while not self._stop.is_set():
            # Pause while the host is blocked (held in its safe state).
            self.host.running_event.wait(timeout=0.5)
            if self._stop.is_set():
                return
            if not self.host.running_event.is_set():
                continue
            with self._chain_lock:
                chain = self.chain
                if chain is not None:
                    for item in chain.push(self.source()):
                        self.sink(item)
                    self.items_processed += 1
            time.sleep(self.interval)

    # -- adaptation hooks ---------------------------------------------------------------
    def _rebuild_chain(self) -> None:
        with self._chain_lock:
            self.chain = FilterChain(
                f"{self.host.process_id}.chain",
                [self.filter_factory(name) for name in sorted(self.host.components)],
            )

    def begin_reset(
        self, step_key: str, action: AdaptiveAction, inject_flush: bool, await_flush: bool
    ) -> None:
        # The worker holds the chain lock for a whole item: acquiring it
        # here means "not mid-item", i.e. the local safe state.
        with self._chain_lock:
            pass
        self.host.local_safe(step_key)

    def apply_action(self, action: AdaptiveAction) -> None:
        self._rebuild_chain()

    def undo_action(self, action: AdaptiveAction) -> None:
        self._rebuild_chain()
