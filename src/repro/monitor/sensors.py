"""Sensors: named sources of scalar readings.

Instrumentation points feed sensors; the decision engine samples them on
its evaluation period.  All sensors are simulation-friendly (no wall
clock — time is passed in explicitly where it matters).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional, Tuple


class Sensor:
    """A named scalar reading.

    Sensors that receive pushed readings notify registered listeners via
    :meth:`on_update`, which is what lets the decision engine evaluate
    on data arrival instead of polling on a fixed period.
    """

    def __init__(self, name: str):
        if not name:
            raise ValueError("sensor name must be non-empty")
        self.name = name
        self._listeners: List[Callable[["Sensor"], None]] = []

    def on_update(self, listener: Callable[["Sensor"], None]) -> None:
        """Register *listener*, called with the sensor after each update."""
        self._listeners.append(listener)

    def _notify(self) -> None:
        for listener in self._listeners:
            listener(self)

    def sample(self) -> float:
        raise NotImplementedError


class GaugeSensor(Sensor):
    """Directly set value (e.g. an operator-controlled threat level)."""

    def __init__(self, name: str, value: float = 0.0):
        super().__init__(name)
        self.value = value

    def set(self, value: float) -> None:
        self.value = value
        self._notify()

    def sample(self) -> float:
        return self.value


class EwmaSensor(Sensor):
    """Exponentially weighted moving average over observed values."""

    def __init__(self, name: str, alpha: float = 0.3, initial: float = 0.0):
        super().__init__(name)
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self._value = initial

    def observe(self, value: float) -> None:
        self._value = self.alpha * value + (1.0 - self.alpha) * self._value
        self._notify()

    def sample(self) -> float:
        return self._value


class WindowRateSensor(Sensor):
    """Fraction of "bad" events over a sliding window (e.g. packet loss)."""

    def __init__(self, name: str, window: int = 100):
        super().__init__(name)
        if window <= 0:
            raise ValueError("window must be positive")
        self._events: Deque[bool] = deque(maxlen=window)

    def observe(self, bad: bool) -> None:
        self._events.append(bool(bad))
        self._notify()

    def sample(self) -> float:
        if not self._events:
            return 0.0
        return sum(self._events) / len(self._events)


class BatterySensor(Sensor):
    """Battery level draining linearly with (simulated) time.

    The handheld client of §5 is battery-constrained; examples use this
    to trigger a move to cheaper decoders as charge drops.
    """

    def __init__(
        self, name: str, capacity: float = 100.0, drain_per_unit: float = 0.1
    ):
        super().__init__(name)
        self.capacity = capacity
        self.drain_per_unit = drain_per_unit
        self._level = capacity
        self._last_time: Optional[float] = None

    def advance_to(self, now: float) -> None:
        if self._last_time is not None:
            elapsed = max(0.0, now - self._last_time)
            self._level = max(0.0, self._level - elapsed * self.drain_per_unit)
        self._last_time = now

    def sample(self) -> float:
        return self._level
