"""Output renderers for lint reports: human text, JSON, and SARIF 2.1.0.

The text form is the compiler-style ``file:line:col: CODE severity:
message`` stream.  JSON is a stable machine-readable dump for scripting.
SARIF follows the minimal static-analysis profile that code-review
platforms ingest for inline annotations: one run, one rule per SA code
(metadata straight from :data:`repro.lint.diagnostics.CODES`), one result
per diagnostic with ``relatedLocations`` for the secondary spans.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.lint.diagnostics import CODES, Diagnostic, LintReport, Related, Severity
from repro.lint.fixes import Fix

#: SARIF ``level`` per severity (SARIF has no "error < warning" ordering
#: of its own; ``note`` is its mildest level).
_SARIF_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.NOTE: "note",
}

TOOL_NAME = "repro-lint"


def render_text(report: LintReport, verbose: bool = False) -> str:
    """Compiler-style text: one (or more, with related) lines per finding."""
    lines: List[str] = [diagnostic.render() for diagnostic in report]
    if verbose:
        for reason in report.skipped:
            lines.append(f"note: {reason}")
    lines.append(report.summary())
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """Stable JSON dump (diagnostics in report order + summary counts)."""
    payload: Dict[str, Any] = {
        "tool": TOOL_NAME,
        "diagnostics": [_diagnostic_json(d) for d in report],
        "summary": {
            "errors": len(report.errors),
            "warnings": len(report.warnings),
            "notes": len(report.notes),
        },
        "skipped": list(report.skipped),
    }
    return json.dumps(payload, indent=2, sort_keys=False)


def _diagnostic_json(diagnostic: Diagnostic) -> Dict[str, Any]:
    return {
        "code": diagnostic.code,
        "severity": diagnostic.severity.label,
        "message": diagnostic.message,
        "path": diagnostic.path,
        "span": _span_json(diagnostic),
        "related": [
            {
                "message": rel.message,
                "path": rel.path or diagnostic.path,
                "span": _span_json(rel),
            }
            for rel in diagnostic.related
        ],
        "fixes": [_fix_json(fix) for fix in diagnostic.fixes],
    }


def _fix_json(fix: Fix) -> Dict[str, Any]:
    return {
        "description": fix.description,
        "edits": [
            {"span": _span_json(edit), "replacement": edit.replacement}
            for edit in fix.edits
        ],
    }


def _span_json(owner: "Diagnostic | Related") -> Dict[str, int]:
    span = owner.span
    return {
        "line": span.line,
        "column": span.column,
        "end_line": span.end_line,
        "end_column": span.end_column,
    }


def render_sarif(report: LintReport) -> str:
    """SARIF 2.1.0 (one run; rules from the code registry)."""
    used = {d.code for d in report}
    rules = [
        {
            "id": code,
            "shortDescription": {"text": summary},
            "defaultConfiguration": {"level": _SARIF_LEVELS[severity]},
        }
        for code, (severity, summary) in sorted(CODES.items())
        if code in used
    ]
    results = [_sarif_result(d) for d in report]
    document = {
        "version": "2.1.0",
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "informationUri": "https://example.invalid/repro",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2)


def _sarif_result(diagnostic: Diagnostic) -> Dict[str, Any]:
    result: Dict[str, Any] = {
        "ruleId": diagnostic.code,
        "level": _SARIF_LEVELS[diagnostic.severity],
        "message": {"text": diagnostic.message},
        "locations": [
            _sarif_location(diagnostic.path, diagnostic)
        ],
    }
    if diagnostic.related:
        result["relatedLocations"] = [
            {
                **_sarif_location(rel.path or diagnostic.path, rel),
                "message": {"text": rel.message},
            }
            for rel in diagnostic.related
        ]
    if diagnostic.fixes:
        result["fixes"] = [
            _sarif_fix(diagnostic.path, fix) for fix in diagnostic.fixes
        ]
    return result


def _sarif_fix(path: Optional[str], fix: Fix) -> Dict[str, Any]:
    replacements = []
    for edit in fix.edits:
        span = edit.span
        replacement: Dict[str, Any] = {
            "deletedRegion": {
                "startLine": span.line,
                "startColumn": span.column,
                "endLine": span.end_line,
                "endColumn": span.end_column,
            }
        }
        if edit.replacement:
            replacement["insertedContent"] = {"text": edit.replacement}
        replacements.append(replacement)
    return {
        "description": {"text": fix.description},
        "artifactChanges": [
            {
                "artifactLocation": {"uri": path or "manifest"},
                "replacements": replacements,
            }
        ],
    }


def _sarif_location(
    path: Optional[str], owner: "Diagnostic | Related"
) -> Dict[str, Any]:
    span = owner.span
    location: Dict[str, Any] = {
        "physicalLocation": {
            "region": {
                "startLine": span.line,
                "startColumn": span.column,
                "endLine": span.end_line,
                "endColumn": span.end_column,
            }
        }
    }
    if path:
        location["physicalLocation"]["artifactLocation"] = {"uri": path}
    return location
