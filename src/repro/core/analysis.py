"""Dependency impact analysis (paper §1).

"These dependency relationships enable analysis techniques to determine
which components are affected during a given adaptation, and consequently
the set of safe states in which dynamic adaptations can take place."

Given an invariant set and an adaptive action, this module computes:

* the invariants *at risk* — those mentioning any touched component, the
  only ones whose truth can change across the step;
* the *affected closure* — components reachable from the touched set
  through shared invariants (transitively): everything whose correct
  functionality the adaptation could influence;
* the *blast radius* — the processes hosting the affected closure, i.e.
  which parts of the distributed system an operator should watch.

The planner's correctness does not depend on this module (it re-checks
whole configurations); the analysis exists for tooling, reviews, and the
scoping optimizations of §7.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Tuple

from repro.core.actions import AdaptiveAction
from repro.core.invariants import Invariant, InvariantSet
from repro.core.model import ComponentUniverse


def invariants_at_risk(
    invariants: InvariantSet, action: AdaptiveAction
) -> Tuple[Invariant, ...]:
    """Invariants whose truth value can change across *action*.

    Exactly those mentioning a touched component — all other invariants
    evaluate identically before and after the delta.
    """
    touched = action.touched
    return tuple(inv for inv in invariants if inv.atoms() & touched)


def affected_components(
    invariants: InvariantSet, action: AdaptiveAction
) -> FrozenSet[str]:
    """The transitive closure of components coupled to the action.

    Start from the touched set; repeatedly add every component that shares
    an invariant with the current set.  The result bounds which components'
    *correct functionality* (paper §3.1) the adaptation can influence.
    """
    affected = set(action.touched)
    changed = True
    while changed:
        changed = False
        for invariant in invariants:
            atoms = invariant.atoms()
            if atoms & affected and not atoms <= affected:
                affected |= atoms
                changed = True
    return frozenset(affected)


def blast_radius(
    universe: ComponentUniverse,
    invariants: InvariantSet,
    action: AdaptiveAction,
) -> FrozenSet[str]:
    """Processes hosting the affected closure (restricted to the universe)."""
    names = affected_components(invariants, action) & universe.names
    return universe.processes_of(names)


def impact_report(
    universe: ComponentUniverse,
    invariants: InvariantSet,
    action: AdaptiveAction,
) -> str:
    """Human-readable impact summary for one action (tooling/reviews)."""
    at_risk = invariants_at_risk(invariants, action)
    closure = sorted(affected_components(invariants, action) & universe.names)
    processes = sorted(blast_radius(universe, invariants, action))
    participants = sorted(action.participants(universe))
    lines = [
        f"action {action.action_id}: {action.operation_text()}",
        f"  participants (perform in-actions): {', '.join(participants)}",
        f"  invariants at risk: "
        + (", ".join(inv.name for inv in at_risk) or "(none)"),
        f"  affected closure: {', '.join(closure)}",
        f"  blast radius (processes to watch): {', '.join(processes)}",
    ]
    return "\n".join(lines)
