"""Analyzer benchmark: full-pipeline lint latency on real manifests.

A development-time linter earns its keep only if it is fast enough to
run on every save and in every CI job.  This benchmark times the full
SA1xx–SA4xx pipeline (tolerant scan → well-formedness → compiled-mask
satisfiability → safe-space/SAG analysis → contract checks) on:

* the paper's §5 video manifest (7 components, 17 actions);
* the seeded-defect fixture (every diagnostic code fires);
* a synthetic wide spec at the SA3xx enumeration cap boundary.

Headline numbers land in ``benchmarks/BENCH_lint.json``.  The assertions
pin behaviour (diagnostic counts), not wall-clock — timings are recorded
for trajectory tracking, never gated on shared CI runners.
"""

from pathlib import Path

from benchmarks.conftest import report
from repro.lint import CODES, lint_text
from repro.manifest import video_manifest_text

LINT_JSON = Path(__file__).with_name("BENCH_lint.json")
FIXTURE = Path(__file__).resolve().parent.parent / (
    "tests/lint/fixtures/defective.manifest"
)


def wide_manifest(components: int = 18) -> str:
    """A chain-invariant spec near the SA3xx enumeration cap."""
    lines = ["[components]"]
    names = [f"C{i}" for i in range(components)]
    for index, name in enumerate(names):
        lines.append(f"{name} @ p{index % 3}")
    lines.append("[invariants]")
    lines.append(f"root : {names[0]}")
    for left, right in zip(names, names[1:]):
        lines.append(f"chain_{right} : {right} -> {left}")
    lines.append("[actions]")
    for index, name in enumerate(names[1:], start=1):
        lines.append(f"grow{index} : +{name} @ 1")
        lines.append(f"shrink{index} : -{name} @ 1")
    lines.append("[configurations]")
    lines.append(f"seed = {names[0]}")
    lines.append(f"full = {', '.join(names)}")
    return "\n".join(lines) + "\n"


def test_lint_video_manifest(benchmark):
    text = video_manifest_text()
    result = benchmark.pedantic(
        lambda: lint_text(text, path="video.manifest"), rounds=20, iterations=1
    )
    assert not result.errors
    stats = benchmark.stats.stats
    report(
        "lint latency: video manifest",
        f"mean {stats.mean * 1e3:.2f} ms over {len(result)} diagnostics",
        data={
            "mean_ms": round(stats.mean * 1e3, 3),
            "diagnostics": len(result),
        },
        json_path=LINT_JSON,
    )


def test_lint_defective_fixture(benchmark):
    text = FIXTURE.read_text(encoding="utf-8")
    result = benchmark.pedantic(
        lambda: lint_text(text, path="defective.manifest"),
        rounds=20,
        iterations=1,
    )
    assert set(result.codes()) == set(CODES) - {"SA307", "SA504"}
    stats = benchmark.stats.stats
    report(
        "lint latency: defective fixture (every enumerable code)",
        f"mean {stats.mean * 1e3:.2f} ms over {len(result)} diagnostics",
        data={
            "mean_ms": round(stats.mean * 1e3, 3),
            "diagnostics": len(result),
        },
        json_path=LINT_JSON,
    )


def test_lint_wide_manifest(benchmark):
    text = wide_manifest()
    result = benchmark.pedantic(
        lambda: lint_text(text, path="wide.manifest"), rounds=5, iterations=1
    )
    assert not result.errors
    stats = benchmark.stats.stats
    report(
        "lint latency: 18-component chain (2^18 safe-space sweep)",
        f"mean {stats.mean * 1e3:.2f} ms over {len(result)} diagnostics",
        data={
            "mean_ms": round(stats.mean * 1e3, 3),
            "diagnostics": len(result),
        },
        json_path=LINT_JSON,
    )
