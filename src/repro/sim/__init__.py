"""Discrete-event simulation substrate.

The paper evaluated on a physical wireless testbed (iPAQ + laptop clients
on a multicast LAN).  We substitute a deterministic discrete-event
simulator: same protocol code (the sans-io machines), but with seedable
schedules, per-channel delay/loss models, partitions, and full execution
traces — strictly better for *verifying* safety claims than real hardware.

* :mod:`repro.sim.kernel` — event loop, simulated clock, timers.
* :mod:`repro.sim.net` — directed channels, loss/delay models, multicast,
  partitions.
* :mod:`repro.sim.cluster` — the discrete-event backend of the shared
  execution substrate (:mod:`repro.exec`): manager/agent hosts wiring
  the shared runtimes to the simulated clock, timers, and network.
* :mod:`repro.sim.apps` — synthetic process applications used by tests and
  benchmarks (configurable quiesce latency, fail-to-reset injection).
"""

from repro.sim.kernel import Simulator, TimerHandle
from repro.sim.net import (
    BernoulliLoss,
    BurstLoss,
    DelayModel,
    FixedDelay,
    LossModel,
    Network,
    NoLoss,
    UniformDelay,
)
from repro.sim.cluster import (
    AdaptationCluster,
    AdaptationOutcome,
    ManagerHost,
    ProcessApp,
    ProcessHost,
)
from repro.sim.apps import MonitoredApp, QuiescentApp, StuckApp

__all__ = [
    "Simulator",
    "TimerHandle",
    "Network",
    "LossModel",
    "NoLoss",
    "BernoulliLoss",
    "BurstLoss",
    "DelayModel",
    "FixedDelay",
    "UniformDelay",
    "AdaptationCluster",
    "AdaptationOutcome",
    "ManagerHost",
    "ProcessHost",
    "ProcessApp",
    "MonitoredApp",
    "QuiescentApp",
    "StuckApp",
]
