"""Program monitoring and decision-making (RAPIDware tasks 2–3, §1).

The paper's process-management contribution assumes something upstream
"detects a condition warranting adaptation" and chooses a target
configuration.  This package provides that minimal upstream: sensors
(battery, loss rate, threat level), threshold rules with hysteresis and
cooldowns, and a decision engine that issues adaptation requests to the
manager when the system is idle.
"""

from repro.monitor.sensors import (
    BatterySensor,
    EwmaSensor,
    GaugeSensor,
    Sensor,
    WindowRateSensor,
)
from repro.monitor.rules import AdaptationRule, Threshold
from repro.monitor.engine import DecisionEngine

__all__ = [
    "Sensor",
    "GaugeSensor",
    "EwmaSensor",
    "BatterySensor",
    "WindowRateSensor",
    "Threshold",
    "AdaptationRule",
    "DecisionEngine",
]
