"""Unit tests for the dependency-expression AST."""

import pytest

from repro.expr import (
    And,
    Atom,
    FALSE,
    Implies,
    Not,
    OneOf,
    Or,
    TRUE,
    Xor,
    all_of,
    any_of,
    exactly_one,
)


class TestAtom:
    def test_true_when_present(self):
        assert Atom("A").evaluate({"A", "B"})

    def test_false_when_absent(self):
        assert not Atom("A").evaluate({"B"})

    def test_atoms(self):
        assert Atom("A").atoms() == frozenset({"A"})

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            Atom("")

    def test_rejects_non_string(self):
        with pytest.raises(ValueError):
            Atom(3)

    def test_equality_and_hash(self):
        assert Atom("A") == Atom("A")
        assert Atom("A") != Atom("B")
        assert hash(Atom("A")) == hash(Atom("A"))

    def test_immutable(self):
        atom = Atom("A")
        with pytest.raises(AttributeError):
            atom.name = "B"


class TestConstants:
    def test_true(self):
        assert TRUE.evaluate(set())

    def test_false(self):
        assert not FALSE.evaluate({"A"})

    def test_no_atoms(self):
        assert TRUE.atoms() == frozenset()
        assert FALSE.atoms() == frozenset()


class TestConnectives:
    def test_and(self):
        expr = And((Atom("A"), Atom("B")))
        assert expr.evaluate({"A", "B"})
        assert not expr.evaluate({"A"})

    def test_or(self):
        expr = Or((Atom("A"), Atom("B")))
        assert expr.evaluate({"A"})
        assert expr.evaluate({"B"})
        assert not expr.evaluate(set())

    def test_not(self):
        assert Not(Atom("A")).evaluate(set())
        assert not Not(Atom("A")).evaluate({"A"})

    def test_xor_two_operands(self):
        expr = Xor((Atom("A"), Atom("B")))
        assert expr.evaluate({"A"})
        assert expr.evaluate({"B"})
        assert not expr.evaluate({"A", "B"})
        assert not expr.evaluate(set())

    def test_xor_is_parity_for_three(self):
        expr = Xor((Atom("A"), Atom("B"), Atom("C")))
        assert expr.evaluate({"A", "B", "C"})  # odd count → true
        assert not expr.evaluate({"A", "B"})

    def test_one_of_is_exactly_one(self):
        expr = OneOf((Atom("A"), Atom("B"), Atom("C")))
        assert expr.evaluate({"B"})
        assert not expr.evaluate({"A", "C"})
        assert not expr.evaluate(set())

    def test_implies_vacuous(self):
        expr = Implies(Atom("A"), Atom("B"))
        assert expr.evaluate(set())          # antecedent false
        assert expr.evaluate({"A", "B"})
        assert not expr.evaluate({"A"})

    def test_nary_requires_two_operands(self):
        with pytest.raises(ValueError):
            And((Atom("A"),))

    def test_operand_type_checked(self):
        with pytest.raises(TypeError):
            And((Atom("A"), "B"))  # type: ignore[arg-type]

    def test_nested_atoms_union(self):
        expr = Implies(Atom("A"), And((Atom("B"), Not(Atom("C")))))
        assert expr.atoms() == frozenset({"A", "B", "C"})


class TestOperatorSugar:
    def test_and_or_xor_invert_rshift(self):
        expr = (Atom("A") & Atom("B")) | ~Atom("C")
        assert expr.evaluate({"A", "B", "C"})
        assert expr.evaluate(set())  # ~C true
        assert not expr.evaluate({"C"})
        imp = Atom("A") >> Atom("B")
        assert isinstance(imp, Implies)
        x = Atom("A") ^ Atom("B")
        assert isinstance(x, Xor)


class TestConvenienceConstructors:
    def test_all_of(self):
        assert all_of("A", "B").evaluate({"A", "B"})
        assert not all_of("A", "B").evaluate({"A"})
        assert all_of().evaluate(set())  # empty conjunction is TRUE
        assert all_of("A") == Atom("A")

    def test_any_of(self):
        assert any_of("A", "B").evaluate({"B"})
        assert not any_of().evaluate({"A"})  # empty disjunction is FALSE

    def test_exactly_one(self):
        expr = exactly_one("A", "B")
        assert expr.evaluate({"A"})
        assert not expr.evaluate({"A", "B"})
        assert exactly_one("A") == Atom("A")
        assert not exactly_one().evaluate(set())

    def test_paper_dependency_invariant_semantics(self):
        # E1 -> (D1 | D2) & D4, evaluated on Table 1 rows.
        expr = Implies(Atom("E1"), And((Or((Atom("D1"), Atom("D2"))), Atom("D4"))))
        assert expr.evaluate({"D4", "D1", "E1"})
        assert expr.evaluate({"D5", "D3", "E2"})  # E1 absent → vacuous
        assert not expr.evaluate({"D4", "D3", "E1"})
        assert not expr.evaluate({"D1", "E1"})  # D4 missing
