"""SA6xx: interference between concurrent adaptive actions.

The paper's management protocol serializes adaptive actions under one
manager, but a distributed deployment runs one manager per collaborative
set — two actions whose sets are disjoint *may* commit concurrently.
This stage asks, per unordered action pair, whether that concurrency is
observable:

* **SA601 (non-commutative pair)** — a safe configuration exists where
  both actions are applicable but the two firing orders are not
  interchangeable: one order commits safely while the other exits the
  safe space or blocks, or both complete but end in different
  configurations.  The witness is minimized (fewest components, then
  lowest mask) so the message shows the smallest racing scenario.
* **SA602 (blocking-window overlap)** — the pair's participant sets
  intersect and jointly cover every process: if their §6 blocking
  windows overlap, no process anywhere stays available.  Purely a
  library/process check, so it survives the enumeration cap.
* **SA603 (lost-inverse race)** — in the order that commits safely, the
  first action's declared inverse restores safety right after it
  commits, but stops being viable once the concurrent partner also
  commits: §4.4 rollback would strand the system.  Reported instead of
  SA601 for the pair (it is the sharper diagnosis).
* **SA604 (conflicting-touch race)** — one action switches on a
  component the other switches off, so the two composed transformers
  differ *algebraically*: commit order changes the outcome from every
  configuration.  Such pairs can never share a safe source (the shared
  component would need to be present and absent at once), which is
  exactly why the check needs no state enumeration.
* **SA605 (note)** — above the enumeration cap (or past the pair-source
  budget) the stateful checks fall back to the manifest's named safe
  configurations via lazy point queries; pairs with no named witness
  are inconclusive, and the restriction is recorded once.

Pairs declared in the manifest's ``[conflicts]`` section are skipped by
every check: declaring the pair serializes it (the planner unions both
touched sets into one collaborative set), which is also the machine
fix attached to each SA601/SA602/SA603/SA604 finding.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.core.actions import MaskedAction
from repro.lint.diagnostics import LintReport, Related
from repro.lint.fixes import Fix, append_fix

#: bound on (action pairs) x (candidate sources) combinations explored by
#: the stateful checks; past it the stage degrades to named-configuration
#: sources and notes the restriction via SA605
MAX_PAIR_SOURCES = 2_000_000


def _popcount(mask: int) -> int:
    return bin(mask).count("1")


class _Witness:
    """Best (most specific, then smallest) finding for one pair."""

    #: kind priority: the sharper diagnosis wins the pair
    PRIORITY = {"lost-inverse": 3, "divergent": 2, "order": 1}

    def __init__(self) -> None:
        self.kind: Optional[str] = None
        self.source = 0
        self.payload: Tuple = ()

    def offer(self, kind: str, source: int, payload: Tuple) -> None:
        if self.kind is not None:
            mine, theirs = self.PRIORITY[self.kind], self.PRIORITY[kind]
            if theirs < mine:
                return
            if theirs == mine and (
                (_popcount(source), source)
                >= (_popcount(self.source), self.source)
            ):
                return
        self.kind = kind
        self.source = source
        self.payload = payload


def _run_order(
    first: MaskedAction,
    second: MaskedAction,
    mask: int,
    is_safe: Callable[[int], bool],
) -> Tuple[bool, int, str]:
    """Fire *first* then *second* from *mask* (both applicable at *mask*).

    Returns ``(completed, last_mask, failure)`` where *failure* names the
    step that exited the safe space or blocked.
    """
    mid = first.apply_mask(mask)
    first_id = first.action.action_id
    second_id = second.action.action_id
    if not is_safe(mid):
        return False, mid, f"exits the safe space once {first_id!r} commits"
    if not second.is_applicable_mask(mid):
        return (
            False,
            mid,
            f"blocks: {second_id!r} is no longer applicable after "
            f"{first_id!r}",
        )
    final = second.apply_mask(mid)
    if not is_safe(final):
        return (
            False,
            final,
            f"exits the safe space once {second_id!r} also commits",
        )
    return True, final, ""


def _inverse_lost(
    inverse: Optional[MaskedAction],
    after_first: int,
    after_both: int,
    is_safe: Callable[[int], bool],
) -> bool:
    """True iff the declared inverse is viable at *after_first* but not
    once the concurrent partner commits (*after_both*)."""
    if inverse is None:
        return False

    def viable(mask: int) -> bool:
        return inverse.is_applicable_mask(mask) and is_safe(
            inverse.apply_mask(mask)
        )

    return viable(after_first) and not viable(after_both)


def check_interference(
    model,
    report: LintReport,
    path: Optional[str],
    action_info: Optional[Tuple[Sequence[int], FrozenSet[int]]],
    *,
    cap_exceeded: bool = False,
    line_count: int = 0,
    fixes_enabled: bool = False,
) -> None:
    """Run the SA6xx pair checks over the surviving model.

    *action_info* is ``(safe_masks, safe_set)`` from the eager SA3xx
    enumeration, or ``None`` when that stage did not enumerate (empty
    safe space, or *cap_exceeded* above the component cap).
    """
    items = model.actions
    if len(items) < 2:
        return
    universe = model.universe
    bits = universe.atom_bits
    declared: Set[FrozenSet[str]] = {
        frozenset(pair) for pair in getattr(model, "conflicts", ())
    }

    masked = {
        item.action.action_id: MaskedAction(item.action, bits)
        for item in items
    }
    # Declared-inverse lookup for SA603 (same key as the SA304 check).
    by_delta = {
        (item.action.removes, item.action.adds): item for item in items
    }

    _check_blocking_overlap(model, report, path, declared, line_count, fixes_enabled)
    _check_conflicting_touch(
        model, report, path, masked, declared, line_count, fixes_enabled
    )

    pairs = len(items) * (len(items) - 1) // 2
    sources: Sequence[int] = ()
    is_safe: Optional[Callable[[int], bool]] = None
    restricted_reason = ""
    if action_info is not None:
        safe_masks, safe_set = action_info
        if pairs * len(safe_masks) <= MAX_PAIR_SOURCES:
            sources = safe_masks
            is_safe = safe_set.__contains__
        else:
            restricted_reason = (
                f"{pairs} pair(s) x {len(safe_masks)} safe configuration(s) "
                f"exceed the {MAX_PAIR_SOURCES} pair-source budget"
            )
    elif cap_exceeded:
        restricted_reason = (
            f"{len(universe)} components exceed the enumeration cap"
        )
    else:
        # Empty safe space: SA203 already reported; nothing to race over.
        return

    if restricted_reason:
        from repro.core.space import LazySafeSpace

        space = LazySafeSpace(universe, model.kept_invariants())
        is_safe = space.is_safe_mask
        candidates: List[int] = []
        for cfg_item in model.configurations:
            try:
                mask = universe.mask_of(cfg_item.configuration)
            except Exception:
                continue
            if mask not in candidates:
                candidates.append(mask)
        # one batched safety screen over the named configurations
        named: List[int] = [
            mask
            for mask, safe in zip(candidates, space.are_safe_masks(candidates))
            if safe
        ]
        sources = named
        report.add(
            "SA605",
            f"SA601/SA603 interference analysis restricted to the "
            f"{len(named)} named safe configuration(s): "
            f"{restricted_reason} — pairs with no named witness are "
            "inconclusive, not clean",
            model.section_span("actions"),
            path,
        )
        report.skipped.append(
            f"SA601/SA603 restricted to named configurations: "
            f"{restricted_reason}"
        )

    if not sources or is_safe is None:
        return

    for index, x_item in enumerate(items):
        mx = masked[x_item.action.action_id]
        inv_x = by_delta.get((x_item.action.adds, x_item.action.removes))
        for y_item in items[index + 1 :]:
            xid = x_item.action.action_id
            yid = y_item.action.action_id
            if frozenset((xid, yid)) in declared:
                continue
            my = masked[yid]
            inv_y = by_delta.get((y_item.action.adds, y_item.action.removes))
            witness = _Witness()
            for mask in sources:
                if not (
                    mx.is_applicable_mask(mask) and my.is_applicable_mask(mask)
                ):
                    continue
                ok_xy, final_xy, fail_xy = _run_order(mx, my, mask, is_safe)
                ok_yx, final_yx, fail_yx = _run_order(my, mx, mask, is_safe)
                if ok_xy and ok_yx:
                    if final_xy != final_yx:
                        witness.offer(
                            "divergent", mask, (final_xy, final_yx)
                        )
                    continue
                if not ok_xy and not ok_yx:
                    continue  # the race cannot start from here
                # Exactly one order completes: (p, q) is the safe order.
                if ok_xy:
                    p_item, q_item, final, fail = x_item, y_item, final_xy, fail_yx
                    inv_p, mp, mq = inv_x, mx, my
                else:
                    p_item, q_item, final, fail = y_item, x_item, final_yx, fail_xy
                    inv_p, mp, mq = inv_y, my, mx
                inverse = None if inv_p is None else masked[inv_p.action.action_id]
                if inverse is not None and inverse is not mq:
                    after_p = mp.apply_mask(mask)
                    if _inverse_lost(inverse, after_p, final, is_safe):
                        witness.offer(
                            "lost-inverse",
                            mask,
                            (p_item, q_item, inv_p, final),
                        )
                        continue
                witness.offer("order", mask, (p_item, q_item, final, fail))
            if witness.kind is None:
                continue
            _report_pair_witness(
                model,
                report,
                path,
                x_item,
                y_item,
                witness,
                line_count,
                fixes_enabled,
            )


def _describe(universe, mask: int) -> str:
    config = universe.from_mask(mask)
    return f"{universe.to_bits(config)} {config.label()}"


def _serialize_fixes(
    first_id: str,
    second_id: str,
    line_count: int,
    fixes_enabled: bool,
) -> Tuple[Fix, ...]:
    """The machine fix: append a ``[conflicts]`` entry for the pair."""
    if not fixes_enabled or line_count <= 0:
        return ()
    low, high = sorted((first_id, second_id))
    block = f"\n[conflicts]\n{low}_{high} : {low} {high}\n"
    return (
        append_fix(
            f"serialize {low!r} and {high!r} via a [conflicts] entry",
            line_count,
            block,
        ),
    )


def _report_pair_witness(
    model,
    report: LintReport,
    path: Optional[str],
    x_item,
    y_item,
    witness: _Witness,
    line_count: int,
    fixes_enabled: bool,
) -> None:
    universe = model.universe
    xid = x_item.action.action_id
    yid = y_item.action.action_id
    source = _describe(universe, witness.source)
    fixes = _serialize_fixes(xid, yid, line_count, fixes_enabled)
    if witness.kind == "divergent":
        final_xy, final_yx = witness.payload
        report.add(
            "SA601",
            f"actions {xid!r} and {yid!r} do not commute: from safe "
            f"configuration {source} the order {xid!r}, {yid!r} ends at "
            f"{_describe(universe, final_xy)} but {yid!r}, {xid!r} ends "
            f"at {_describe(universe, final_yx)} — concurrent managers "
            "must serialize the pair",
            x_item.span,
            path,
            related=[Related("races with this action", y_item.span)],
            fixes=fixes,
        )
    elif witness.kind == "order":
        p_item, q_item, final, fail = witness.payload
        pid = p_item.action.action_id
        qid = q_item.action.action_id
        report.add(
            "SA601",
            f"actions {xid!r} and {yid!r} race: from safe configuration "
            f"{source} the order {pid!r}, {qid!r} commits safely to "
            f"{_describe(universe, final)}, but the order {qid!r}, "
            f"{pid!r} {fail} — concurrent managers must serialize the "
            "pair",
            x_item.span,
            path,
            related=[Related("races with this action", y_item.span)],
            fixes=fixes,
        )
    else:  # lost-inverse
        p_item, q_item, inv_item, final = witness.payload
        pid = p_item.action.action_id
        qid = q_item.action.action_id
        inv_id = inv_item.action.action_id
        report.add(
            "SA603",
            f"lost-inverse race between {xid!r} and {yid!r}: from safe "
            f"configuration {source}, right after {pid!r} commits its "
            f"declared inverse {inv_id!r} still restores safety, but "
            f"once concurrent {qid!r} also commits "
            f"({_describe(universe, final)}) the inverse is no longer "
            "viable — planned rollback would strand the system",
            x_item.span,
            path,
            related=[
                Related("races with this action", q_item.span),
                Related("the stranded inverse", inv_item.span),
            ],
            fixes=fixes,
        )


def _check_blocking_overlap(
    model,
    report: LintReport,
    path: Optional[str],
    declared: Set[FrozenSet[str]],
    line_count: int,
    fixes_enabled: bool,
) -> None:
    """SA602: pairs whose blocking windows jointly freeze every process.

    Actions that alone block every process are SA402's finding; here the
    hazard needs *both* windows open at once, so single-handed blockers
    are excluded.  Library/process-only: survives the enumeration cap.
    """
    universe = model.universe
    all_processes = frozenset(universe.processes())
    if len(all_processes) < 2:
        return
    participants = [
        (item, item.action.participants(universe)) for item in model.actions
    ]
    for index, (x_item, px) in enumerate(participants):
        if px == all_processes:
            continue
        for y_item, py in participants[index + 1 :]:
            if py == all_processes:
                continue
            xid = x_item.action.action_id
            yid = y_item.action.action_id
            if frozenset((xid, yid)) in declared:
                continue
            if not (px & py) or (px | py) != all_processes:
                continue
            shared = ", ".join(sorted(px & py))
            report.add(
                "SA602",
                f"blocking-window overlap between {xid!r} and {yid!r}: "
                f"their participant sets intersect (shared: {shared}) and "
                f"together cover every process "
                f"({', '.join(sorted(all_processes))}) — if their blocking "
                "windows overlap, no process anywhere stays available",
                x_item.span,
                path,
                related=[Related("overlapping blocker", y_item.span)],
                fixes=_serialize_fixes(xid, yid, line_count, fixes_enabled),
            )


def _check_conflicting_touch(
    model,
    report: LintReport,
    path: Optional[str],
    masked: Dict[str, MaskedAction],
    declared: Set[FrozenSet[str]],
    line_count: int,
    fixes_enabled: bool,
) -> None:
    """SA604: algebraically non-commuting pairs (set/clear collision).

    Firing x then y composes to ``clear (cx|cy), set (sx&~cy)|sy``; the
    reverse order sets ``(sy&~cx)|sx``.  When one action switches on a
    bit the other switches off, those differ for *every* start mask —
    no enumeration needed, so the check is cap-proof.  Mutual inverses
    are excluded: their conflict is definitional, and the pair already
    has SA304/rollback semantics.
    """
    universe = model.universe
    items = model.actions
    for index, x_item in enumerate(items):
        x = x_item.action
        mx = masked[x.action_id]
        for y_item in items[index + 1 :]:
            y = y_item.action
            if x.removes == y.adds and x.adds == y.removes:
                continue
            if frozenset((x.action_id, y.action_id)) in declared:
                continue
            my = masked[y.action_id]
            collide = (mx.set_bits & my.clear) | (my.set_bits & mx.clear)
            if not collide:
                continue
            set_xy = (mx.set_bits & ~my.clear) | my.set_bits
            set_yx = (my.set_bits & ~mx.clear) | mx.set_bits
            if set_xy == set_yx:
                continue
            disputed = sorted(
                name
                for name in universe.order
                if universe.bit_of(name) & collide
            )
            report.add(
                "SA604",
                f"conflicting-touch race between {x.action_id!r} and "
                f"{y.action_id!r}: commit order decides whether "
                f"{', '.join(disputed)} end(s) up present — the composed "
                "outcomes differ from every configuration, independent "
                "of state",
                x_item.span,
                path,
                related=[Related("conflicting action", y_item.span)],
                fixes=_serialize_fixes(
                    x.action_id, y.action_id, line_count, fixes_enabled
                ),
            )
