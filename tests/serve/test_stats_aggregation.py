"""/v1/stats cluster aggregation across workers sharing a CounterBlock.

``repro serve --workers N`` forks N processes; each publishes its own
row of a shared-memory :class:`CounterBlock` and any worker answers
``/v1/stats`` with the column sums under ``result.cluster``.  Forking is
awkward under pytest, so these tests stand up two in-process
:class:`ServerThread` instances wired to one block — the exact topology
the forked workers see (same segment, distinct rows, no locks).
"""

import pytest

from repro.parallel.counters import FIELDS, CounterBlock
from repro.serve import ControlPlane, ServerThread
from tests.serve.test_http import request


@pytest.fixture
def cluster(video_text):
    block = CounterBlock(2)
    servers = []
    try:
        for index in range(2):
            thread = ServerThread(
                ControlPlane(),
                host="127.0.0.1",
                port=0,
                counters=block,
                worker_index=index,
            ).start()
            servers.append(thread)
        yield servers, block
    finally:
        for thread in servers:
            thread.stop()
        block.close()
        block.unlink()


def stats(server):
    status, body, _ = request(server.address, "GET", "/v1/stats")
    assert status == 200, body
    return body["result"]


def test_no_counter_block_means_no_cluster_key(video_text):
    with ServerThread(ControlPlane(), host="127.0.0.1", port=0) as server:
        assert "cluster" not in stats(server)


def test_cluster_sums_across_workers(cluster, video_text):
    servers, _ = cluster
    for server in servers:
        status, body, _ = request(
            server.address, "POST", "/v1/specs", body=video_text
        )
        assert status == 200, body
    # either worker answers with fleet-wide sums
    for server in servers:
        doc = stats(server)
        assert doc["cluster"]["workers"] == 2
        assert doc["cluster"]["served"] == 2
        assert doc["cluster"]["specs"] == 2
        # this worker's own row stays visible under "server"
        assert doc["server"]["served"] == 1
        assert set(FIELDS) <= set(doc["cluster"])


def test_cluster_reflects_lopsided_load(cluster, video_text):
    servers, _ = cluster
    for _ in range(3):
        status, _, _ = request(
            servers[0].address, "POST", "/v1/specs", body=video_text
        )
        assert status == 200
    doc = stats(servers[1])
    assert doc["cluster"]["served"] == 3
    assert doc["server"]["served"] == 0
    # registering the same spec twice is idempotent: 3 served, 1 spec
    assert doc["cluster"]["specs"] == 1


def test_rows_survive_worker_stats_queries(cluster, video_text):
    servers, block = cluster
    request(servers[0].address, "POST", "/v1/specs", body=video_text)
    stats(servers[0])
    stats(servers[1])
    assert block.row(0)["served"] == 1
    assert block.row(1)["served"] == 0
