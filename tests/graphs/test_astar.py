"""Unit tests for A* (explicit and lazy/implicit variants)."""

import pytest

from repro.graphs import Digraph, astar_path, lazy_astar, shortest_path


@pytest.fixture
def grid():
    # 4x4 grid, unit weights; heuristic = Manhattan distance (admissible).
    g = Digraph()
    for x in range(4):
        for y in range(4):
            if x + 1 < 4:
                g.add_edge((x, y), (x + 1, y), f"r{x}{y}", 1.0)
                g.add_edge((x + 1, y), (x, y), f"l{x}{y}", 1.0)
            if y + 1 < 4:
                g.add_edge((x, y), (x, y + 1), f"u{x}{y}", 1.0)
                g.add_edge((x, y + 1), (x, y), f"d{x}{y}", 1.0)
    return g


def manhattan_to(target):
    return lambda node: abs(node[0] - target[0]) + abs(node[1] - target[1])


class TestAstarExplicit:
    def test_matches_dijkstra_cost(self, grid):
        target = (3, 3)
        a = astar_path(grid, (0, 0), target, manhattan_to(target))
        d = shortest_path(grid, (0, 0), target)
        assert a is not None and d is not None
        assert a.cost == d.cost == 6.0

    def test_zero_heuristic_degrades_to_dijkstra(self, grid):
        a = astar_path(grid, (0, 0), (2, 1), lambda n: 0.0)
        assert a.cost == 3.0

    def test_source_is_target(self, grid):
        a = astar_path(grid, (1, 1), (1, 1), lambda n: 0.0)
        assert a.cost == 0.0
        assert a.nodes == ((1, 1),)


class TestLazyAstar:
    def test_implicit_graph_never_materialized(self):
        # Successor function over integers: +1 (cost 1) and *2 (cost 1.5).
        def successors(n):
            yield "+1", 1.0, n + 1
            yield "*2", 1.5, n * 2

        path = lazy_astar(1, 24, successors, heuristic=lambda n: 0.0)
        assert path is not None
        assert path.target == 24
        # 1→2→3→6→12→24: +1(1), +1(1), *2, *2, *2 = 2 + 4.5 = 6.5
        assert path.cost == 6.5

    def test_unreachable_returns_none(self):
        def successors(n):
            if n < 5:
                yield "+1", 1.0, n + 1

        assert lazy_astar(0, 10, successors, lambda n: 0.0) is None

    def test_expansion_budget(self):
        def successors(n):
            yield "+1", 1.0, n + 1

        assert lazy_astar(0, 10_000, successors, lambda n: 0.0, max_expansions=5) is None

    def test_negative_weight_rejected(self):
        def successors(n):
            yield "bad", -1.0, n + 1

        with pytest.raises(ValueError):
            lazy_astar(0, 3, successors, lambda n: 0.0)

    def test_admissible_heuristic_preserves_optimality(self):
        def successors(n):
            yield "+1", 1.0, n + 1
            yield "+3", 2.5, n + 3

        def heuristic(n):
            return max(0, (10 - n)) / 3 * 2.5  # admissible lower bound

        path = lazy_astar(0, 10, successors, heuristic)
        blind = lazy_astar(0, 10, successors, lambda n: 0.0)
        assert path.cost == blind.cost
