"""Experiment A1 — ablation: why the MAP beats composites, quantitatively.

§4.2's cost-optimal planning is only useful if the cost model reflects
reality.  This ablation enumerates every plan class from source to target,
prices it with Table 2, executes it on the live stream, and compares the
planner's *predicted* cost ranking with the *measured* disruption ranking
(server blocking + viewer stalls).  Shape to reproduce: the rankings agree
— all-singles (50 ms predicted) minimizes disruption; the triple
(150 ms predicted) maximizes it.
"""

import pytest

from benchmarks.conftest import report
from repro.apps.video import VideoScenario
from repro.apps.video.system import paper_source, paper_target, video_planner
from repro.bench import format_table
from repro.trace import BlockRecord, CommRecord

PLANS = [
    ("all-singles MAP", None, 50.0),
    ("pair A9 route", ("A2", "A9", "A4"), 120.0),
    ("triple A14", ("A14",), 150.0),
]


def measure(action_ids, seed=5):
    scenario = VideoScenario(seed=seed)
    cluster = scenario.cluster
    cluster.sim.run(until=50.0)
    if action_ids is None:
        plan = cluster.planner.plan(paper_source(), paper_target())
    else:
        plans = cluster.planner.plan_k(paper_source(), paper_target(), 40)
        plan = next(p for p in plans if p.action_ids == tuple(action_ids))
    outcome = cluster.run_plan(plan)
    cluster.sim.run(until=cluster.sim.now + 60.0)
    scenario.safety_report().raise_if_unsafe()

    blocked, start = 0.0, None
    for record in cluster.trace.of_type(BlockRecord):
        if record.process != "server":
            continue
        if record.blocked and start is None:
            start = record.time
        elif not record.blocked and start is not None:
            blocked += record.time - start
            start = None

    stall = 0.0
    for process in ("handheld", "laptop"):
        times = [
            r.time for r in cluster.trace.of_type(CommRecord)
            if r.action == "decode" and r.process == process
        ]
        gaps = [b - a for a, b in zip(times, times[1:])]
        if gaps:
            stall = max(stall, max(gaps))
    return plan, outcome, blocked, stall


def test_planner_would_pick_the_cheapest(benchmark):
    planner = benchmark.pedantic(video_planner, rounds=1, iterations=1)
    plan = planner.plan(paper_source(), paper_target())
    assert plan.total_cost == 50.0
    costs = sorted(
        {p.action_ids: p.total_cost for p in
         planner.plan_k(paper_source(), paper_target(), 40)}.values()
    )
    assert costs[0] == 50.0
    assert 150.0 in costs  # the triple is a (worse) option the planner saw


@pytest.mark.parametrize(
    "label,action_ids,predicted", PLANS, ids=[p[0] for p in PLANS]
)
def test_measured_disruption(benchmark, label, action_ids, predicted):
    plan, outcome, blocked, stall = benchmark.pedantic(
        measure, args=(action_ids,), rounds=1, iterations=1
    )
    assert outcome.succeeded
    assert plan.total_cost == predicted
    benchmark.extra_info.update(
        {
            "predicted_cost_ms": predicted,
            "server_blocked_ms": round(blocked, 2),
            "max_viewer_stall_ms": round(stall, 2),
        }
    )


def test_predicted_and_measured_rankings_agree(benchmark):
    benchmark.pedantic(lambda: measure(None), rounds=1, iterations=1)
    rows = []
    for label, action_ids, predicted in PLANS:
        _, _, blocked, stall = measure(action_ids)
        rows.append((label, predicted, round(blocked, 1), round(stall, 1)))
    report(
        "ablation: predicted cost vs measured disruption",
        format_table(
            ["plan", "Table-2 cost (ms)", "server blocked (ms)",
             "max viewer stall (ms)"],
            rows,
        ),
    )
    predicted_order = [r[0] for r in sorted(rows, key=lambda r: r[1])]
    measured_order = [r[0] for r in sorted(rows, key=lambda r: (r[2], r[3]))]
    assert predicted_order == measured_order
    # and the MAP's advantage is an order of magnitude, as Table 2 prices it
    singles = next(r for r in rows if r[0] == "all-singles MAP")
    triple = next(r for r in rows if r[0] == "triple A14")
    assert singles[2] == 0.0 and triple[2] > 0.0
