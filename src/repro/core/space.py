"""Safe-configuration enumeration (paper §4.2, step 1).

"Based on the source/target configurations of an adaptation request and
dependency relationships, this step produces a set of safe configurations."

A configuration is safe iff it satisfies every invariant.  Enumeration over
*n* components is 2^n in the worst case — the paper acknowledges this in §7
— so besides the full sweep we support *restricted* enumeration: freeze the
components no adaptive action can touch at their current values and only
vary the rest.  The restriction is exact (it enumerates precisely the safe
configurations reachable by the given actions from the given base).

Performance: safety testing runs on the bitmask fast path.  The invariant
conjunction is compiled once (:mod:`repro.expr.compile`) to a closure over
an integer presence mask, and verdicts are memoized per mask in a table
shared by every consumer — :meth:`SafeConfigurationSpace.is_safe`, the
backtracking enumerators, :meth:`SafeAdaptationGraph.build
<repro.core.sag.SafeAdaptationGraph.build>`, and the planner's lazy A*.
The frozenset/AST evaluation path remains the semantic source of truth and
still serves configurations containing components outside the universe.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple

from repro.core.invariants import InvariantSet
from repro.core.model import ComponentUniverse, Configuration
from repro.errors import UnknownComponentError, UnsafeConfigurationError


#: below this many components a process pool costs more than it saves
MIN_PARALLEL_COMPONENTS = 12


def _parallel_enumerate_worker(
    payload: Tuple[
        Tuple[Tuple[str, str], ...],  # (name, process) per component, in order
        Tuple[str, ...],  # invariant source texts, in order
        Tuple[str, ...],  # prefix component names present in this partition
        Tuple[str, ...],  # free (non-prefix) component names
    ],
) -> Tuple[Tuple[int, ...], Dict[int, bool]]:
    """Enumerate one mask-space partition in a worker process.

    The payload carries only primitives — component ``(name, process)``
    pairs and invariant source texts — because :class:`Expr`,
    :class:`Invariant`, and :class:`Configuration` are deliberately
    unpicklable (immutable slots classes).  The spec is rebuilt here via
    the parser, which round-trips exactly, so the worker's safety
    semantics are identical to the parent's.  Returns the partition's
    safe masks (ascending) plus the worker's safety memo for merging.
    """
    from repro.core.model import Component

    component_specs, invariant_texts, prefix_present, free_names = payload
    universe = ComponentUniverse(
        [Component(name, process) for name, process in component_specs]
    )
    invariants = InvariantSet.of(*invariant_texts)
    space = SafeConfigurationSpace(universe, invariants)
    base = Configuration(prefix_present)
    configs = space.enumerate_restricted(base, free_names)
    masks = tuple(universe.mask_of(config) for config in configs)
    return masks, space.safe_memo


class SafeConfigurationSpace:
    """All safe configurations of a universe under an invariant set.

    With ``workers=N`` (N > 1), the full enumeration partitions the mask
    space on the high bits of the component prefix and fans the
    partitions out across a process pool — see
    :meth:`_enumerate_parallel`.  Restricted enumeration and membership
    queries are unaffected by the option.
    """

    def __init__(
        self,
        universe: ComponentUniverse,
        invariants: InvariantSet,
        workers: Optional[int] = None,
    ):
        self.universe = universe
        self.invariants = invariants
        self.workers = workers
        self._cache: Optional[Tuple[Configuration, ...]] = None
        self._safe_memo: Dict[int, bool] = {}
        self._compiled: Optional[Callable[[int], bool]] = None
        self._compiled_partial: Optional[Tuple[Callable, ...]] = None

    # -- compiled fast path ------------------------------------------------------
    @property
    def safe_memo(self) -> Dict[int, bool]:
        """The shared mask -> verdict memo table (exposed for reuse)."""
        return self._safe_memo

    def _compiled_mask_fn(self) -> Callable[[int], bool]:
        if self._compiled is None:
            self._compiled = self.invariants.compile_mask(self.universe.atom_bits)
        return self._compiled

    def _compiled_partial_fns(self) -> Tuple[Callable, ...]:
        if self._compiled_partial is None:
            self._compiled_partial = self.invariants.compile_mask_partial(
                self.universe.atom_bits
            )
        return self._compiled_partial

    def _check_schedule(self, names: Tuple[str, ...]) -> Tuple[Tuple[Callable, ...], ...]:
        """Per-position invariant checks for a backtracking order.

        ``schedule[i]`` holds the compiled three-valued closures of the
        invariants that mention ``names[i]`` — the only invariants whose
        verdict can change when that component is decided.  Checking just
        those at each depth is exact (the parent node already vetted the
        rest) and drops the per-node work from |I| closures to the
        invariant's fan-in.
        """
        fns = self._compiled_partial_fns()
        buckets: List[List[Callable]] = [[] for _ in names]
        position = {name: i for i, name in enumerate(names)}
        for inv, fn in zip(self.invariants, fns):
            for atom in inv.atoms():
                index = position.get(atom)
                if index is not None:
                    buckets[index].append(fn)
        return tuple(tuple(bucket) for bucket in buckets)

    def is_safe_mask(self, mask: int) -> bool:
        """Memoized safety verdict for an integer presence mask."""
        verdict = self._safe_memo.get(mask)
        if verdict is None:
            verdict = self._compiled_mask_fn()(mask)
            self._safe_memo[mask] = verdict
        return verdict

    # -- membership ------------------------------------------------------------
    def is_safe(self, config: Configuration) -> bool:
        """True iff *config* is a safe configuration (paper §3.1)."""
        try:
            mask = self.universe.mask_of(config)
        except UnknownComponentError:
            # Configurations reaching outside the universe keep the
            # set-based evaluation (they have no mask encoding).
            return self.invariants.all_hold(config)
        return self.is_safe_mask(mask)

    def require_safe(self, config: Configuration, role: str = "configuration") -> None:
        """Raise :class:`UnsafeConfigurationError` with an explanation if unsafe."""
        if not self.is_safe(config):
            raise UnsafeConfigurationError(
                f"{role} is unsafe: {self.invariants.explain(config)}"
            )

    # -- enumeration ------------------------------------------------------------
    def enumerate(self) -> Tuple[Configuration, ...]:
        """All safe configurations over the full universe (cached).

        Deterministic order: ascending by the universe's bit-vector value.
        Implemented by :meth:`enumerate_backtracking` (invariant
        propagation prunes hopeless branches early); the exhaustive
        filter over ``all_configurations`` is kept as the property-test
        oracle.
        """
        if self._cache is None:
            if (
                self.workers is not None
                and self.workers > 1
                and len(self.universe) >= MIN_PARALLEL_COMPONENTS
            ):
                self._cache = self._enumerate_parallel(self.workers)
            else:
                self._cache = self.enumerate_backtracking()
        return self._cache

    def enumerate_masks(self) -> Tuple[int, ...]:
        """Masks of :meth:`enumerate`'s result, in the same order."""
        mask_of = self.universe.mask_of
        return tuple(mask_of(config) for config in self.enumerate())

    def enumerate_restricted(
        self,
        base: Configuration,
        free_components: Iterable[str],
    ) -> Tuple[Configuration, ...]:
        """Safe configurations varying only *free_components* over *base*.

        Components outside *free_components* keep their membership from
        *base*.  This is how a planner scopes the search to the components
        an adaptation can actually touch, avoiding the full 2^n sweep: the
        three-valued backtracking pruner runs over just the free
        components, with everything else pre-decided, and leaf verdicts go
        through the shared safety memo table.
        """
        free: Tuple[str, ...] = tuple(dict.fromkeys(free_components))
        self.universe.validate_members(free)
        frozen = base.members - frozenset(free)
        if not frozen <= self.universe.names:
            # Frozen members outside the universe have no bit encoding;
            # keep the exhaustive set-based sweep for that corner.
            return self._enumerate_restricted_setwise(frozen, free)
        universe = self.universe
        bit_of = universe.bit_of
        present0 = universe.mask_of_names(frozen)
        free_bits = tuple(bit_of(name) for name in free)
        # everything outside the free components is decided up front
        decided0 = universe.full_mask ^ universe.mask_of_names(free)
        # invariants not touching a free component are fully decided at
        # the root; reject the whole restriction in one pass if any fails
        for expr in self._compiled_partial_fns():
            if expr(present0, decided0) is False:
                return ()
        schedule = self._check_schedule(free)
        out: List[Configuration] = []
        from_mask = universe.from_mask

        def recurse(index: int, present: int, decided: int) -> None:
            if index == len(free_bits):
                if self.is_safe_mask(present):
                    out.append(from_mask(present))
                return
            bit = free_bits[index]
            decided |= bit
            checks = schedule[index]
            # '0' branch first, then '1' (final order is re-sorted below)
            for candidate in (present, present | bit):
                for expr in checks:
                    if expr(candidate, decided) is False:
                        break
                else:
                    recurse(index + 1, candidate, decided)

        recurse(0, present0, decided0)
        out.sort(key=self.universe.to_bits)
        return tuple(out)

    def _enumerate_restricted_setwise(
        self, frozen: FrozenSet[str], free: Tuple[str, ...]
    ) -> Tuple[Configuration, ...]:
        """Exhaustive fallback for bases reaching outside the universe."""
        out: List[Configuration] = []
        n = len(free)
        for mask in range(1 << n):
            members = set(frozen)
            for i in range(n):
                if mask & (1 << (n - 1 - i)):
                    members.add(free[i])
            config = Configuration(members)
            if self.is_safe(config):
                out.append(config)
        out.sort(key=lambda c: "".join(
            "1" if name in c else "0" for name in self.universe.order
        ))
        return tuple(out)

    def enumerate_backtracking(self) -> Tuple[Configuration, ...]:
        """Safe set via backtracking with invariant propagation.

        Decides components one at a time (in universe order) and prunes a
        branch as soon as any invariant is *determined false* under
        three-valued evaluation — so branches that can never satisfy a
        one-of/dependency constraint are abandoned without expanding the
        remaining 2^k subtree.  Produces exactly :meth:`enumerate`'s
        result (same order) but scales far better on constrained spaces.

        Runs entirely on compiled bitmask closures; every leaf verdict is
        recorded in the shared safety memo so later SAG construction and
        lazy planning reuse it for free.
        """
        universe = self.universe
        order = universe.order
        order_bits = tuple(universe.bit_of(name) for name in order)
        # invariants with no universe atom are constant under the mask
        # encoding — decide them once up front instead of per node
        for expr in self._compiled_partial_fns():
            if expr(0, 0) is False:
                return ()
        schedule = self._check_schedule(order)
        memo = self._safe_memo
        out: List[Configuration] = []
        from_mask = universe.from_mask
        n = len(order_bits)

        def recurse(index: int, present: int, decided: int) -> None:
            if index == n:
                memo[present] = True
                out.append(from_mask(present))
                return
            bit = order_bits[index]
            decided |= bit
            checks = schedule[index]
            # '0' branch first so results come out in ascending bit order
            for candidate in (present, present | bit):
                for expr in checks:
                    if expr(candidate, decided) is False:
                        break
                else:
                    recurse(index + 1, candidate, decided)

        recurse(0, 0, 0)
        return tuple(out)

    def _enumerate_parallel(self, workers: int) -> Tuple[Configuration, ...]:
        """Full enumeration fanned out over a process pool.

        The mask space is partitioned on the first *k* components of the
        universe order — the **high** bits of the bit-vector encoding — so
        partition index order equals ascending mask order and the
        concatenated results come out exactly as
        :meth:`enumerate_backtracking` would produce them.  The parent
        root-prunes partitions whose prefix assignment already falsifies
        an invariant under three-valued evaluation (those contain no safe
        configuration), then ships each surviving partition to a worker as
        a primitives-only payload.  Worker safety memos are merged into
        the shared memo on join, so SAG construction after a parallel
        enumeration is exactly as warm as after a serial one.

        Any pool failure (a platform without usable multiprocessing, a
        spec that cannot round-trip) falls back to the serial enumerator
        — the option is a go-faster knob, never a behavior change.
        """
        universe = self.universe
        order = universe.order
        n = len(order)
        # 2x oversubscription smooths uneven partition sizes; the prefix
        # must leave at least one free component for the workers to vary.
        k = 1
        while (1 << k) < 2 * workers and k < min(8, n - 1):
            k += 1
        prefix = order[:k]
        free = order[k:]
        prefix_full = universe.mask_of_names(prefix)
        partial_fns = self._compiled_partial_fns()
        payloads = []
        component_specs = tuple(
            (name, universe.component(name).process) for name in order
        )
        from repro.expr.ast import to_text

        invariant_texts = tuple(to_text(inv.expr) for inv in self.invariants)
        for value in range(1 << k):
            present = tuple(
                prefix[i] for i in range(k) if value & (1 << (k - 1 - i))
            )
            present0 = universe.mask_of_names(present)
            if any(fn(present0, prefix_full) is False for fn in partial_fns):
                continue  # the whole partition is provably unsafe
            payloads.append((component_specs, invariant_texts, present, free))
        try:
            import concurrent.futures

            out: List[Configuration] = []
            from_mask = universe.from_mask
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=workers
            ) as pool:
                # executor.map preserves submission order == ascending
                # prefix order == global ascending mask order
                for masks, memo in pool.map(
                    _parallel_enumerate_worker, payloads, chunksize=1
                ):
                    self._safe_memo.update(memo)
                    out.extend(from_mask(mask) for mask in masks)
            return tuple(out)
        except Exception:
            return self.enumerate_backtracking()

    def count(self) -> int:
        return len(self.enumerate())

    def to_table(self) -> List[Tuple[str, str]]:
        """Render the safe set as (bit vector, member list) rows — Table 1."""
        rows = []
        for config in self.enumerate():
            rows.append((self.universe.to_bits(config), config.label()))
        return rows

    def __iter__(self) -> Iterator[Configuration]:
        return iter(self.enumerate())

    def __len__(self) -> int:
        return self.count()

    def __contains__(self, config: Configuration) -> bool:
        return self.is_safe(config)
