"""Encryption scheme registry: ``des64`` and ``des128`` (paper §5).

The video example has two schemes: DES 64-bit (encoder E1, decoders
D1/D2/D4) and DES 128-bit (encoder E2, decoders D2/D3/D5).  A
:class:`Scheme` pairs a scheme identifier with a key; packets carry the
identifier so bypass-capable decoders can tell whether they match
("when it receives a packet not encoded by the corresponding encoder, it
simply forwards the packet").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.crypto.feistel import FeistelCipher


@dataclass(frozen=True)
class Scheme:
    """An encryption scheme: wire identifier + key material."""

    scheme_id: str
    key: bytes

    def __post_init__(self):
        if not self.scheme_id:
            raise ValueError("scheme_id must be non-empty")
        if not self.key:
            raise ValueError("key must be non-empty")


# The demo keys are fixed so simulation runs are reproducible; real
# deployments would provision them out of band.
DES64 = Scheme("des64", key=bytes(range(8)))
DES128 = Scheme("des128", key=bytes(range(16)))

_REGISTRY: Dict[str, Scheme] = {s.scheme_id: s for s in (DES64, DES128)}
_CIPHERS: Dict[str, FeistelCipher] = {}


def register_scheme(scheme: Scheme) -> None:
    """Add a scheme to the registry (idempotent for identical entries)."""
    existing = _REGISTRY.get(scheme.scheme_id)
    if existing is not None and existing != scheme:
        raise ValueError(f"scheme {scheme.scheme_id!r} already registered differently")
    _REGISTRY[scheme.scheme_id] = scheme
    _CIPHERS.pop(scheme.scheme_id, None)


def get_scheme(scheme_id: str) -> Scheme:
    try:
        return _REGISTRY[scheme_id]
    except KeyError:
        raise KeyError(f"unknown encryption scheme {scheme_id!r}") from None


def cipher_for(scheme_id: str) -> FeistelCipher:
    """Cached cipher instance for a registered scheme."""
    if scheme_id not in _CIPHERS:
        _CIPHERS[scheme_id] = FeistelCipher(get_scheme(scheme_id).key)
    return _CIPHERS[scheme_id]


def registered_schemes() -> Tuple[str, ...]:
    return tuple(sorted(_REGISTRY))
