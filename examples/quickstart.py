#!/usr/bin/env python
"""Quickstart: model a system, plan a safe adaptation, run it.

A minimal end-to-end tour of the public API on a made-up system: a web
tier (one of two load balancers), an app tier, and a cache that the app
tier depends on.  We plan a safe path that swaps the load balancer and
upgrades the cache, then execute it on the deterministic simulator and
verify the execution against the paper's safety definition.

Run:  python examples/quickstart.py
"""

from repro import (
    ActionLibrary,
    AdaptationPlanner,
    AdaptiveAction,
    ComponentUniverse,
    DependencyInvariant,
    InvariantSet,
    StructuralInvariant,
    check_safe,
)
from repro.expr import exactly_one
from repro.sim import AdaptationCluster, QuiescentApp


def main() -> None:
    # 1. Components, each hosted on a process.
    universe = ComponentUniverse.from_names(
        ["LB1", "LB2", "App", "CacheV1", "CacheV2"],
        {
            "LB1": "edge", "LB2": "edge",
            "App": "app",
            "CacheV1": "data", "CacheV2": "data",
        },
    )

    # 2. Dependency relationships (paper §3.1):
    invariants = InvariantSet(
        [
            StructuralInvariant(exactly_one("LB1", "LB2"), name="one balancer"),
            StructuralInvariant("App", name="app always present"),
            DependencyInvariant("App -> CacheV1 | CacheV2"),
            StructuralInvariant(exactly_one("CacheV1", "CacheV2"), name="one cache"),
        ]
    )

    # 3. Adaptive actions with costs (paper §4.1):
    actions = ActionLibrary(
        [
            AdaptiveAction.replace("swap-lb", "LB1", "LB2", cost=5),
            AdaptiveAction.replace("upgrade-cache", "CacheV1", "CacheV2", cost=20),
            AdaptiveAction(
                "big-bang",
                removes=frozenset({"LB1", "CacheV1"}),
                adds=frozenset({"LB2", "CacheV2"}),
                cost=80,
                description="swap balancer and cache together",
            ),
        ]
    )

    # 4. Detection & setup phase: safe set, SAG, Minimum Adaptation Path.
    planner = AdaptationPlanner(universe, invariants, actions)
    print(f"safe configurations: {planner.space.count()}")
    source = universe.configuration("LB1", "App", "CacheV1")
    target = universe.configuration("LB2", "App", "CacheV2")
    plan = planner.plan(source, target)
    print(plan.describe())
    print()

    # 5. Realization phase on the simulator: manager + one agent per process.
    cluster = AdaptationCluster(
        universe,
        invariants,
        actions,
        source,
        apps={p: QuiescentApp(quiesce_delay=2.0) for p in universe.processes()},
    )
    outcome = cluster.adapt_to(target)
    print(f"outcome: {outcome.status} at {outcome.configuration.label()} "
          f"in {outcome.duration:g} ms ({outcome.steps_committed} steps)")

    # 6. Verify the execution against the paper's safety definition.
    report = check_safe(cluster.trace, invariants)
    print(f"safety: {report.summary()}")
    report.raise_if_unsafe()


if __name__ == "__main__":
    main()
