"""Observer-overhead benchmark: what streaming observation costs.

The observation bus puts the safety checker *inside* the execution
(every record is fed to every observer at emission time, under the trace
lock).  For that to be a production observability layer rather than a
debug mode, the cost must stay a small constant factor on the busiest
realistic workload we have — the Section 5 video scenario, whose trace
is dominated by per-packet communication records.

This benchmark runs the scenario bare (no bus) and observed (streaming
safety checker + metrics observer on the bus), asserts the wall-clock
ratio stays under a pinned bound, and records the headline numbers —
ratio, per-observer mean feed latency, rolling counters — into
``benchmarks/BENCH_obs.json``.
"""

import time
from pathlib import Path

from benchmarks.conftest import report
from repro.apps.video import VideoScenario
from repro.apps.video.scenario import VIDEO_CCS
from repro.obs import MetricsObserver, ObservationBus
from repro.safety import StreamingSafetyChecker

OBS_JSON = Path(__file__).with_name("BENCH_obs.json")

# Generous bound: the measured ratio is ~1.1x (checker ~2 us/record); the
# pin only exists to catch an accidental O(n) slip in an observer's feed
# path, so it leaves ample headroom for noisy shared CI runners.
MAX_OVERHEAD_RATIO = 2.0
ROUNDS = 3


def run_scenario(observed: bool):
    """One Section 5 run; returns (elapsed_s, bus, record_count)."""
    scenario = VideoScenario(seed=7)
    bus = None
    if observed:
        checker = StreamingSafetyChecker(
            scenario.cluster.invariants,
            ccs=VIDEO_CCS,
            universe=scenario.cluster.universe,
        )
        bus = ObservationBus(checker, MetricsObserver())
        # replay=True: the initial ConfigCommitted predates attachment.
        scenario.cluster.trace.attach_bus(bus, replay=True)
    t0 = time.perf_counter()
    scenario.run()
    elapsed = time.perf_counter() - t0
    if observed:
        assert checker.finish().ok  # the safe protocol never trips
    return elapsed, bus, len(scenario.cluster.trace)


def measure():
    bare = min(run_scenario(False)[0] for _ in range(ROUNDS))
    observed_runs = [run_scenario(True) for _ in range(ROUNDS)]
    observed = min(r[0] for r in observed_runs)
    _, bus, records = observed_runs[-1]
    return bare, observed, bus, records


def test_observer_overhead(benchmark):
    bare, observed, bus, records = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    ratio = observed / bare
    # Every record the run emitted streamed through the bus.
    assert bus.records_published == records
    observer_stats = {
        name: {"records": stats.records, "mean_us": round(stats.mean_us, 3)}
        for name, stats in bus.stats().items()
    }
    metrics = bus.finish()["MetricsObserver"]
    assert metrics.records == records
    assert metrics.comm_actions > 0 and metrics.commits > 0
    data = {
        "bare_ms": round(bare * 1e3, 2),
        "observed_ms": round(observed * 1e3, 2),
        "ratio": round(ratio, 3),
        "records": records,
        "observers": observer_stats,
        "metrics": metrics.to_json(),
    }
    lines = [
        f"bare run:     {data['bare_ms']:8.2f} ms",
        f"observed run: {data['observed_ms']:8.2f} ms "
        f"(ratio {data['ratio']:.3f}, bound {MAX_OVERHEAD_RATIO})",
        f"records:      {records} through the bus",
    ] + [
        f"  {name}: {s['records']} records, {s['mean_us']} us/record mean"
        for name, s in sorted(observer_stats.items())
    ]
    report(
        "observer overhead (Section 5 scenario)",
        "\n".join(lines),
        data=data,
        json_path=OBS_JSON,
    )
    benchmark.extra_info.update(
        {"ratio": round(ratio, 3), "records": records}
    )
    assert ratio < MAX_OVERHEAD_RATIO
