"""Frames, the synthetic camera, packetization, and reassembly.

The paper's testbed captured live webcam video; we substitute a
deterministic :class:`SyntheticCamera` whose frame payloads are a pure
function of ``(seed, frame_id)`` — so corruption anywhere downstream is
detectable by checksum, and simulation runs replay bit-identically.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.codecs.packets import Packet, data_packet


@dataclass(frozen=True)
class Frame:
    """One video frame: id + raw bytes + source checksum."""

    frame_id: int
    data: bytes
    checksum: int

    @classmethod
    def create(cls, frame_id: int, data: bytes) -> "Frame":
        return cls(frame_id=frame_id, data=data, checksum=zlib.crc32(data) & 0xFFFFFFFF)

    def verify(self) -> bool:
        return zlib.crc32(self.data) & 0xFFFFFFFF == self.checksum


class SyntheticCamera:
    """Deterministic frame source (the web camera of Figure 3)."""

    def __init__(self, seed: int = 0, frame_size: int = 256):
        if frame_size <= 0:
            raise ValueError("frame_size must be positive")
        self.seed = seed
        self.frame_size = frame_size
        self._next_frame = 0

    def capture(self) -> Frame:
        """Produce the next frame."""
        frame_id = self._next_frame
        self._next_frame += 1
        return self.frame_at(frame_id)

    def frame_at(self, frame_id: int) -> Frame:
        """The deterministic frame with a given id (pure function)."""
        rng = random.Random(f"{self.seed}:{frame_id}")
        data = bytes(rng.getrandbits(8) for _ in range(self.frame_size))
        return Frame.create(frame_id, data)

    @property
    def frames_captured(self) -> int:
        return self._next_frame


class Packetizer:
    """Video processor, outbound half: frame → checksummed chunks."""

    def __init__(self, chunk_size: int = 64):
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        self.chunk_size = chunk_size
        self._next_seq = 0

    def packetize(self, frame: Frame) -> List[Packet]:
        """Split *frame* into data packets with fresh sequence numbers."""
        data = frame.data
        chunks = [
            data[offset : offset + self.chunk_size]
            for offset in range(0, len(data), self.chunk_size)
        ] or [b""]
        packets = []
        for index, chunk in enumerate(chunks):
            packets.append(
                data_packet(
                    seq=self.allocate_seq(),
                    frame_id=frame.frame_id,
                    chunk_index=index,
                    chunk_count=len(chunks),
                    payload=chunk,
                )
            )
        return packets

    def allocate_seq(self) -> int:
        seq = self._next_seq
        self._next_seq += 1
        return seq


@dataclass
class FrameResult:
    """Outcome of reassembling one frame at a client."""

    frame_id: int
    ok: bool
    corrupt_chunks: Tuple[int, ...] = ()
    data: bytes = b""


class Reassembler:
    """Video processor, inbound half: chunks → frames with verification."""

    def __init__(self):
        self._pending: Dict[int, Dict[int, Packet]] = {}
        self.frames_ok = 0
        self.frames_corrupt = 0

    def add(self, packet: Packet) -> Optional[FrameResult]:
        """Accept one data packet; returns the frame once complete."""
        if not packet.is_data:
            return None
        chunks = self._pending.setdefault(packet.frame_id, {})
        chunks[packet.chunk_index] = packet
        if len(chunks) < packet.chunk_count:
            return None
        del self._pending[packet.frame_id]
        ordered = [chunks[i] for i in sorted(chunks)]
        corrupt = tuple(p.chunk_index for p in ordered if not p.verify())
        ok = not corrupt
        if ok:
            self.frames_ok += 1
        else:
            self.frames_corrupt += 1
        return FrameResult(
            frame_id=packet.frame_id,
            ok=ok,
            corrupt_chunks=corrupt,
            data=b"".join(p.payload for p in ordered) if ok else b"",
        )

    @property
    def pending_frames(self) -> int:
        return len(self._pending)
