"""Path-quantified temporal verification over the Safe Adaptation Graph.

Hufflen's reconfiguration-path checking (arXiv:1703.07036) asks whether a
property holds along *sets* of reconfiguration paths, not just the one
path a live trace happens to take.  :func:`verify_paths` decides exactly
that over our SAG: "along **every** (or **some**) k-best safe adaptation
path from S to T, φ holds at each committed configuration".

The quantification domain is the k minimum-cost loopless paths (Yen),
k defaulting to :data:`DEFAULT_K` — the same alternates the §4.4 failure
cascade would re-route through, so a property verified here is verified
for every path the manager may actually commit.

Two execution modes, one verdict semantics:

* **eager** (≤ :data:`~repro.core.planner.LAZY_PLAN_COMPONENTS`
  components): walk :meth:`AdaptationPlanner.plan_k`'s CSR Yen paths;
* **lazy** (above the cap): :meth:`AdaptationPlanner.lazy_plan_k` runs
  the same Yen candidate loop over the :class:`~repro.core.sag.LazySAG`
  frontier with an expansion budget — verdicts are tri-state
  (``holds=None`` when the budget ran out before a decision), and
  early exits still decide exactly: one violating path refutes ∀, one
  satisfying path proves ∃, budget or not.

On failure the counterexample is **minimized to the first violating
prefix**: the returned plan stops at the first committed configuration
where φ is false — the shortest replayable witness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.planner import (
    LAZY_PLAN_COMPONENTS,
    AdaptationPlan,
    AdaptationPlanner,
)
from repro.ltl.ast import PFormula
from repro.ltl.compile import CompiledProperty

#: default quantification width: "every k-best path" with this k
DEFAULT_K = 8
#: default node budget for one lazy path-set enumeration; exhausting it
#: yields an inconclusive (``holds=None``) verdict, never a wrong one
LAZY_VERIFY_EXPANSIONS = 20_000

_QUANTIFIERS = ("all", "exists")


@dataclass(frozen=True)
class PathVerdict:
    """Outcome of one path-quantified check.

    ``holds`` is tri-state: ``True``/``False`` are proven; ``None``
    means the lazy expansion budget ran out before the path set could be
    enumerated far enough to decide (never emitted by the eager mode).
    """

    holds: Optional[bool]
    quantifier: str
    k: int
    #: paths actually evaluated (≤ k: fewer exist, or early exit decided)
    paths_checked: int
    #: the enumerated path set covered all k-best paths that exist
    complete: bool
    #: "eager" (CSR Yen) or "lazy" (budget-bounded frontier Yen)
    mode: str
    #: ∀-refutation, minimized to the first violating prefix
    counterexample: Optional[AdaptationPlan] = None
    #: index into the counterexample's configurations where φ first fails
    violation_index: Optional[int] = None
    #: ∃-witness: a full path along which φ held at every configuration
    witness: Optional[AdaptationPlan] = None
    reason: str = ""


def check_plan(
    compiled: CompiledProperty,
    planner: AdaptationPlanner,
    plan: AdaptationPlan,
) -> Optional[int]:
    """First index in ``plan.configurations`` violating φ, else ``None``."""
    mask_of = planner.universe.mask_of
    return compiled.first_violation(
        [mask_of(config) for config in plan.configurations]
    )


def _minimized(plan: AdaptationPlan, violation_index: int) -> AdaptationPlan:
    """Truncate a violating plan to its first violating prefix."""
    if violation_index >= len(plan.steps):
        return plan  # the violation is at the final configuration
    steps = plan.steps[:violation_index]
    target = plan.source if not steps else steps[-1].target
    return AdaptationPlan(
        source=plan.source,
        target=target,
        steps=steps,
        total_cost=sum(step.action.cost for step in steps),
    )


def verify_paths(
    planner: AdaptationPlanner,
    source,
    target,
    phi: PFormula,
    quantifier: str = "all",
    k: Optional[int] = None,
    *,
    lazy: Optional[bool] = None,
    max_expansions: Optional[int] = None,
    compiled: Optional[CompiledProperty] = None,
) -> PathVerdict:
    """Decide φ along every/some k-best safe path from *source* to *target*.

    Args:
        planner: the spec's planner (its caches are shared and reused).
        source, target: safe endpoint configurations (unsafe ones raise
            :class:`~repro.errors.UnsafeConfigurationError`).
        phi: the ptLTL property, evaluated at each committed
            configuration along each path (source first).
        quantifier: ``"all"`` (∀ paths) or ``"exists"`` (∃ path).
        k: path-set width; ``None`` means :data:`DEFAULT_K`.
        lazy: force the frontier mode (or eager with ``False``);
            ``None`` routes by universe size exactly as planning does.
        max_expansions: lazy-mode node budget
            (default :data:`LAZY_VERIFY_EXPANSIONS`).
        compiled: a pre-compiled property for this planner's universe
            (the planning service's per-digest cache passes one); must
            have been compiled against ``planner.universe.atom_bits``.

    Returns:
        A :class:`PathVerdict`.  With zero safe paths between the
        endpoints, ∀ holds vacuously and ∃ is false — both stated in
        ``reason``.
    """
    if quantifier not in _QUANTIFIERS:
        raise ValueError(
            f"quantifier must be one of {_QUANTIFIERS}, got {quantifier!r}"
        )
    width = DEFAULT_K if k is None else k
    if width <= 0:
        raise ValueError(f"k must be positive, got {width}")
    if compiled is None:
        compiled = CompiledProperty(phi, planner.universe.atom_bits)
    use_lazy = (
        len(planner.universe) > LAZY_PLAN_COMPONENTS if lazy is None else lazy
    )
    mode = "lazy" if use_lazy else "eager"
    if use_lazy:
        budget = (
            LAZY_VERIFY_EXPANSIONS if max_expansions is None else max_expansions
        )
        plans, complete = planner.lazy_plan_k(
            source, target, width, max_expansions=budget
        )
    else:
        plans = planner.plan_k(source, target, width)
        complete = True
    return _decide(
        compiled, planner, plans, complete, quantifier, width, mode
    )


def _decide(
    compiled: CompiledProperty,
    planner: AdaptationPlanner,
    plans: Sequence[AdaptationPlan],
    complete: bool,
    quantifier: str,
    width: int,
    mode: str,
) -> PathVerdict:
    checked = 0
    for plan in plans:
        violation = check_plan(compiled, planner, plan)
        checked += 1
        if quantifier == "all" and violation is not None:
            return PathVerdict(
                holds=False,
                quantifier=quantifier,
                k=width,
                paths_checked=checked,
                complete=complete,
                mode=mode,
                counterexample=_minimized(plan, violation),
                violation_index=violation,
                reason=(
                    f"violated on path {checked} "
                    f"(cost {plan.total_cost:g}) at configuration "
                    f"{violation + 1} of {len(plan.configurations)}"
                ),
            )
        if quantifier == "exists" and violation is None:
            return PathVerdict(
                holds=True,
                quantifier=quantifier,
                k=width,
                paths_checked=checked,
                complete=complete,
                mode=mode,
                witness=plan,
                reason=f"path {checked} (cost {plan.total_cost:g}) satisfies φ",
            )
    # no early exit: the verdict rests on having seen the whole path set
    if not complete:
        return PathVerdict(
            holds=None,
            quantifier=quantifier,
            k=width,
            paths_checked=checked,
            complete=False,
            mode=mode,
            reason=(
                f"inconclusive: expansion budget exhausted after "
                f"{checked} path(s)"
            ),
        )
    if not plans:
        reason = "no safe path between the endpoints"
        if quantifier == "all":
            reason += " (holds vacuously)"
        return PathVerdict(
            holds=(quantifier == "all"),
            quantifier=quantifier,
            k=width,
            paths_checked=0,
            complete=True,
            mode=mode,
            reason=reason,
        )
    if quantifier == "all":
        return PathVerdict(
            holds=True,
            quantifier=quantifier,
            k=width,
            paths_checked=checked,
            complete=True,
            mode=mode,
            reason=f"holds along every one of the {checked} best path(s)",
        )
    return PathVerdict(
        holds=False,
        quantifier=quantifier,
        k=width,
        paths_checked=checked,
        complete=True,
        mode=mode,
        reason=f"violated on every one of the {checked} best path(s)",
    )
