"""Simulated network: directed channels, loss/delay models, multicast.

Models the paper's communication substrate (§3): components/processes
communicate over *directed channels*.  Each ``(source, destination)`` pair
has a delay model and a loss model; channels are FIFO by default (a
TCP-like property the manager/agent coordination in §5 assumes), and can
be made non-FIFO to model datagram traffic.  Partitions block a channel
entirely until healed — the "long-term network failure" of §4.4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.errors import SimulationError
from repro.protocol.messages import Envelope
from repro.sim.kernel import Simulator


# -- delay models -----------------------------------------------------------------

class DelayModel:
    """Samples per-message propagation delay."""

    def sample(self, rng) -> float:
        raise NotImplementedError


@dataclass(frozen=True)
class FixedDelay(DelayModel):
    delay: float = 1.0

    def sample(self, rng) -> float:
        return self.delay


@dataclass(frozen=True)
class UniformDelay(DelayModel):
    low: float = 0.5
    high: float = 2.0

    def sample(self, rng) -> float:
        return rng.uniform(self.low, self.high)


# -- loss models ------------------------------------------------------------------

class LossModel:
    """Decides whether a given message is dropped."""

    def drops(self, rng) -> bool:
        raise NotImplementedError


@dataclass(frozen=True)
class NoLoss(LossModel):
    def drops(self, rng) -> bool:
        return False


@dataclass(frozen=True)
class BernoulliLoss(LossModel):
    """Independent per-message drop probability."""

    probability: float

    def __post_init__(self):
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"loss probability must be in [0,1], got {self.probability}")

    def drops(self, rng) -> bool:
        return rng.random() < self.probability


class BurstLoss(LossModel):
    """Gilbert–Elliott-style two-state burst loss.

    In the *good* state messages pass; in the *bad* state they drop.  The
    chain transitions good→bad with ``p_enter`` per message and bad→good
    with ``p_exit`` — modelling the bursty outages typical at the wireless
    edge the paper targets.
    """

    def __init__(self, p_enter: float = 0.01, p_exit: float = 0.25):
        if not (0 <= p_enter <= 1 and 0 <= p_exit <= 1):
            raise ValueError("burst probabilities must be in [0,1]")
        self.p_enter = p_enter
        self.p_exit = p_exit
        self._bad = False

    def drops(self, rng) -> bool:
        if self._bad:
            if rng.random() < self.p_exit:
                self._bad = False
        else:
            if rng.random() < self.p_enter:
                self._bad = True
        return self._bad


@dataclass
class _ChannelConfig:
    delay: DelayModel
    loss: LossModel
    fifo: bool = True


class Network:
    """Message fabric connecting simulated processes.

    Processes register a handler; :meth:`send` routes an
    :class:`~repro.protocol.messages.Envelope` through the channel's loss
    and delay models and schedules delivery on the simulator.
    """

    def __init__(
        self,
        sim: Simulator,
        default_delay: Optional[DelayModel] = None,
        default_loss: Optional[LossModel] = None,
    ):
        self.sim = sim
        self.default_delay = default_delay or FixedDelay(1.0)
        self.default_loss = default_loss or NoLoss()
        self._handlers: Dict[str, Callable[[Envelope], None]] = {}
        self._channels: Dict[Tuple[str, str], _ChannelConfig] = {}
        self._partitioned: Set[FrozenSet[str]] = set()
        self._groups: Dict[str, List[str]] = {}
        self._last_delivery: Dict[Tuple[str, str], float] = {}
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0

    # -- registration ----------------------------------------------------------
    def register(self, process_id: str, handler: Callable[[Envelope], None]) -> None:
        if process_id in self._handlers:
            raise SimulationError(f"process {process_id!r} already registered")
        self._handlers[process_id] = handler

    def set_channel(
        self,
        source: str,
        destination: str,
        delay: Optional[DelayModel] = None,
        loss: Optional[LossModel] = None,
        fifo: bool = True,
    ) -> None:
        """Override the models for one directed channel."""
        self._channels[(source, destination)] = _ChannelConfig(
            delay=delay or self.default_delay,
            loss=loss or self.default_loss,
            fifo=fifo,
        )

    # -- partitions ----------------------------------------------------------------
    def partition(self, a: str, b: str) -> None:
        """Block all traffic between *a* and *b* (both directions)."""
        self._partitioned.add(frozenset((a, b)))

    def heal(self, a: str, b: str) -> None:
        self._partitioned.discard(frozenset((a, b)))

    def heal_all(self) -> None:
        self._partitioned.clear()

    def is_partitioned(self, a: str, b: str) -> bool:
        return frozenset((a, b)) in self._partitioned

    # -- multicast ------------------------------------------------------------------
    def group_join(self, group: str, process_id: str) -> None:
        members = self._groups.setdefault(group, [])
        if process_id not in members:
            members.append(process_id)

    def group_leave(self, group: str, process_id: str) -> None:
        members = self._groups.get(group, [])
        if process_id in members:
            members.remove(process_id)

    def group_members(self, group: str) -> Tuple[str, ...]:
        return tuple(self._groups.get(group, ()))

    def multicast(self, source: str, group: str, message) -> None:
        """Send *message* to every group member except the sender."""
        for member in self.group_members(group):
            if member != source:
                self.send(Envelope(source=source, destination=member, message=message))

    # -- transmission ----------------------------------------------------------------
    def send(self, envelope: Envelope) -> None:
        """Route one envelope; may drop, delays, preserves FIFO if configured."""
        self.messages_sent += 1
        src, dst = envelope.source, envelope.destination
        if dst not in self._handlers:
            raise SimulationError(f"no process registered as {dst!r}")
        if self.is_partitioned(src, dst):
            self.messages_dropped += 1
            return
        config = self._channels.get((src, dst))
        delay_model = config.delay if config else self.default_delay
        loss_model = config.loss if config else self.default_loss
        fifo = config.fifo if config else True
        if loss_model.drops(self.sim.rng):
            self.messages_dropped += 1
            return
        deliver_at = self.sim.now + delay_model.sample(self.sim.rng)
        if fifo:
            last = self._last_delivery.get((src, dst), -1.0)
            if deliver_at < last:
                deliver_at = last
            self._last_delivery[(src, dst)] = deliver_at

        def deliver() -> None:
            self.messages_delivered += 1
            self._handlers[dst](envelope)

        self.sim.schedule(deliver_at - self.sim.now, deliver)
