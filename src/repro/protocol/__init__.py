"""Realization-phase protocol (paper §4.3–§4.4, Figures 1–2).

The adaptation manager and per-process agents are implemented *sans-io*:
pure state machines that consume events (messages, timeouts, host
callbacks) and emit :mod:`effects <repro.protocol.effects>` (send a
message, set a timer, block the process, execute an in-action...).  The
same machines are driven by the discrete-event simulator
(:mod:`repro.sim.cluster`) for deterministic, fault-injected testing, and
by the threaded live runtime (:mod:`repro.runtime`) for real hot swaps.
"""

from repro.protocol.messages import (
    AdaptDone,
    Envelope,
    Message,
    ResetCmd,
    ResetDone,
    ResumeCmd,
    ResumeDone,
    RollbackCmd,
    RollbackDone,
    StatusQuery,
    StatusReport,
)
from repro.protocol.effects import (
    AdaptationAborted,
    AdaptationComplete,
    AwaitUser,
    BlockProcess,
    CancelTimer,
    Effect,
    ExecuteInAction,
    ExecutePostAction,
    RequestReplan,
    ResumeProcess,
    Send,
    SetTimer,
    StartReset,
    StepCommitted,
    StepRolledBack,
    UndoInAction,
)
from repro.protocol.agent import AgentMachine, AgentState
from repro.protocol.manager import ManagerMachine, ManagerState
from repro.protocol.failures import FailurePolicy, ReplanKind

__all__ = [
    "Message",
    "Envelope",
    "ResetCmd",
    "ResetDone",
    "AdaptDone",
    "ResumeCmd",
    "ResumeDone",
    "RollbackCmd",
    "RollbackDone",
    "StatusQuery",
    "StatusReport",
    "Effect",
    "Send",
    "SetTimer",
    "CancelTimer",
    "StartReset",
    "BlockProcess",
    "ExecuteInAction",
    "ExecutePostAction",
    "UndoInAction",
    "ResumeProcess",
    "StepCommitted",
    "StepRolledBack",
    "RequestReplan",
    "AdaptationComplete",
    "AdaptationAborted",
    "AwaitUser",
    "AgentMachine",
    "AgentState",
    "ManagerMachine",
    "ManagerState",
    "FailurePolicy",
    "ReplanKind",
]
