"""Unit tests for Dijkstra shortest paths."""

import pytest

from repro.graphs import Digraph, shortest_path
from repro.graphs.dijkstra import Path, dijkstra, reachable_from


@pytest.fixture
def diamond():
    #   a -1- b -1- d
    #    \-3----c--/ (c→d costs 0.5)
    g = Digraph()
    g.add_edge("a", "b", "ab", 1.0)
    g.add_edge("b", "d", "bd", 1.0)
    g.add_edge("a", "c", "ac", 3.0)
    g.add_edge("c", "d", "cd", 0.5)
    return g


class TestShortestPath:
    def test_picks_cheapest(self, diamond):
        path = shortest_path(diamond, "a", "d")
        assert path is not None
        assert path.cost == 2.0
        assert path.labels == ("ab", "bd")
        assert path.nodes == ("a", "b", "d")

    def test_source_equals_target(self, diamond):
        path = shortest_path(diamond, "a", "a")
        assert path is not None
        assert path.cost == 0.0
        assert path.labels == ()

    def test_unreachable_returns_none(self):
        g = Digraph()
        g.add_node("a")
        g.add_node("z")
        assert shortest_path(g, "a", "z") is None

    def test_direction_respected(self, diamond):
        assert shortest_path(diamond, "d", "a") is None

    def test_unknown_nodes_raise(self, diamond):
        with pytest.raises(KeyError):
            shortest_path(diamond, "nope", "d")
        with pytest.raises(KeyError):
            shortest_path(diamond, "a", "nope")

    def test_zero_weight_edges(self):
        g = Digraph()
        g.add_edge("a", "b", "e", 0.0)
        path = shortest_path(g, "a", "b")
        assert path.cost == 0.0

    def test_tie_breaks_by_fewer_hops(self):
        g = Digraph()
        g.add_edge("a", "b", "ab", 1.0)
        g.add_edge("b", "c", "bc", 1.0)
        g.add_edge("a", "c", "direct", 2.0)  # same cost, fewer hops
        path = shortest_path(g, "a", "c")
        assert path.labels == ("direct",)

    def test_parallel_edges_use_cheapest(self):
        g = Digraph()
        g.add_edge("a", "b", "slow", 5.0)
        g.add_edge("a", "b", "fast", 1.0)
        path = shortest_path(g, "a", "b")
        assert path.labels == ("fast",)


class TestDijkstraMap:
    def test_distances_complete(self, diamond):
        dist, _ = dijkstra(diamond, "a")
        assert dist == {"a": 0.0, "b": 1.0, "c": 3.0, "d": 2.0}

    def test_reachable_from(self, diamond):
        assert set(reachable_from(diamond, "c")) == {"c", "d"}


class TestPathInvariants:
    def test_path_shape_validated(self):
        with pytest.raises(ValueError):
            Path(nodes=("a",), edges=(), cost=0.0).__class__(
                nodes=("a", "b"), edges=(), cost=0.0
            )

    def test_labels_and_endpoints(self, diamond):
        path = shortest_path(diamond, "a", "d")
        assert path.source == "a"
        assert path.target == "d"
        assert len(path) == 2
