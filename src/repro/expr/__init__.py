"""Dependency-expression language (paper §3.1).

Dependency relationships are boolean predicates over component names.  The
paper writes them with "·" (and), "∨" (or), "⊕" (xor), "→" (dependency /
implication) and "⊗"/"N" (exclusively select one).  This package provides:

* an immutable AST (:mod:`repro.expr.ast`) with evaluation over a
  configuration (a set of component names assigned *true*);
* a parser (:mod:`repro.expr.parser`) for an ASCII surface syntax::

      E1 -> (D1 | D2) & D4
      one_of(D1, D2, D3)
      xor(E1, E2)           # equivalently  E1 ^ E2
      !A | B

Operator precedence, loosest to tightest: ``->`` (right associative),
``|``, ``^``, ``&``, ``!``.
"""

from repro.expr.ast import (
    And,
    Atom,
    Expr,
    FALSE,
    Implies,
    Not,
    OneOf,
    Or,
    TRUE,
    Xor,
    all_of,
    any_of,
    exactly_one,
    to_text,
)
from repro.expr.parser import parse
from repro.expr.compile import (
    compile_all,
    compile_all_partial,
    compile_conjunction,
    compile_expr,
    compile_partial,
)

__all__ = [
    "compile_expr",
    "compile_all",
    "compile_all_partial",
    "compile_conjunction",
    "compile_partial",
    "Expr",
    "Atom",
    "Not",
    "And",
    "Or",
    "Xor",
    "Implies",
    "OneOf",
    "TRUE",
    "FALSE",
    "all_of",
    "any_of",
    "exactly_one",
    "to_text",
    "parse",
]
