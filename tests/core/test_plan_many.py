"""Batched planning (plan_many), SPT cache behavior, and cache correctness."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bench.workloads import random_system
from repro.core.actions import AdaptiveAction
from repro.core.planner import AdaptationPlanner
from repro.errors import NoSafePathError, UnsafeConfigurationError
from repro.graphs import shortest_path


def try_plan(planner, source, target):
    try:
        return planner.plan(source, target)
    except (NoSafePathError, UnsafeConfigurationError):
        return None


def safe_configs(planner):
    return planner.space.enumerate()


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=40, deadline=None)
def test_plan_matches_dict_graph_reference(seed):
    """CSR-routed plan() is pinned to shortest_path over the dict SAG."""
    system = random_system(seed)
    planner = AdaptationPlanner(system.universe, system.invariants, system.actions)
    configs = safe_configs(planner)
    if not configs:
        return
    for source in configs[:4]:
        for target in configs[:6]:
            expected = shortest_path(planner.sag.graph, source, target)
            got = try_plan(planner, source, target)
            if expected is None:
                assert got is None
            else:
                assert got is not None
                assert got.total_cost == expected.cost
                assert got.action_ids == expected.labels


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=40, deadline=None)
def test_plan_many_equals_sequential_plan(seed):
    system = random_system(seed)
    planner = AdaptationPlanner(system.universe, system.invariants, system.actions)
    configs = safe_configs(planner)
    if len(configs) < 2:
        return
    pairs = [
        (configs[i % len(configs)], configs[(i * 3 + 1) % len(configs)])
        for i in range(10)
    ]
    fresh = AdaptationPlanner(system.universe, system.invariants, system.actions)
    batched = planner.plan_many(pairs)
    assert len(batched) == len(pairs)
    for (source, target), plan in zip(pairs, batched):
        expected = try_plan(fresh, source, target)
        if expected is None:
            assert plan is None
        else:
            assert plan is not None
            assert plan.action_ids == expected.action_ids
            assert plan.total_cost == expected.total_cost


def test_plan_many_writes_through_to_plan_cache(planner, source, target):
    results = planner.plan_many([(source, target)])
    assert results[0] is not None
    hit, cached = planner.peek_plan(source, target)
    assert hit and cached is results[0]
    # and plan() serves the same object from the cache
    assert planner.plan(source, target) is results[0]


def test_spt_cache_is_lru_bounded(universe, invariants, actions):
    planner = AdaptationPlanner(universe, invariants, actions, spt_cache_size=2)
    configs = safe_configs(planner)
    assert len(configs) >= 4
    for config in configs[:4]:
        planner.plan_many([(config, configs[0])])
    assert len(planner._spt_cache) == 2
    # most recently used sources survive
    assert configs[3] in planner._spt_cache


def test_cached_none_is_distinct_from_cache_miss(planner):
    configs = safe_configs(planner)
    # the video SAG is one-way: target bits 1010010 cannot reach source
    unreachable = [
        (a, b)
        for a in configs
        for b in configs
        if shortest_path(planner.sag.graph, a, b) is None
    ]
    assert unreachable, "workload must contain an unreachable pair"
    source, target = unreachable[0]
    miss_hit, _ = planner.peek_plan(source, target)
    assert not miss_hit  # never planned: a miss, not a cached None
    assert planner.plan_many([(source, target)]) == [None]
    hit, cached = planner.peek_plan(source, target)
    assert hit and cached is None  # now a cached unreachable verdict
    # plan() answers from the cached None without re-searching: breaking
    # the tree builder proves no fresh Dijkstra runs
    planner._spt_for = None  # type: ignore[method-assign]
    with pytest.raises(NoSafePathError):
        planner.plan(source, target)


def test_reset_caches_drops_spt_and_csr_state(planner, source, target):
    planner.plan(source, target)
    assert planner._spt_cache and planner._plan_cache
    old_sag = planner.sag
    assert old_sag.csr is old_sag.csr  # cached view
    planner.reset_caches()
    assert not planner._spt_cache
    assert not planner._plan_cache
    assert not planner._plan_k_cache
    assert planner.sag is not old_sag


def test_mutating_action_library_never_serves_stale_path(
    universe, invariants, actions, source, target
):
    """The regression the satellite asks for: add a cheaper action, replan."""
    planner = AdaptationPlanner(universe, invariants, actions)
    before = planner.plan(source, target)
    assert before.total_cost == 50.0
    # a direct (legal) jump that the SAG did not contain before
    actions.add(
        AdaptiveAction(
            "A99",
            removes=source.members - target.members,
            adds=target.members - source.members,
            cost=1.0,
            description="atomic swap for the regression test",
        )
    )
    planner.reset_caches()
    after = planner.plan(source, target)
    assert after.action_ids == ("A99",)
    assert after.total_cost == 1.0
    # batched and k-best answers rebuilt too — no stale tree anywhere
    assert planner.plan_many([(source, target)])[0].action_ids == ("A99",)
    assert planner.plan_k(source, target, 2)[0].action_ids == ("A99",)


def test_plan_many_rejects_unsafe_endpoints(planner, universe, source):
    from repro.core.model import Configuration

    unsafe = Configuration(frozenset())  # violates one_of(D1,D2,D3) etc.
    with pytest.raises(UnsafeConfigurationError):
        planner.plan_many([(source, unsafe)])
