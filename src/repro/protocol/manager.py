"""Adaptation-manager state machine — Figure 2 of the paper, sans-io.

The manager walks the Minimum Adaptation Path one step at a time::

    running → preparing → adapting → adapted → resuming → resumed → ...

sending ``reset`` to every participating agent, collecting ``adapt done``,
sending ``resume``, collecting ``resume done``, then moving to the next
step until the target configuration is reached.

Failure handling (§4.4) is timeout-driven:

* **before** the first ``resume`` of a step — abort: send ``rollback`` to
  all participants, collect ``rollback done``, then escalate through the
  paper's cascade: retry the step once → ask for the next minimum
  adaptation path → attempt to return to the source configuration → park
  and await user intervention;
* **after** a ``resume`` went out — run to completion: keep retransmitting
  until every agent resumed (bounded by a large safety valve).

Planning lives outside the machine: when an alternate path is needed the
manager emits :class:`~repro.protocol.effects.RequestReplan` and the
driver answers via :meth:`ManagerMachine.on_new_plan` /
:meth:`ManagerMachine.on_no_plan`.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.actions import AdaptiveAction
from repro.core.model import ComponentUniverse, Configuration
from repro.core.planner import AdaptationPlan, PlanStep
from repro.errors import IllegalTransitionError
from repro.protocol.effects import (
    AdaptationAborted,
    AdaptationComplete,
    AwaitUser,
    CancelTimer,
    Effect,
    RequestReplan,
    Send,
    SetTimer,
    StepCommitted,
    StepRolledBack,
)
from repro.protocol.failures import FailurePolicy, ReplanKind
from repro.protocol.messages import (
    AdaptDone,
    FlushRequest,
    Message,
    ResetCmd,
    ResetDone,
    ResumeCmd,
    ResumeDone,
    RollbackCmd,
    RollbackDone,
    StatusReport,
    step_key,
)

# Decides the drain-marker roles for an action: given the action and its
# participant set, returns (injectors, awaiters) — processes that must push
# a FLUSH marker into their outgoing stream when blocking, and processes
# whose local safe state additionally requires having seen that marker
# (the global safe condition of §3.2).
FlushProvider = Callable[
    [AdaptiveAction, FrozenSet[str]], Tuple[FrozenSet[str], FrozenSet[str]]
]


def no_flush(
    action: AdaptiveAction, participants: FrozenSet[str]
) -> Tuple[FrozenSet[str], FrozenSet[str]]:
    """Default flush provider: local quiescence only, no drain marker."""
    return frozenset(), frozenset()


class ManagerState(enum.Enum):
    """Figure 2's states plus the failure-handling ones."""

    RUNNING = "running"
    PREPARING = "preparing"
    ADAPTING = "adapting"
    ADAPTED = "adapted"
    RESUMING = "resuming"
    RESUMED = "resumed"
    ROLLING_BACK = "rolling_back"
    AWAIT_USER = "await_user"

TIMER_PHASE = "phase"
TIMER_RETRANSMIT = "retransmit"


class ManagerMachine:
    """Sans-io adaptation manager for one adaptation request at a time."""

    def __init__(
        self,
        universe: ComponentUniverse,
        policy: Optional[FailurePolicy] = None,
        flush_provider: FlushProvider = no_flush,
        manager_id: str = "manager",
    ):
        self.universe = universe
        self.policy = policy or FailurePolicy()
        self.flush_provider = flush_provider
        self.manager_id = manager_id

        self.state = ManagerState.RUNNING
        self.plan: Optional[AdaptationPlan] = None
        self.plan_id = ""
        self._plan_counter = 0
        self.step_index = 0
        self.attempt = 0
        self.committed: Optional[Configuration] = None
        self.original_source: Optional[Configuration] = None
        self.target: Optional[Configuration] = None
        self.returning = False  # True once we gave up and head back to source

        self._participants: Tuple[str, ...] = ()
        self._pending_reset: Set[str] = set()
        self._pending_adapt: Set[str] = set()
        self._pending_resume: Set[str] = set()
        self._pending_rollback: Set[str] = set()
        self._resume_sent = False
        self._retransmits = 0
        self._alternates_used = 0
        self._failed_edges: List[Tuple[Configuration, str]] = []
        self._armed_timers: Set[str] = set()
        self._current_key = ""
        self._inject: FrozenSet[str] = frozenset()
        self._await: FrozenSet[str] = frozenset()
        self.steps_committed = 0
        self.steps_rolled_back = 0

    # ------------------------------------------------------------------ helpers
    @property
    def current_step(self) -> PlanStep:
        assert self.plan is not None
        return self.plan.steps[self.step_index]

    def _arm(self, name: str, delay: float) -> SetTimer:
        self._armed_timers.add(name)
        return SetTimer(name, delay)

    def _cancel_all_timers(self) -> List[Effect]:
        effects: List[Effect] = [CancelTimer(name) for name in sorted(self._armed_timers)]
        self._armed_timers.clear()
        return effects

    def _reset_cmd(self, process: str) -> Send:
        step = self.current_step
        return Send(
            process,
            ResetCmd(
                step_key=self._current_key,
                action=step.action,
                participants=frozenset(self._participants),
                await_flush=process in self._await,
                inject_flush=process in self._inject,
            ),
        )

    # ------------------------------------------------------------------ entry point
    def start(self, plan: AdaptationPlan) -> List[Effect]:
        """Begin executing *plan* (the system must be at ``plan.source``)."""
        if self.state != ManagerState.RUNNING:
            raise IllegalTransitionError(
                f"manager busy (state {self.state.value}); cannot start a new plan"
            )
        self._plan_counter += 1
        self.plan = plan
        self.plan_id = f"plan{self._plan_counter}"
        self.step_index = 0
        self.attempt = 0
        self.committed = plan.source
        self.original_source = plan.source
        self.target = plan.target
        self.returning = False
        self._alternates_used = 0
        self._failed_edges = []
        self.steps_committed = 0
        self.steps_rolled_back = 0
        if not plan.steps:
            return [AdaptationComplete(configuration=plan.target, total_steps=0)]
        return self._begin_step()

    def _begin_step(self) -> List[Effect]:
        assert self.plan is not None
        step = self.current_step
        self._current_key = step_key(self.plan_id, self.step_index, self.attempt)
        participants = sorted(step.participants(self.universe))
        self._participants = tuple(participants)
        self._inject, self._await = self.flush_provider(
            step.action, frozenset(participants)
        )
        self._pending_reset = set(participants)
        self._pending_adapt = set(participants)
        self._pending_resume = set(participants)
        self._pending_rollback = set()
        self._resume_sent = False
        self._retransmits = 0
        self.state = ManagerState.ADAPTING
        effects: List[Effect] = self._cancel_all_timers()
        # Non-participant flush injectors (an upstream whose own components
        # are untouched) are asked out-of-band to push a drain marker.
        effects.extend(
            Send(p, FlushRequest(step_key=self._current_key))
            for p in sorted(self._inject - set(participants))
        )
        effects.extend(self._reset_cmd(p) for p in participants)
        effects.append(self._arm(TIMER_PHASE, self.policy.reset_timeout))
        effects.append(self._arm(TIMER_RETRANSMIT, self.policy.retransmit_interval))
        return effects

    # ------------------------------------------------------------------ messages
    def on_message(self, message: Message) -> List[Effect]:
        """Dispatch a message from an agent."""
        if isinstance(message, StatusReport):
            return []
        if message.step_key != self._current_key:
            return []  # stale answer from an earlier attempt
        if isinstance(message, ResetDone):
            self._pending_reset.discard(message.process)
            return []
        if isinstance(message, AdaptDone):
            return self._on_adapt_done(message)
        if isinstance(message, ResumeDone):
            return self._on_resume_done(message)
        if isinstance(message, RollbackDone):
            return self._on_rollback_done(message)
        raise IllegalTransitionError(
            f"manager: unexpected message {type(message).__name__}"
        )

    def _on_adapt_done(self, message: AdaptDone) -> List[Effect]:
        if self.state != ManagerState.ADAPTING:
            return []
        self._pending_reset.discard(message.process)
        self._pending_adapt.discard(message.process)
        if self._pending_adapt:
            return []
        # All in-actions done: Fig. 2's adapted state, then send resumes.
        self.state = ManagerState.ADAPTED
        self._resume_sent = True
        self._retransmits = 0
        self.state = ManagerState.RESUMING
        effects: List[Effect] = self._cancel_all_timers()
        effects.extend(
            Send(p, ResumeCmd(step_key=self._current_key)) for p in self._participants
        )
        effects.append(self._arm(TIMER_PHASE, self.policy.resume_timeout))
        effects.append(self._arm(TIMER_RETRANSMIT, self.policy.retransmit_interval))
        return effects

    def _on_resume_done(self, message: ResumeDone) -> List[Effect]:
        if self.state != ManagerState.RESUMING:
            return []
        self._pending_resume.discard(message.process)
        if self._pending_resume:
            return []
        return self._commit_step()

    def _commit_step(self) -> List[Effect]:
        assert self.plan is not None
        step = self.current_step
        self.state = ManagerState.RESUMED
        self.committed = step.target
        self.steps_committed += 1
        effects: List[Effect] = self._cancel_all_timers()
        effects.append(StepCommitted(step=step, step_key=self._current_key))
        self.step_index += 1
        self.attempt = 0
        if self.step_index < len(self.plan.steps):
            # "more adaptation steps remaining ... prepare for the next step"
            self.state = ManagerState.PREPARING
            effects.extend(self._begin_step())
            return effects
        self.state = ManagerState.RUNNING
        if self.returning:
            effects.append(
                AdaptationAborted(
                    configuration=self.committed,
                    reason="all paths to the target failed; returned to source",
                )
            )
        else:
            effects.append(
                AdaptationComplete(
                    configuration=self.committed,
                    total_steps=self.steps_committed,
                )
            )
        return effects

    def _on_rollback_done(self, message: RollbackDone) -> List[Effect]:
        if self.state != ManagerState.ROLLING_BACK:
            return []
        self._pending_rollback.discard(message.process)
        if self._pending_rollback:
            return []
        return self._after_rollback()

    # ------------------------------------------------------------------ timeouts
    def on_timeout(self, name: str) -> List[Effect]:
        """A timer armed by this machine fired."""
        if name not in self._armed_timers:
            return []  # stale timer the driver failed to cancel
        self._armed_timers.discard(name)
        if self.state == ManagerState.ADAPTING:
            return self._timeout_adapting(name)
        if self.state == ManagerState.RESUMING:
            return self._timeout_resuming(name)
        if self.state == ManagerState.ROLLING_BACK:
            return self._timeout_rolling_back(name)
        return []

    def _timeout_adapting(self, name: str) -> List[Effect]:
        if name == TIMER_PHASE:
            # Reset/adapt phase expired before all adapt-dones: loss-of-message
            # or fail-to-reset.  No resume went out yet, so abort the step.
            return self._initiate_rollback("phase timeout before resume")
        # retransmit timer: re-send resets to whoever has not adapted yet
        self._retransmits += 1
        if self._retransmits > self.policy.max_retransmits:
            return self._initiate_rollback("retransmission budget exhausted")
        effects: List[Effect] = [
            Send(p, FlushRequest(step_key=self._current_key))
            for p in sorted(self._inject - set(self._participants))
        ]
        effects.extend(self._reset_cmd(p) for p in sorted(self._pending_adapt))
        effects.append(self._arm(TIMER_RETRANSMIT, self.policy.retransmit_interval))
        return effects

    def _timeout_resuming(self, name: str) -> List[Effect]:
        # A resume was sent: run to completion — keep retransmitting, bounded
        # only by the large post-resume safety valve.
        self._retransmits += 1
        if self._retransmits > self.policy.max_post_resume_retransmits:
            self.state = ManagerState.AWAIT_USER
            effects = self._cancel_all_timers()
            effects.append(
                AwaitUser(
                    configuration=self.committed,
                    reason="agents unreachable while completing a resumed step",
                )
            )
            return effects
        effects = [
            Send(p, ResumeCmd(step_key=self._current_key))
            for p in sorted(self._pending_resume)
        ]
        timer = TIMER_PHASE if name == TIMER_PHASE else TIMER_RETRANSMIT
        delay = (
            self.policy.resume_timeout
            if name == TIMER_PHASE
            else self.policy.retransmit_interval
        )
        effects.append(self._arm(timer, delay))
        return effects

    def _timeout_rolling_back(self, name: str) -> List[Effect]:
        self._retransmits += 1
        if self._retransmits > self.policy.max_post_resume_retransmits:
            self.state = ManagerState.AWAIT_USER
            effects = self._cancel_all_timers()
            effects.append(
                AwaitUser(
                    configuration=self.committed,
                    reason="agents unreachable during rollback",
                )
            )
            return effects
        effects = [
            Send(p, RollbackCmd(step_key=self._current_key))
            for p in sorted(self._pending_rollback)
        ]
        timer = TIMER_PHASE if name == TIMER_PHASE else TIMER_RETRANSMIT
        delay = (
            self.policy.rollback_timeout
            if name == TIMER_PHASE
            else self.policy.retransmit_interval
        )
        effects.append(self._arm(timer, delay))
        return effects

    # ------------------------------------------------------------------ rollback & cascade
    def _initiate_rollback(self, reason: str) -> List[Effect]:
        self.state = ManagerState.ROLLING_BACK
        self._rollback_reason = reason
        self._pending_rollback = set(self._participants)
        self._retransmits = 0
        effects: List[Effect] = self._cancel_all_timers()
        effects.extend(
            Send(p, RollbackCmd(step_key=self._current_key))
            for p in self._participants
        )
        effects.append(self._arm(TIMER_PHASE, self.policy.rollback_timeout))
        effects.append(self._arm(TIMER_RETRANSMIT, self.policy.retransmit_interval))
        return effects

    def _after_rollback(self) -> List[Effect]:
        assert self.plan is not None
        step = self.current_step
        self.steps_rolled_back += 1
        effects: List[Effect] = self._cancel_all_timers()
        effects.append(
            StepRolledBack(
                step=step,
                step_key=self._current_key,
                reason=getattr(self, "_rollback_reason", "failure"),
            )
        )
        self.attempt += 1
        if self.attempt <= self.policy.step_retries:
            # Option 1: "first retries the same step once more".
            self.state = ManagerState.PREPARING
            effects.extend(self._begin_step())
            return effects
        # Option 2/3: ask the driver for another path.
        self._failed_edges.append((step.source, step.action.action_id))
        effects.extend(self._request_replan())
        return effects

    def _request_replan(self) -> List[Effect]:
        assert self.committed is not None
        self.state = ManagerState.PREPARING
        if not self.returning and self._alternates_used < self.policy.max_alternate_plans:
            self._alternates_used += 1
            return [
                RequestReplan(
                    kind=ReplanKind.ALTERNATE_TO_TARGET,
                    current=self.committed,
                    failed_edges=tuple(self._failed_edges),
                )
            ]
        if not self.returning:
            self.returning = True
        elif self.committed == self.original_source:
            # Already back at the source: nothing further to do automatically.
            self.state = ManagerState.RUNNING
            return [
                AdaptationAborted(
                    configuration=self.committed,
                    reason="all paths to the target failed; system at source",
                )
            ]
        return [
            RequestReplan(
                kind=ReplanKind.RETURN_TO_SOURCE,
                current=self.committed,
                failed_edges=tuple(self._failed_edges),
            )
        ]

    # ------------------------------------------------------------------ replan answers
    def on_new_plan(self, plan: AdaptationPlan) -> List[Effect]:
        """Driver supplies the next plan requested via ``RequestReplan``."""
        if self.state != ManagerState.PREPARING:
            raise IllegalTransitionError(
                f"manager: on_new_plan in state {self.state.value}"
            )
        if plan.source != self.committed:
            raise IllegalTransitionError(
                f"replacement plan starts at {plan.source.label()} but the "
                f"system is at committed configuration "
                f"{self.committed.label() if self.committed else '?'}"
            )
        self.plan = plan
        # Fresh plan id: step keys must never collide with an earlier
        # plan's steps, or agents would replay stale completed-step answers
        # (and roll back the wrong action) on key reuse.
        self._plan_counter += 1
        self.plan_id = f"plan{self._plan_counter}"
        self.step_index = 0
        self.attempt = 0
        if not plan.steps:
            self.state = ManagerState.RUNNING
            if self.returning:
                return [
                    AdaptationAborted(
                        configuration=self.committed,
                        reason="all paths to the target failed; returned to source",
                    )
                ]
            return [
                AdaptationComplete(
                    configuration=self.committed, total_steps=self.steps_committed
                )
            ]
        return self._begin_step()

    def on_no_plan(self) -> List[Effect]:
        """Driver found no plan for the last ``RequestReplan``."""
        if self.state != ManagerState.PREPARING:
            raise IllegalTransitionError(
                f"manager: on_no_plan in state {self.state.value}"
            )
        if not self.returning:
            # Exhausted alternates (or none exist): try returning to source.
            self.returning = True
            if self.committed == self.original_source:
                self.state = ManagerState.RUNNING
                return [
                    AdaptationAborted(
                        configuration=self.committed,
                        reason="no alternate path to target; system at source",
                    )
                ]
            return [
                RequestReplan(
                    kind=ReplanKind.RETURN_TO_SOURCE,
                    current=self.committed,
                    failed_edges=tuple(self._failed_edges),
                )
            ]
        # Option 4: even the way home is gone — await user intervention.
        self.state = ManagerState.AWAIT_USER
        return [
            AwaitUser(
                configuration=self.committed,
                reason="no safe path to target nor back to source",
            )
        ]
