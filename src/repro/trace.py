"""Execution traces shared by the simulator, live runtime, and checker.

The paper's safety definition is a property of executions: dependency
relationships must hold in every (committed) configuration, and for every
critical-communication identifier CID the extracted action sequence
``S_CID`` must belong to the CCS language.  Everything that executes
adaptations in this library — the discrete-event simulator, the threaded
live runtime, and the baseline strategies — emits the same typed trace
records so one checker (:mod:`repro.safety`) can judge them all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Iterator, List, Optional, Tuple, Type, TypeVar


@dataclass(frozen=True)
class TraceRecord:
    """Base record: everything is timestamped with simulation/wall time."""

    time: float


@dataclass(frozen=True)
class ConfigCommitted(TraceRecord):
    """The global configuration reached a new committed value.

    Emitted when an adaptation step completes (and once at system start).
    Between two commits the system is either quiescent or mid-step with the
    affected processes blocked — the paper's atomicity assumption.
    """

    configuration: FrozenSet[str]
    step_id: str = "initial"
    action_id: str = ""


@dataclass(frozen=True)
class CommRecord(TraceRecord):
    """One atomic action of a critical communication segment.

    ``cid`` is the paper's critical communication identifier (a natural
    number identifying the segment instance, e.g. a packet sequence
    number); ``action`` names the atomic action (e.g. ``"encode"``).
    """

    cid: int
    action: str
    component: str = ""
    process: str = ""


@dataclass(frozen=True)
class AdaptationApplied(TraceRecord):
    """A local in-action executed on a process (structure altered)."""

    process: str
    action_id: str
    removes: FrozenSet[str]
    adds: FrozenSet[str]


@dataclass(frozen=True)
class BlockRecord(TraceRecord):
    """A process blocked (``blocked=True``) or resumed (``False``)."""

    process: str
    blocked: bool


@dataclass(frozen=True)
class CorruptionRecord(TraceRecord):
    """Application-level evidence of unsafe adaptation (e.g. a frame whose
    checksum failed because it was encrypted under a scheme with no matching
    decoder present)."""

    process: str
    detail: str
    cid: Optional[int] = None


@dataclass(frozen=True)
class RollbackRecord(TraceRecord):
    """A process rolled back a (partially) applied step."""

    process: str
    action_id: str


@dataclass(frozen=True)
class NoteRecord(TraceRecord):
    """Free-form annotation (protocol milestones, debugging)."""

    text: str


R = TypeVar("R", bound=TraceRecord)

# All concrete record types, for (de)serialization.
_RECORD_TYPES = (
    ConfigCommitted,
    CommRecord,
    AdaptationApplied,
    BlockRecord,
    CorruptionRecord,
    RollbackRecord,
    NoteRecord,
)


class Trace:
    """Append-only ordered sequence of trace records."""

    def __init__(self, records: Iterable[TraceRecord] = ()):
        self._records: List[TraceRecord] = list(records)

    def append(self, record: TraceRecord) -> None:
        self._records.append(record)

    def extend(self, records: Iterable[TraceRecord]) -> None:
        self._records.extend(records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def of_type(self, record_type: Type[R]) -> Tuple[R, ...]:
        """All records of a given type, in trace order."""
        return tuple(r for r in self._records if isinstance(r, record_type))

    def comm_sequence(self, cid: int) -> Tuple[str, ...]:
        """The paper's ``S_CID``: atomic actions of one segment, in order."""
        return tuple(
            r.action
            for r in self._records
            if isinstance(r, CommRecord) and r.cid == cid
        )

    def cids(self) -> Tuple[int, ...]:
        """All critical-communication identifiers seen, in first-seen order."""
        seen: List[int] = []
        known = set()
        for record in self._records:
            if isinstance(record, CommRecord) and record.cid not in known:
                known.add(record.cid)
                seen.append(record.cid)
        return tuple(seen)

    def committed_configurations(self) -> Tuple[FrozenSet[str], ...]:
        return tuple(r.configuration for r in self.of_type(ConfigCommitted))

    def final_configuration(self) -> Optional[FrozenSet[str]]:
        commits = self.of_type(ConfigCommitted)
        return commits[-1].configuration if commits else None

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Trace({len(self._records)} records)"

    # -- persistence ------------------------------------------------------------
    def to_jsonl(self) -> str:
        """Serialize to JSON lines (one record per line, type-tagged).

        Traces are the audit artifact of an adaptation; persisting them
        lets the safety checker run offline/after the fact.
        """
        import dataclasses
        import json

        lines = []
        for record in self._records:
            payload = {"type": type(record).__name__}
            for field_info in dataclasses.fields(record):
                value = getattr(record, field_info.name)
                if isinstance(value, frozenset):
                    value = sorted(value)
                payload[field_info.name] = value
            lines.append(json.dumps(payload, sort_keys=True))
        return "\n".join(lines)

    @classmethod
    def from_jsonl(cls, text: str) -> "Trace":
        """Inverse of :meth:`to_jsonl`."""
        import dataclasses
        import json

        registry = {klass.__name__: klass for klass in _RECORD_TYPES}
        records = []
        for line_no, line in enumerate(text.splitlines(), start=1):
            if not line.strip():
                continue
            payload = json.loads(line)
            type_name = payload.pop("type", None)
            klass = registry.get(type_name)
            if klass is None:
                raise ValueError(f"line {line_no}: unknown record type {type_name!r}")
            kwargs = {}
            for field_info in dataclasses.fields(klass):
                if field_info.name not in payload:
                    continue
                value = payload[field_info.name]
                # lists only ever encode frozenset-valued fields
                if isinstance(value, list):
                    value = frozenset(value)
                kwargs[field_info.name] = value
            records.append(klass(**kwargs))
        return cls(records)
