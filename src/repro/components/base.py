"""Adaptive component base: invocations, refractions, transmutations.

The Adaptive Java model (paper §2) splits a component's surface into
three interfaces:

* **invocations** — the ordinary imperative operations (plain methods);
* **refractions** — read-only observation of internal behavior/state;
* **transmutations** — controlled modification of internal structure.

Here refractions and transmutations are explicit registries populated by
the :func:`refraction` / :func:`transmutation` decorators (the analogue of
compile-time *absorption* plus run-time *metafication*), so tooling — the
adaptation agents — can discover and drive them by name without knowing
the concrete class.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Mapping, Tuple

from repro.errors import ModelError


def refraction(method: Callable) -> Callable:
    """Mark a method as a refraction (observation interface)."""
    method.__adaptive_role__ = "refraction"
    return method


def transmutation(method: Callable) -> Callable:
    """Mark a method as a transmutation (intercession interface)."""
    method.__adaptive_role__ = "transmutation"
    return method


def absorb(cls: type) -> type:
    """Class decorator: collect refraction/transmutation registries.

    The compile-time *absorption* step of Adaptive Java, done with Python
    metaprogramming: scans the class for decorated methods and attaches
    ``__refractions__`` / ``__transmutations__`` name→method maps.
    """
    refractions: Dict[str, Callable] = {}
    transmutations: Dict[str, Callable] = {}
    for klass in reversed(cls.__mro__):
        for name, attr in vars(klass).items():
            role = getattr(attr, "__adaptive_role__", None)
            if role == "refraction":
                refractions[name] = attr
            elif role == "transmutation":
                transmutations[name] = attr
    cls.__refractions__ = refractions
    cls.__transmutations__ = transmutations
    return cls


def _ensure_absorbed(cls: type) -> type:
    """Auto-absorb subclasses that were not explicitly decorated.

    Registries are stored per concrete class (not inherited blindly), so a
    subclass adding new decorated methods is picked up on first use even
    without the :func:`absorb` decorator.
    """
    if "__refractions__" not in cls.__dict__:
        absorb(cls)
    return cls


@absorb
class AdaptiveComponent:
    """A named component with discoverable refraction/transmutation APIs."""

    def __init__(self, name: str):
        if not name:
            raise ModelError("component name must be non-empty")
        self.name = name

    # -- metafication-time discovery -------------------------------------------
    @classmethod
    def refraction_names(cls) -> Tuple[str, ...]:
        return tuple(sorted(_ensure_absorbed(cls).__refractions__))

    @classmethod
    def transmutation_names(cls) -> Tuple[str, ...]:
        return tuple(sorted(_ensure_absorbed(cls).__transmutations__))

    def refract(self, name: str, **kwargs: Any) -> Any:
        """Invoke a refraction by name (agents observe through this)."""
        cls = _ensure_absorbed(type(self))
        try:
            method = cls.__refractions__[name]
        except KeyError:
            raise ModelError(
                f"{self.name}: unknown refraction {name!r}; "
                f"available: {self.refraction_names()}"
            ) from None
        return method(self, **kwargs)

    def transmute(self, name: str, **kwargs: Any) -> Any:
        """Invoke a transmutation by name (agents recompose through this)."""
        cls = _ensure_absorbed(type(self))
        try:
            method = cls.__transmutations__[name]
        except KeyError:
            raise ModelError(
                f"{self.name}: unknown transmutation {name!r}; "
                f"available: {self.transmutation_names()}"
            ) from None
        return method(self, **kwargs)

    # -- default refraction every component offers ---------------------------------
    @refraction
    def status(self) -> Mapping[str, Any]:
        """Basic introspection: component name and type."""
        return {"name": self.name, "type": type(self).__name__}

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"
