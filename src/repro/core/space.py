"""Safe-configuration enumeration (paper §4.2, step 1).

"Based on the source/target configurations of an adaptation request and
dependency relationships, this step produces a set of safe configurations."

A configuration is safe iff it satisfies every invariant.  Enumeration over
*n* components is 2^n in the worst case — the paper acknowledges this in §7
— so besides the full sweep we support *restricted* enumeration: freeze the
components no adaptive action can touch at their current values and only
vary the rest.  The restriction is exact (it enumerates precisely the safe
configurations reachable by the given actions from the given base).
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.invariants import InvariantSet
from repro.core.model import ComponentUniverse, Configuration
from repro.errors import UnsafeConfigurationError


class SafeConfigurationSpace:
    """All safe configurations of a universe under an invariant set."""

    def __init__(self, universe: ComponentUniverse, invariants: InvariantSet):
        self.universe = universe
        self.invariants = invariants
        self._cache: Optional[Tuple[Configuration, ...]] = None

    # -- membership ------------------------------------------------------------
    def is_safe(self, config: Configuration) -> bool:
        """True iff *config* is a safe configuration (paper §3.1)."""
        return self.invariants.all_hold(config)

    def require_safe(self, config: Configuration, role: str = "configuration") -> None:
        """Raise :class:`UnsafeConfigurationError` with an explanation if unsafe."""
        if not self.is_safe(config):
            raise UnsafeConfigurationError(
                f"{role} is unsafe: {self.invariants.explain(config)}"
            )

    # -- enumeration ------------------------------------------------------------
    def enumerate(self) -> Tuple[Configuration, ...]:
        """All safe configurations over the full universe (cached).

        Deterministic order: ascending by the universe's bit-vector value.
        Implemented by :meth:`enumerate_backtracking` (invariant
        propagation prunes hopeless branches early); the exhaustive
        filter over ``all_configurations`` is kept as the property-test
        oracle.
        """
        if self._cache is None:
            self._cache = self.enumerate_backtracking()
        return self._cache

    def enumerate_restricted(
        self,
        base: Configuration,
        free_components: Iterable[str],
    ) -> Tuple[Configuration, ...]:
        """Safe configurations varying only *free_components* over *base*.

        Components outside *free_components* keep their membership from
        *base*.  This is how a planner scopes the search to the components
        an adaptation can actually touch, avoiding the full 2^n sweep.
        """
        free: Tuple[str, ...] = tuple(dict.fromkeys(free_components))
        self.universe.validate_members(free)
        frozen = base.members - frozenset(free)
        out: List[Configuration] = []
        n = len(free)
        for mask in range(1 << n):
            members = set(frozen)
            for i in range(n):
                if mask & (1 << (n - 1 - i)):
                    members.add(free[i])
            config = Configuration(members)
            if self.is_safe(config):
                out.append(config)
        out.sort(key=self.universe.to_bits)
        return tuple(out)

    def enumerate_backtracking(self) -> Tuple[Configuration, ...]:
        """Safe set via backtracking with invariant propagation.

        Decides components one at a time (in universe order) and prunes a
        branch as soon as any invariant is *determined false* under
        three-valued evaluation — so branches that can never satisfy a
        one-of/dependency constraint are abandoned without expanding the
        remaining 2^k subtree.  Produces exactly :meth:`enumerate`'s
        result (same order) but scales far better on constrained spaces.
        """
        from repro.expr.partial import evaluate_partial

        order = self.universe.order
        exprs = [inv.expr for inv in self.invariants]
        out: List[Configuration] = []
        present: set = set()
        absent: set = set()

        def undecided_ok() -> bool:
            for expr in exprs:
                if evaluate_partial(expr, present, absent) is False:
                    return False
            return True

        def recurse(index: int) -> None:
            if index == len(order):
                # all decided: any remaining None is impossible here
                out.append(Configuration(present))
                return
            name = order[index]
            # '0' branch first so results come out in ascending bit order
            absent.add(name)
            if undecided_ok():
                recurse(index + 1)
            absent.discard(name)
            present.add(name)
            if undecided_ok():
                recurse(index + 1)
            present.discard(name)

        recurse(0)
        return tuple(out)

    def count(self) -> int:
        return len(self.enumerate())

    def to_table(self) -> List[Tuple[str, str]]:
        """Render the safe set as (bit vector, member list) rows — Table 1."""
        rows = []
        for config in self.enumerate():
            rows.append((self.universe.to_bits(config), config.label()))
        return rows

    def __iter__(self) -> Iterator[Configuration]:
        return iter(self.enumerate())

    def __len__(self) -> int:
        return self.count()

    def __contains__(self, config: Configuration) -> bool:
        return self.is_safe(config)
