"""Deterministic discrete-event simulation kernel.

A classic event-heap simulator: events are ``(time, sequence, callback)``
triples; ties in time break by scheduling order, so a run is a pure
function of (code, seed).  All randomness in the simulation must come from
:attr:`Simulator.rng`, which is seeded at construction — the property
tests rely on bit-identical replays.
"""

from __future__ import annotations

import heapq
import random
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import SimulationError


class TimerHandle:
    """Cancellable reference to a scheduled event."""

    __slots__ = ("time", "cancelled")

    def __init__(self, time: float):
        self.time = time
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class Simulator:
    """Single-threaded discrete-event loop with a simulated clock."""

    def __init__(self, seed: int = 0):
        self.now = 0.0
        self.rng = random.Random(seed)
        self._seq = 0
        self._heap: List[Tuple[float, int, TimerHandle, Callable[[], None]]] = []
        self._events_processed = 0

    # -- scheduling -------------------------------------------------------------
    def schedule(
        self, delay: float, callback: Callable[[], None]
    ) -> TimerHandle:
        """Run *callback* after *delay* simulated time units.

        Returns a handle; :meth:`TimerHandle.cancel` prevents execution.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        if not callable(callback):
            raise SimulationError(f"callback must be callable, got {callback!r}")
        self._seq += 1
        handle = TimerHandle(self.now + delay)
        heapq.heappush(self._heap, (handle.time, self._seq, handle, callback))
        return handle

    def call_soon(self, callback: Callable[[], None]) -> TimerHandle:
        """Schedule at the current time (after already-queued same-time events)."""
        return self.schedule(0.0, callback)

    # -- execution -------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of queued (possibly cancelled) events."""
        return len(self._heap)

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def step(self) -> bool:
        """Run the next event.  Returns False when the queue is empty."""
        while self._heap:
            time, _, handle, callback = heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            if time < self.now:  # pragma: no cover - heap invariant
                raise SimulationError("event heap produced time travel")
            self.now = time
            self._events_processed += 1
            callback()
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: int = 1_000_000,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> None:
        """Run events until the queue drains, *until* is reached, or
        *stop_when* returns true (checked between events).

        Raises:
            SimulationError: if *max_events* is exceeded — the standard
                guard against accidental infinite event loops.
        """
        processed = 0
        while self._heap:
            if stop_when is not None and stop_when():
                return
            next_time = self._next_live_time()
            if next_time is None:
                return
            if until is not None and next_time > until:
                self.now = until
                return
            self.step()
            processed += 1
            if processed > max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events}; likely a livelock"
                )
        if until is not None and until > self.now:
            self.now = until

    def _next_live_time(self) -> Optional[float]:
        while self._heap:
            time, _, handle, _cb = self._heap[0]
            if handle.cancelled:
                heapq.heappop(self._heap)
                continue
            return time
        return None
