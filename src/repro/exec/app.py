"""The canonical application adapter of the execution substrate.

:class:`AppAdapter` is the one interface an application implements to
ride the safe-adaptation protocol, replacing the former
``ProcessApp``/``LiveApp`` near-clones (both remain as aliasing shims).
Every hook is called by the owning :class:`~repro.exec.runtime.AgentRuntime`
while it interprets agent effects, on whatever thread of control the
backend gives that runtime.

Adapters that only use ``self.host`` services that exist on every
backend — ``local_safe``, ``timers``, ``components``, ``running_event`` —
are *portable*: the same instance class runs unchanged on the simulator,
the threaded runtime, and asyncio.  :class:`QuiescentAdapter` and
:class:`StuckAdapter` below are the portable versions of the synthetic
test apps and power the cross-backend conformance suite.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.actions import AdaptiveAction

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.exec.runtime import AgentRuntime


class AppAdapter:
    """How a process quiesces, recomposes, and resumes.

    Subclass and override what the application needs; the defaults model
    a process that can quiesce instantly and whose recomposition is
    purely the component-set change.  ``self.host`` is set by
    :meth:`attach` and is the owning agent runtime.
    """

    host: "AgentRuntime"

    def attach(self, host: "AgentRuntime") -> None:
        self.host = host

    # -- lifecycle ---------------------------------------------------------------
    def start(self) -> None:
        """Begin application traffic (called once at system start)."""

    def stop(self) -> None:
        """Stop application workers (called once at system shutdown)."""

    # -- reset / safe state --------------------------------------------------------
    def begin_reset(
        self, step_key: str, action: AdaptiveAction, inject_flush: bool, await_flush: bool
    ) -> None:
        """Pre-action + reset initiation (Fig. 1 'resetting do: reset').

        Must eventually call ``self.host.local_safe(step_key)`` once the
        local safe state (plus any required drain condition) is reached.
        The default is immediate quiescence.
        """
        self.host.local_safe(step_key)

    def abort_reset(self, step_key: str) -> None:
        """Reset cancelled (rollback before the safe state was reached)."""

    def inject_marker(self, step_key: str) -> None:
        """Push a drain marker into the outgoing stream *without blocking*.

        Sent to upstream processes that are not themselves participants
        of a step whose downstream loses decode capability (see
        :class:`~repro.protocol.messages.FlushRequest`).  Default: no-op.
        """

    # -- structural change ---------------------------------------------------------
    def apply_action(self, action: AdaptiveAction) -> None:
        """Application-level structural change beyond the component set."""

    def undo_action(self, action: AdaptiveAction) -> None:
        """Reverse :meth:`apply_action` (rollback)."""

    def post_action(self, action: AdaptiveAction) -> None:
        """Local post-action, e.g. destroy replaced components."""

    # -- blocking ------------------------------------------------------------------
    def on_blocked(self) -> None:
        """Process was just blocked (held in its safe state)."""

    def on_resumed(self) -> None:
        """Full operation resumed."""

    def resume_latency(self) -> float:
        """Protocol time needed to restore full operation (default: 0)."""
        return 0.0


class QuiescentAdapter(AppAdapter):
    """Reaches the local safe state ``quiesce_delay`` after each reset.

    Portable across backends: the delay runs on the host's
    :class:`~repro.exec.substrate.TimerService`, so it is simulated ticks
    on the simulator and scaled wall time on the threaded/asyncio
    backends.
    """

    _TIMER = "app:quiesce"

    def __init__(self, quiesce_delay: float = 2.0, resume_delay: float = 0.0):
        self.quiesce_delay = quiesce_delay
        self.resume_delay = resume_delay
        self.resets_started = 0
        self.resets_aborted = 0

    def begin_reset(self, step_key, action, inject_flush, await_flush) -> None:
        self.resets_started += 1
        host = self.host
        host.timers.set_timer(
            self._TIMER, self.quiesce_delay, lambda: host.local_safe(step_key)
        )

    def abort_reset(self, step_key) -> None:
        self.resets_aborted += 1
        self.host.timers.cancel_timer(self._TIMER)

    def resume_latency(self) -> float:
        return self.resume_delay


class StuckAdapter(AppAdapter):
    """Fail-to-reset injection: never (or not initially) reaches safety.

    The portable counterpart of :class:`repro.sim.apps.StuckApp`: the
    process silently stays busy, so the manager's reset timeout drives
    the §4.4 failure-handling cascade on any backend.

    Args:
        stuck_attempts: how many reset attempts to ignore before behaving
            like a quiescent adapter.  ``None`` means stuck forever.
        quiesce_delay: delay used once un-stuck.
    """

    _TIMER = "app:quiesce"

    def __init__(self, stuck_attempts: Optional[int] = None, quiesce_delay: float = 2.0):
        self.stuck_attempts = stuck_attempts
        self.quiesce_delay = quiesce_delay
        self.attempts_seen = 0

    def begin_reset(self, step_key, action, inject_flush, await_flush) -> None:
        self.attempts_seen += 1
        if self.stuck_attempts is None or self.attempts_seen <= self.stuck_attempts:
            return  # silently stay busy: the manager's timeout will fire
        host = self.host
        host.timers.set_timer(
            self._TIMER, self.quiesce_delay, lambda: host.local_safe(step_key)
        )

    def abort_reset(self, step_key) -> None:
        self.host.timers.cancel_timer(self._TIMER)
