"""Unit tests for the trace model."""

from repro.trace import (
    AdaptationApplied,
    BlockRecord,
    CommRecord,
    ConfigCommitted,
    CorruptionRecord,
    NoteRecord,
    RollbackRecord,
    Trace,
)


def make_trace():
    trace = Trace()
    trace.append(ConfigCommitted(time=0.0, configuration=frozenset({"A"})))
    trace.append(CommRecord(time=1.0, cid=7, action="send"))
    trace.append(CommRecord(time=2.0, cid=8, action="send"))
    trace.append(CommRecord(time=3.0, cid=7, action="receive"))
    trace.append(
        ConfigCommitted(time=4.0, configuration=frozenset({"B"}), step_id="s1",
                        action_id="A1")
    )
    return trace


class TestTrace:
    def test_append_iter_len(self):
        trace = make_trace()
        assert len(trace) == 5
        assert len(list(trace)) == 5

    def test_extend(self):
        trace = Trace()
        trace.extend([NoteRecord(time=0.0, text="x"), NoteRecord(time=1.0, text="y")])
        assert len(trace) == 2

    def test_of_type(self):
        trace = make_trace()
        assert len(trace.of_type(CommRecord)) == 3
        assert len(trace.of_type(ConfigCommitted)) == 2
        assert trace.of_type(BlockRecord) == ()

    def test_comm_sequence_extracts_s_cid(self):
        trace = make_trace()
        assert trace.comm_sequence(7) == ("send", "receive")
        assert trace.comm_sequence(8) == ("send",)
        assert trace.comm_sequence(99) == ()

    def test_cids_first_seen_order(self):
        assert make_trace().cids() == (7, 8)

    def test_committed_configurations(self):
        assert make_trace().committed_configurations() == (
            frozenset({"A"}),
            frozenset({"B"}),
        )

    def test_final_configuration(self):
        assert make_trace().final_configuration() == frozenset({"B"})
        assert Trace().final_configuration() is None

    def test_constructor_accepts_records(self):
        records = [NoteRecord(time=0.0, text="hello")]
        assert len(Trace(records)) == 1


class TestThreadSafety:
    def test_concurrent_append_and_iterate(self):
        import threading

        trace = Trace()
        stop = threading.Event()
        errors = []

        def writer(worker):
            i = 0
            while not stop.is_set():
                trace.append(NoteRecord(time=float(i), text=f"w{worker}"))
                i += 1

        def reader():
            while not stop.is_set():
                try:
                    for _ in trace:  # snapshot-based: must never raise
                        pass
                    trace.of_type(NoteRecord)
                    trace.to_jsonl()
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)
                    return

        threads = [threading.Thread(target=writer, args=(n,)) for n in range(3)]
        threads += [threading.Thread(target=reader) for _ in range(2)]
        for t in threads:
            t.start()
        import time

        time.sleep(0.2)
        stop.set()
        for t in threads:
            t.join(timeout=5.0)
        assert not errors
        assert len(trace) > 0

    def test_snapshot_is_stable_copy(self):
        trace = make_trace()
        snap = trace.snapshot()
        trace.append(NoteRecord(time=10.0, text="later"))
        assert len(snap) == 5
        assert len(trace.snapshot()) == 6


class TestRecordTypes:
    def test_records_are_frozen(self):
        record = CommRecord(time=1.0, cid=1, action="send")
        import dataclasses
        import pytest

        with pytest.raises(dataclasses.FrozenInstanceError):
            record.cid = 2  # type: ignore[misc]

    def test_adaptation_applied_fields(self):
        record = AdaptationApplied(
            time=1.0, process="p", action_id="A1",
            removes=frozenset({"X"}), adds=frozenset({"Y"}),
        )
        assert record.removes == frozenset({"X"})

    def test_corruption_optional_cid(self):
        record = CorruptionRecord(time=1.0, process="p", detail="bad")
        assert record.cid is None

    def test_rollback_record(self):
        record = RollbackRecord(time=2.0, process="p", action_id="A3")
        assert record.action_id == "A3"


class TestSerialization:
    def full_trace(self):
        trace = make_trace()
        trace.append(BlockRecord(time=5.0, process="p", blocked=True))
        trace.append(
            AdaptationApplied(
                time=6.0, process="p", action_id="A1",
                removes=frozenset({"X"}), adds=frozenset({"Y", "Z"}),
            )
        )
        trace.append(CorruptionRecord(time=7.0, process="q", detail="bad", cid=3))
        trace.append(RollbackRecord(time=8.0, process="p", action_id="A1"))
        trace.append(NoteRecord(time=9.0, text="done"))
        return trace

    def test_jsonl_round_trip(self):
        trace = self.full_trace()
        restored = Trace.from_jsonl(trace.to_jsonl())
        assert list(restored) == list(trace)

    def test_jsonl_is_line_oriented(self):
        text = self.full_trace().to_jsonl()
        import json

        for line in text.splitlines():
            payload = json.loads(line)
            assert "type" in payload and "time" in payload

    def test_blank_lines_skipped(self):
        trace = make_trace()
        text = "\n\n" + trace.to_jsonl() + "\n\n"
        assert len(Trace.from_jsonl(text)) == len(trace)

    def test_unknown_type_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            Trace.from_jsonl('{"type": "Martian", "time": 0.0}')

    def test_list_fields_coerced_by_declared_type(self):
        # frozenset fields come back as frozensets; a plain-list payload
        # for a str field is left alone (no blanket list→frozenset).
        restored = Trace.from_jsonl(
            '{"type": "AdaptationApplied", "time": 1.0, "process": "p", '
            '"action_id": "A1", "removes": ["X"], "adds": ["Y", "Z"]}'
        )
        record = list(restored)[0]
        assert record.removes == frozenset({"X"})
        assert record.adds == frozenset({"Y", "Z"})
        assert isinstance(record.adds, frozenset)

    def test_unknown_payload_fields_ignored(self):
        # Forward compatibility: readers skip fields they don't know.
        restored = Trace.from_jsonl(
            '{"type": "NoteRecord", "time": 0.0, "text": "x", "bogus": 1}'
        )
        assert list(restored)[0].text == "x"

    def test_checker_works_on_restored_trace(self):
        from repro.core.invariants import InvariantSet
        from repro.safety import check_safe

        trace = self.full_trace()
        restored = Trace.from_jsonl(trace.to_jsonl())
        invariants = InvariantSet.of("A | B")
        original = check_safe(trace, invariants)
        again = check_safe(restored, invariants)
        assert original.ok == again.ok
        assert len(original.violations) == len(again.violations)
