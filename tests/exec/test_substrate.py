"""Unit tests for the backend contracts of the execution substrate."""

import asyncio
import threading
import time

from repro.exec.aio import AioTimerService, AioTransport
from repro.exec.substrate import (
    STOP,
    Clock,
    NullLock,
    ThreadTimerService,
    TimerService,
    Transport,
    WallClock,
)
from repro.protocol.messages import Envelope, FlushRequest
from repro.sim.cluster import SimClock, SimTimerService
from repro.sim.kernel import Simulator

# Fast wall scale for the threaded-timer tests: 1 unit = 1 ms.
SCALE = 0.001


class TestProtocolConformance:
    def test_wall_clock_is_a_clock(self):
        assert isinstance(WallClock(), Clock)

    def test_sim_clock_is_a_clock(self):
        assert isinstance(SimClock(Simulator()), Clock)

    def test_timer_services_conform(self):
        assert isinstance(ThreadTimerService(), TimerService)
        assert isinstance(SimTimerService(Simulator()), TimerService)
        assert isinstance(AioTimerService(), TimerService)

    def test_transports_conform(self):
        from repro.runtime.transport import InMemoryTransport
        from repro.sim.net import Network

        assert isinstance(InMemoryTransport(), Transport)
        assert isinstance(Network(Simulator()), Transport)
        assert isinstance(AioTransport(), Transport)


class TestNullLock:
    def test_context_manager(self):
        lock = NullLock()
        with lock as held:
            assert held is lock


class TestWallClock:
    def test_reports_protocol_units(self):
        clock = WallClock(time_scale=0.001)
        t0 = clock.now()
        time.sleep(0.01)
        # 10 ms of wall time is ≥ ~5 protocol units at 1 ms/unit even on a
        # heavily loaded CI box.
        assert clock.now() - t0 >= 5.0

    def test_starts_near_zero(self):
        assert WallClock().now() < 1000.0


class TestThreadTimerService:
    def test_fires_once(self):
        timers = ThreadTimerService(SCALE)
        fired = threading.Event()
        timers.set_timer("t", 1.0, fired.set)
        assert fired.wait(timeout=2.0)

    def test_cancel_prevents_fire(self):
        timers = ThreadTimerService(SCALE)
        fired = threading.Event()
        timers.set_timer("t", 20.0, fired.set)
        timers.cancel_timer("t")
        assert not fired.wait(timeout=0.05)

    def test_rearm_replaces(self):
        timers = ThreadTimerService(SCALE)
        hits = []
        done = threading.Event()
        timers.set_timer("t", 500.0, lambda: hits.append("slow"))
        timers.set_timer("t", 1.0, lambda: (hits.append("fast"), done.set()))
        assert done.wait(timeout=2.0)
        time.sleep(0.02)
        assert hits == ["fast"]

    def test_cancel_all(self):
        timers = ThreadTimerService(SCALE)
        fired = threading.Event()
        for name in ("a", "b", "c"):
            timers.set_timer(name, 20.0, fired.set)
        timers.cancel_all()
        assert not fired.wait(timeout=0.05)

    def test_cancel_unarmed_is_noop(self):
        ThreadTimerService(SCALE).cancel_timer("missing")


class TestSimTimerService:
    def test_fires_at_virtual_time(self):
        sim = Simulator()
        timers = SimTimerService(sim)
        fired_at = []
        timers.set_timer("t", 5.0, lambda: fired_at.append(sim.now))
        sim.run(until=10.0)
        assert fired_at == [5.0]

    def test_cancel_and_rearm(self):
        sim = Simulator()
        timers = SimTimerService(sim)
        hits = []
        timers.set_timer("t", 5.0, lambda: hits.append("first"))
        timers.set_timer("t", 2.0, lambda: hits.append("second"))  # re-arm
        timers.set_timer("u", 3.0, lambda: hits.append("doomed"))
        timers.cancel_timer("u")
        sim.run(until=10.0)
        assert hits == ["second"]

    def test_cancel_all(self):
        sim = Simulator()
        timers = SimTimerService(sim)
        hits = []
        timers.set_timer("a", 1.0, lambda: hits.append("a"))
        timers.set_timer("b", 2.0, lambda: hits.append("b"))
        timers.cancel_all()
        sim.run(until=10.0)
        assert hits == []


class TestAioPieces:
    def test_timer_fires_and_cancels(self):
        async def scenario():
            timers = AioTimerService(time_scale=0.001)
            fired = []
            timers.set_timer("hit", 1.0, lambda: fired.append("hit"))
            timers.set_timer("miss", 1.0, lambda: fired.append("miss"))
            timers.cancel_timer("miss")
            timers.set_timer("rearmed", 500.0, lambda: fired.append("slow"))
            timers.set_timer("rearmed", 1.0, lambda: fired.append("fast"))
            await asyncio.sleep(0.05)
            timers.cancel_all()
            return fired

        assert sorted(asyncio.run(scenario())) == ["fast", "hit"]

    def test_transport_routes_and_stops(self):
        async def scenario():
            transport = AioTransport()
            inbox = transport.register("p")
            envelope = Envelope("manager", "p", FlushRequest(step_key="plan/0#1"))
            transport.send(envelope)
            transport.stop_endpoint("p")
            first = await inbox.get()
            second = await inbox.get()
            return first, second

        first, second = asyncio.run(scenario())
        assert first.destination == "p"
        assert second is STOP
